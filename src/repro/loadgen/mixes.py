"""Declarative job-mix profiles for the load harness.

A :class:`MixProfile` maps a request index to one :class:`JobSpec`, so
a mix is *reproducible by construction*: the same ``(mix, index,
config)`` always yields the byte-identical spec, which is what lets
the soak mode re-derive exactly the jobs a loaded run submitted and
byte-compare their artifacts against an unloaded solve.

The shipped profiles each stress a different serving path:

``dedup-heavy``
    Cycles a pool of 4 seeds, so most submissions hit the idempotent
    dedup path (``200 deduplicated``) instead of enqueueing work —
    the cheapest possible request, bounded queue growth.
``cache-cold``
    A fresh seed per request: every submission is new work, the queue
    grows at the offered rate, and backpressure (503) is reachable.
``mixed-sizes``
    Raw Ising problems rotating through three spin counts (16/24/40
    spins via :func:`~repro.partition.instances.separate_mode_instance`
    at ``n_inputs`` 5/6/7), so request payloads and solve costs vary
    the way a multi-tenant queue's would.
``partition-parents``
    Partition parent documents (``k > 1``) the gateway must *refuse*
    (400, code ``invalid_request`` — the fan-out is coordinated
    client-side).  ``expect_rejections`` marks these so the recorder
    scores the 400s as correct behavior, not availability loss.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, List

from repro.core.config import CoreSolverConfig, FrameworkConfig
from repro.errors import ConfigurationError
from repro.service.spec import JobSpec, partition_block

__all__ = [
    "MixProfile",
    "MIXES",
    "default_load_config",
    "get_mix",
    "mix_names",
]

#: seeds the dedup-heavy mix cycles through (a tiny working set)
_DEDUP_POOL = 4

#: (n_inputs, free_size) rotation for the mixed-sizes Ising mix —
#: 16 / 24 / 40 spins respectively
_SIZE_LADDER = ((5, 2), (6, 2), (7, 2))


def default_load_config(seed: int = 3) -> FrameworkConfig:
    """A deliberately small config so jobs finish in ~100 ms.

    Load testing measures the *serving stack* — queueing, dedup,
    backpressure, the HTTP layer — not solver quality, so the solve
    itself is kept cheap (2 partitions, 1 round, 200 iterations).
    """
    return FrameworkConfig(
        mode="joint",
        free_size=2,
        n_partitions=2,
        n_rounds=1,
        seed=seed,
        solver=CoreSolverConfig(max_iterations=200, n_replicas=2),
    )


@dataclass(frozen=True)
class MixProfile:
    """One named traffic profile.

    Attributes
    ----------
    name, summary:
        Registry key and the one-line description shown in reports.
    build:
        ``(index, base_config) -> JobSpec`` — must be deterministic in
        its arguments (see module docs).
    expect_rejections:
        True when the gateway is *supposed* to reject these requests
        (e.g. partition parents); such rejections are excluded from
        availability/error-rate accounting.
    """

    name: str
    summary: str
    build: Callable[[int, FrameworkConfig], JobSpec]
    expect_rejections: bool = False


@lru_cache(maxsize=None)
def _ising_problem(n_inputs: int, free_size: int) -> Dict:
    # built once per size — problem construction is pure but not free,
    # and must never run inside the timed send loop
    from repro.partition.instances import separate_mode_instance

    return separate_mode_instance(
        workload="cos", n_inputs=n_inputs, free_size=free_size
    )


def _dedup_heavy(index: int, config: FrameworkConfig) -> JobSpec:
    seeded = dataclasses.replace(
        config, seed=config.seed + (index % _DEDUP_POOL)
    )
    return JobSpec(workload="cos", n_inputs=6, config=seeded)


def _cache_cold(index: int, config: FrameworkConfig) -> JobSpec:
    seeded = dataclasses.replace(config, seed=config.seed + 1000 + index)
    return JobSpec(workload="cos", n_inputs=6, config=seeded)


def _mixed_sizes(index: int, config: FrameworkConfig) -> JobSpec:
    n_inputs, free_size = _SIZE_LADDER[index % len(_SIZE_LADDER)]
    seeded = dataclasses.replace(config, seed=config.seed + 2000 + index)
    return JobSpec(
        ising=_ising_problem(n_inputs, free_size), config=seeded
    )


def _partition_parents(index: int, config: FrameworkConfig) -> JobSpec:
    n_inputs, free_size = _SIZE_LADDER[0]
    seeded = dataclasses.replace(config, seed=config.seed + 3000 + index)
    return JobSpec(
        ising=_ising_problem(n_inputs, free_size),
        config=seeded,
        partition=partition_block(k=2, seed=index),
    )


MIXES: Dict[str, MixProfile] = {
    profile.name: profile
    for profile in (
        MixProfile(
            name="dedup-heavy",
            summary=(
                f"{_DEDUP_POOL}-seed working set; most submissions "
                "dedup against a live twin"
            ),
            build=_dedup_heavy,
        ),
        MixProfile(
            name="cache-cold",
            summary="fresh seed per request; every submission is new work",
            build=_cache_cold,
        ),
        MixProfile(
            name="mixed-sizes",
            summary=(
                "raw Ising solves rotating 16/24/40-spin problems"
            ),
            build=_mixed_sizes,
        ),
        MixProfile(
            name="partition-parents",
            summary=(
                "partition parent docs (k=2) the gateway must 400"
            ),
            build=_partition_parents,
            expect_rejections=True,
        ),
    )
}


def mix_names() -> List[str]:
    """Registered mix names, stable order."""
    return sorted(MIXES)


def get_mix(name: str) -> MixProfile:
    """Look up one mix; unknown names raise ConfigurationError."""
    try:
        return MIXES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown job mix {name!r}; mixes: {', '.join(mix_names())}"
        ) from None
