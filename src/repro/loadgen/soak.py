"""Soak mode: a fixed-RPS plateau with the chaos seams armed.

The soak's claim is the strongest one the serving stack makes: **load
and faults change *when* results arrive, never *what* they are.**  A
plateau of submissions runs with a :class:`FaultPlan` installed
(worker crashes, client connection drops — the PR 5 seams), every job
is then driven to completion, and each artifact is byte-compared
against a fresh, unloaded, fault-free local solve of the identical
spec.  Artifact keys content-address (table, semantic config) and the
seeded search is replay-exact, so any byte difference is a real
determinism regression — not noise.

Unlike the sweep generator (one attempt per arrival), the soak
submitter *retries*: submission is idempotent end to end, so a
connection-dropped submit is safely replayed, and what we measure here
is eventual artifact identity, not per-arrival latency honesty.
"""

from __future__ import annotations

import contextlib
import json
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.errors import GatewayError
from repro.gateway.client import GatewayClient
from repro.loadgen.generator import OpenLoopGenerator, MixSubmitter, StageResult
from repro.loadgen.mixes import MixProfile
from repro.resilience import FaultPlan, FaultRule, fault_injection
from repro.service.scheduler import SchedulerPolicy
from repro.service.service import DecompositionService

__all__ = ["default_soak_plan", "run_soak"]


def default_soak_plan(seed: int = 0) -> FaultPlan:
    """The standard soak chaos: 2 worker crashes + 2 connection drops.

    Deterministic call ordinals (not probabilities) so every soak run
    injects the same story; bounded so the default job retry budget
    (``max_attempts=3``) always survives it.
    """
    return FaultPlan(
        [
            FaultRule(site="worker.crash", at_calls=(1, 3)),
            FaultRule(site="client.connection_drop", at_calls=(2, 5)),
        ],
        seed=seed,
    )


def _canonical(design: Dict) -> str:
    return json.dumps(design, sort_keys=True)


def run_soak(
    client: GatewayClient,
    mix: MixProfile,
    config,
    *,
    rps: float,
    duration_seconds: float,
    baseline_dir: Union[str, Path],
    plan: Optional[FaultPlan] = None,
    concurrency: int = 8,
    wait_timeout_seconds: float = 300.0,
    baseline_workers: int = 2,
) -> Tuple[Dict, StageResult]:
    """Run the plateau and byte-compare artifacts (module docs).

    Parameters
    ----------
    client:
        A *retrying* gateway client (default :class:`RetryPolicy` is
        right) — the armed ``client.connection_drop`` seam depends on
        retries to make submission eventually succeed.
    mix, config:
        The traffic profile (must not be an expected-rejection mix)
        and its base framework config.
    baseline_dir:
        Fresh directory for the unloaded local comparison service.
    plan:
        Fault plan to arm during the loaded phase
        (default :func:`default_soak_plan`); cleared before the
        completion/baseline phases.

    Returns ``(summary, stage)`` — the JSON-ready soak block and the
    raw stage for SLO evaluation.
    """
    if mix.expect_rejections:
        raise ValueError(
            f"mix {mix.name!r} expects rejections; soak needs "
            "completable work"
        )
    plan = plan if plan is not None else default_soak_plan()
    submitter = MixSubmitter(client, mix, config)
    generator = OpenLoopGenerator(
        submitter,
        mix_name=mix.name,
        expect_rejections=False,
        concurrency=concurrency,
    )
    with fault_injection(plan):
        stage = generator.run(rps=rps, duration_seconds=duration_seconds)

    # chaos is disarmed from here on: drive every scheduled spec to an
    # accepted job (idempotent resubmission repairs any arrival whose
    # retries were exhausted mid-drop), then to completion
    total = len(stage.samples)
    job_by_index: Dict[int, str] = {
        s.index: s.job_id
        for s in stage.samples
        if s.job_id is not None
    }
    resubmitted = 0
    for index in range(total):
        if index not in job_by_index:
            record, _ = client.submit(submitter.spec(index))
            job_by_index[index] = record.id
            resubmitted += 1

    completed: Dict[int, str] = {}
    failures: Dict[int, str] = {}
    for index, job_id in sorted(job_by_index.items()):
        try:
            record = client.wait(
                job_id, timeout_seconds=wait_timeout_seconds
            )
        except GatewayError as exc:
            failures[index] = f"wait failed: {exc}"
            continue
        if record.state != "done":
            failures[index] = (
                f"terminal state {record.state!r}: {record.error}"
            )
            continue
        completed[index] = _canonical(
            client.result(job_id)["design"]
        )

    # the unloaded control: same specs, fresh service, no faults
    baseline = DecompositionService(
        baseline_dir,
        n_workers=baseline_workers,
        policy=SchedulerPolicy(
            retry_backoff_seconds=0.01, poll_interval_seconds=0.01
        ),
    )
    baseline_jobs = {
        index: baseline.submit_idempotent(submitter.spec(index))[0].id
        for index in sorted(completed)
    }
    baseline.run_until_drained(timeout=wait_timeout_seconds)
    mismatches = []
    for index, loaded_design in sorted(completed.items()):
        envelope = baseline.fetch_envelope(baseline_jobs[index])
        if _canonical(envelope["design"]) != loaded_design:
            mismatches.append(index)
    byte_identical = (
        not mismatches and not failures and len(completed) == total
    )
    with contextlib.suppress(Exception):
        baseline.pool.stop()
    summary = {
        "mix": mix.name,
        "offered_rps": round(stage.offered_rps, 3),
        "duration_seconds": round(stage.duration_seconds, 3),
        "requests": total,
        "accepted_during_load": sum(1 for s in stage.samples if s.ok),
        "resubmitted_after_chaos": resubmitted,
        "completed": len(completed),
        "failed": dict(sorted(failures.items())),
        "compared": len(completed),
        "mismatches": mismatches,
        "byte_identical": byte_identical,
        "fault_plan": plan.to_spec(),
    }
    return summary, stage
