"""repro.loadgen — an open-loop load harness for the HTTP gateway.

The harness answers the question micro-benchmarks cannot: *where is
the knee* — the offered request rate past which latency departs from
its flat base and the gateway starts shedding.  It is open-loop in the
Locust sense: arrival times are fixed up front from a constant-rate
clock (``start + i / rps``) and are **never gated on responses**, so a
slow server cannot slow the arrival process down and hide its own
latency (the classic coordinated-omission trap of closed-loop drivers).

Pieces (each its own module):

* :mod:`~repro.loadgen.mixes` — declarative job-mix profiles
  (dedup-heavy, cache-cold, mixed spin sizes, partition parents).
* :mod:`~repro.loadgen.generator` — the fixed-rate open-loop submitter
  (one attempt per scheduled arrival, no client retries) and the
  completion-latency collector.
* :mod:`~repro.loadgen.recorder` — per-stage summaries (achieved vs
  offered RPS, shed/error rates, latency percentiles) and knee
  detection over an RPS sweep.
* :mod:`~repro.loadgen.slo` — availability + latency objectives with
  windowed burn-rate evaluation over the recorded series.
* :mod:`~repro.loadgen.soak` — a fixed-RPS plateau with the chaos
  seams armed, asserting artifacts stay byte-identical to an unloaded
  solve.
* :mod:`~repro.loadgen.report` — human-readable rendering of the
  ``BENCH_load.json`` payload.

Entry points: ``repro loadtest --remote URL --rps ... --mix ...``
(see :mod:`repro.cli`) and ``benchmarks/test_bench_load.py`` which
writes ``BENCH_load.json``.
"""

from repro.loadgen.generator import (
    OpenLoopGenerator,
    RequestSample,
    StageResult,
    MixSubmitter,
    collect_completion_latencies,
)
from repro.loadgen.mixes import MixProfile, default_load_config, get_mix, mix_names
from repro.loadgen.recorder import build_report, find_knee, summarize_stage
from repro.loadgen.report import render_load_report
from repro.loadgen.slo import SLOSpec, evaluate_slo, parse_slo
from repro.loadgen.soak import default_soak_plan, run_soak

__all__ = [
    "MixProfile",
    "MixSubmitter",
    "OpenLoopGenerator",
    "RequestSample",
    "SLOSpec",
    "StageResult",
    "build_report",
    "collect_completion_latencies",
    "default_load_config",
    "default_soak_plan",
    "evaluate_slo",
    "find_knee",
    "get_mix",
    "mix_names",
    "parse_slo",
    "render_load_report",
    "run_soak",
    "summarize_stage",
]
