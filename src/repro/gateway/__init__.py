"""repro.gateway — an HTTP/JSON API over the decomposition service.

The gateway turns a :class:`~repro.service.DecompositionService`
directory into a network service using only the standard library
(:class:`http.server.ThreadingHTTPServer` on the server side,
:mod:`urllib.request` in the client) — no new dependencies.

Endpoints (all JSON unless noted)::

    POST /v1/jobs              submit a JobSpecV1 wire document
    GET  /v1/jobs              list jobs (``?state=&limit=&cursor=``;
                               paginated, ``next_cursor`` in the body)
    GET  /v1/jobs/{id}         one job's status + failure log
    GET  /v1/jobs/{id}/result  the finished job's artifact envelope
    GET  /v1/status            the service telemetry summary
    GET  /v1/healthz           liveness + queue depth
    GET  /v1/metrics           Prometheus text exposition (0.0.4)
    GET  /v1/workers           the fleet registry (worker liveness)
    GET  /v1/artifacts/{key}   one stored artifact envelope
    POST /v1/workers/{verb}    the remote worker plane — claim /
                               heartbeat / checkpoint / complete /
                               fail (see :mod:`repro.fleet.protocol`)

The worker plane draws from a *separate* rate-limit bucket class
(``worker_rate_limit_per_second``) so a hot claim loop never burns the
submitter budget, and an empty-queue claim long-polls server-side
(``claim_wait_seconds``) before answering 204 + ``Retry-After``.

Submission is *idempotent*: the job spec's content address (see
:func:`repro.service.spec.artifact_key`) dedups resubmissions against
any live queued/running/done twin, so a client that retries after a
lost response can never double-enqueue work.

Robustness knobs live on :class:`GatewayConfig`: optional bearer-token
auth, a per-client token-bucket rate limit (429 + ``Retry-After``),
queue-depth backpressure (503 + ``Retry-After``), request-size and
per-request socket timeouts, a JSONL access log, and graceful shutdown
that drains in-flight handlers before returning.

Every error response uses one canonical JSON envelope::

    {"error": {"code": "<slug>", "message": "...",
               "retry_after": <seconds>?}, "status": <http status>}

``code`` is a stable machine-readable slug (``invalid_request``,
``unauthorized``, ``not_found``, ``conflict``, ``rate_limited``,
``overloaded``, ``store_unavailable``, ``internal``, ...); the
top-level ``status`` mirror is kept for legacy readers.

:class:`GatewayClient` is the typed Python client; the shared
:class:`~repro.gateway.transport.HttpTransport` base (also under
:class:`~repro.fleet.client.FleetClient`) backs off exponentially with
optional jitter, honors server ``Retry-After`` hints, and parses the
canonical envelope (legacy string bodies still accepted).  Accessors
return the same :class:`~repro.service.JobRecord` objects the local
service API yields, so CLI code paths are shared between local and
``--remote`` operation.
"""

from repro.gateway.client import GatewayClient
from repro.gateway.server import DecompositionGateway, GatewayConfig
from repro.gateway.transport import HttpTransport, RetryPolicy

__all__ = [
    "DecompositionGateway",
    "GatewayClient",
    "GatewayConfig",
    "HttpTransport",
    "RetryPolicy",
]
