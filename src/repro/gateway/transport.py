"""Shared HTTP transport for every gateway-facing client.

:class:`HttpTransport` owns everything below the API surface —
connection handling over stdlib ``urllib``, the retry loop with
exponential backoff (a server ``Retry-After`` hint always wins over the
computed delay when it is longer), optional bounded jitter, and typed
status-0 errors for failures that happened before any response existed.
Both :class:`~repro.gateway.client.GatewayClient` and
:class:`~repro.fleet.client.FleetClient` build on it, so retry
semantics cannot drift between the submitter and worker planes.

Error bodies are parsed from the canonical envelope
``{"error": {"code", "message", "retry_after"?}}``; legacy shapes
(``{"error": "<string>"}`` or arbitrary JSON) still decode so old
servers keep working against new clients.
"""

from __future__ import annotations

import http.client
import json
import random
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.errors import GatewayError
from repro.resilience import active_fault_plan

__all__ = ["HttpTransport", "RetryPolicy", "parse_error_body"]


@dataclass(frozen=True)
class RetryPolicy:
    """When and how the client retries a failed request.

    Attributes
    ----------
    max_retries:
        Retries *after* the first attempt (0 disables retrying).
    backoff_base_seconds, backoff_max_seconds:
        Exponential schedule: ``base * 2**attempt`` capped at the max.
        A server ``Retry-After`` longer than the computed delay is
        honored instead.
    retry_statuses:
        HTTP statuses worth retrying — throttling and transient
        unavailability, never 4xx input errors.  Connection-level
        failures (status 0) are always retried.
    jitter_ratio:
        Fraction of the computed delay to randomize by (uniform in
        ``[-jitter, +jitter]``), decorrelating clients that were
        throttled at the same instant.  The jittered delay never
        exceeds ``backoff_max_seconds`` and never undercuts a server
        ``Retry-After`` hint.  0 keeps the schedule deterministic.
    """

    max_retries: int = 4
    backoff_base_seconds: float = 0.25
    backoff_max_seconds: float = 8.0
    retry_statuses: Tuple[int, ...] = (408, 429, 503)
    jitter_ratio: float = 0.0


def parse_error_body(
    payload: bytes, status: int
) -> Tuple[str, Optional[str], Optional[float]]:
    """``(message, code, retry_after)`` from an error response body.

    Understands the canonical envelope
    ``{"error": {"code", "message", "retry_after"?}}`` and falls back
    to the legacy ``{"error": "<string>"}`` / arbitrary-JSON shapes, so
    a new client still reads old servers (and non-gateway proxies).
    """
    try:
        data = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return f"HTTP {status}", None, None
    error = data.get("error", data) if isinstance(data, dict) else data
    if isinstance(error, dict):
        message = str(error.get("message", error))
        code = error.get("code")
        retry_after = error.get("retry_after")
        try:
            retry_after = (
                None if retry_after is None else max(0.0, float(retry_after))
            )
        except (TypeError, ValueError):
            retry_after = None
        return message, (str(code) if code is not None else None), retry_after
    return str(error), None, None


class HttpTransport:
    """Connection + retry machinery for one gateway base URL.

    Parameters
    ----------
    base_url:
        E.g. ``http://127.0.0.1:8080``; a trailing slash is fine.
    token:
        Bearer token matching the server's ``auth_token``; sent as
        ``Authorization: Bearer <token>`` when set.
    timeout_seconds:
        Per-request socket timeout.
    retry:
        See :class:`RetryPolicy`.
    sleep:
        Injection point for tests (default :func:`time.sleep`).
    """

    def __init__(
        self,
        base_url: str,
        token: Optional[str] = None,
        timeout_seconds: float = 30.0,
        retry: Optional[RetryPolicy] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.token = token
        self.timeout_seconds = timeout_seconds
        self.retry = retry if retry is not None else RetryPolicy()
        self._sleep = sleep
        self._jitter_rng = random.Random()

    # -- single attempt ------------------------------------------------

    def _attempt(
        self, method: str, path: str, body: Optional[bytes]
    ) -> Tuple[int, Dict[str, str], bytes]:
        request = urllib.request.Request(
            self.base_url + path, data=body, method=method
        )
        request.add_header("Accept", "application/json")
        if body is not None:
            request.add_header("Content-Type", "application/json")
        if self.token is not None:
            request.add_header("Authorization", f"Bearer {self.token}")
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout_seconds
            ) as response:
                plan = active_fault_plan()
                if plan is not None and plan.should_fire(
                    "client.connection_drop", f"{method} {path}"
                ):
                    raise http.client.IncompleteRead(b"")
                return (
                    response.status,
                    dict(response.headers.items()),
                    response.read(),
                )
        except urllib.error.HTTPError as exc:
            return exc.code, dict(exc.headers.items()), exc.read()
        except http.client.HTTPException as exc:
            # connection reset mid-body: ``response.read()`` raises raw
            # ``http.client`` errors (``IncompleteRead``, ...), which are
            # NOT ``OSError`` subclasses — map them to the same
            # retryable status-0 shape as a refused connection
            raise GatewayError(
                f"gateway connection dropped mid-response at "
                f"{self.base_url}: {type(exc).__name__}: {exc}",
                status=0,
            ) from exc
        except (urllib.error.URLError, OSError) as exc:
            raise GatewayError(
                f"cannot reach gateway at {self.base_url}: "
                f"{getattr(exc, 'reason', exc)}",
                status=0,
            ) from exc

    # -- retry loop ----------------------------------------------------

    @staticmethod
    def _retry_after(headers: Dict[str, str]) -> Optional[float]:
        value = headers.get("Retry-After")
        if value is None:
            return None
        try:
            return max(0.0, float(value))
        except ValueError:
            return None  # HTTP-date form; fall back to computed backoff

    def _backoff_delay(
        self, attempt: int, hinted: Optional[float]
    ) -> float:
        policy = self.retry
        delay = min(
            policy.backoff_max_seconds,
            policy.backoff_base_seconds * (2.0 ** attempt),
        )
        if policy.jitter_ratio > 0.0:
            spread = self._jitter_rng.uniform(
                -policy.jitter_ratio, policy.jitter_ratio
            )
            delay = min(
                policy.backoff_max_seconds, max(0.0, delay * (1.0 + spread))
            )
        if hinted is not None:
            delay = max(delay, hinted)
        return delay

    def _request(
        self, method: str, path: str, payload: Optional[Dict] = None
    ) -> Tuple[int, Dict[str, str], bytes]:
        """One logical request: attempts + backoff; raises on 4xx/5xx
        that survive the retry budget.
        """
        body = (
            None
            if payload is None
            else json.dumps(payload, sort_keys=True).encode("utf-8")
        )
        policy = self.retry
        last_error: Optional[GatewayError] = None
        for attempt in range(policy.max_retries + 1):
            try:
                status, headers, data = self._attempt(method, path, body)
            except GatewayError as exc:
                last_error = exc  # connection-level: always retryable
            else:
                if status < 400:
                    return status, headers, data
                message, code, body_hint = parse_error_body(data, status)
                retry_after = self._retry_after(headers)
                if retry_after is None:
                    retry_after = body_hint
                last_error = GatewayError(
                    message,
                    status=status,
                    retry_after=retry_after,
                    code=code,
                )
                if status not in policy.retry_statuses:
                    raise last_error
            if attempt >= policy.max_retries:
                break
            self._sleep(
                self._backoff_delay(
                    attempt, getattr(last_error, "retry_after", None)
                )
            )
        raise last_error

    # -- decoding ------------------------------------------------------

    def _decode_json(self, data: bytes, path: str, status: int) -> Dict:
        try:
            return json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise GatewayError(
                f"gateway returned invalid JSON for {path}: {exc}",
                status=status,
            ) from exc

    def _request_json(
        self, method: str, path: str, payload: Optional[Dict] = None
    ) -> Dict:
        status, _, data = self._request(method, path, payload)
        return self._decode_json(data, path, status)
