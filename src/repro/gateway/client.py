"""Typed Python client for the gateway (stdlib ``urllib`` only).

:class:`GatewayClient` mirrors the local
:class:`~repro.service.DecompositionService` surface — ``submit`` /
``job`` / ``jobs`` / ``fetch_design_dict`` — returning the same
:class:`~repro.service.JobRecord` and design-document types, which is
what lets the CLI run one code path for local and ``--remote`` modes.

All connection handling, Retry-After-honoring backoff, and typed
status-0 errors live in the shared
:class:`~repro.gateway.transport.HttpTransport` base (also used by
:class:`~repro.fleet.client.FleetClient`); this module only adds the
submitter-facing API surface.  All failures surface as
:class:`~repro.errors.GatewayError` carrying the HTTP status (0 when no
response existed), the canonical-envelope error code when the server
sent one, and any ``Retry-After`` value.
"""

from __future__ import annotations

import time
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import GatewayError
from repro.gateway.transport import HttpTransport, RetryPolicy
from repro.serialization import ensure_design_document
from repro.service.jobstore import JobRecord
from repro.service.spec import JobSpec

__all__ = ["GatewayClient", "RetryPolicy"]

#: terminal job states — polling stops here
_TERMINAL = ("done", "failed", "quarantined")


class GatewayClient(HttpTransport):
    """Client for one gateway base URL (see module docs).

    Constructor parameters are inherited unchanged from
    :class:`~repro.gateway.transport.HttpTransport`:
    ``(base_url, token=None, timeout_seconds=30.0, retry=None,
    sleep=time.sleep)``.
    """

    # -- API surface ---------------------------------------------------

    def healthz(self) -> Dict:
        """Liveness document (status, version, pending jobs)."""
        return self._request_json("GET", "/v1/healthz")

    def status(self) -> Dict:
        """The service telemetry summary (``service_summary`` shape)."""
        return self._request_json("GET", "/v1/status")

    def metrics_text(self) -> str:
        """The Prometheus text exposition, verbatim."""
        _, _, data = self._request("GET", "/v1/metrics")
        return data.decode("utf-8")

    def submit(self, spec: JobSpec) -> Tuple[JobRecord, bool]:
        """Submit one spec; returns ``(record, deduplicated)``.

        Idempotent end to end: the server dedups by artifact key, so
        retrying a submission whose response was lost returns the
        original job instead of enqueueing a twin.
        """
        data = self._request_json("POST", "/v1/jobs", spec.to_wire())
        return JobRecord.from_dict(data["job"]), bool(
            data.get("deduplicated", False)
        )

    def job(self, job_id: str) -> JobRecord:
        """Current record of one job (includes the failure log)."""
        data = self._request_json("GET", f"/v1/jobs/{job_id}")
        return JobRecord.from_dict(data["job"])

    @staticmethod
    def _jobs_query(
        state: Optional[str],
        limit: Optional[int],
        cursor: Optional[str],
    ) -> str:
        params = []
        if state:
            params.append(f"state={state}")
        if limit is not None:
            params.append(f"limit={int(limit)}")
        if cursor:
            params.append(f"cursor={cursor}")
        return "?" + "&".join(params) if params else ""

    def jobs(self, state: Optional[str] = None) -> List[JobRecord]:
        """All jobs, oldest first, optionally filtered by state.

        Unpaginated convenience — pages through the server cursor
        internally.  Prefer :meth:`jobs_page` / :meth:`iter_jobs` when
        the queue may be large.
        """
        return list(self.iter_jobs(state=state))

    def jobs_page(
        self,
        state: Optional[str] = None,
        limit: Optional[int] = None,
        cursor: Optional[str] = None,
    ) -> Tuple[List[JobRecord], Optional[str]]:
        """One page of jobs: ``(records, next_cursor)``.

        ``next_cursor`` is ``None`` on the last page; pass it back
        verbatim to continue.  Ordering is stable (``created_at, id``)
        so pages never skip or repeat jobs submitted mid-pagination.
        """
        path = "/v1/jobs" + self._jobs_query(state, limit, cursor)
        data = self._request_json("GET", path)
        records = [JobRecord.from_dict(entry) for entry in data["jobs"]]
        return records, data.get("next_cursor")

    def iter_jobs(
        self,
        state: Optional[str] = None,
        page_size: int = 200,
    ) -> Iterator[JobRecord]:
        """Lazily iterate every job, oldest first, page by page."""
        cursor: Optional[str] = None
        while True:
            records, cursor = self.jobs_page(
                state=state, limit=page_size, cursor=cursor
            )
            yield from records
            if cursor is None:
                return

    def result(self, job_id: str) -> Dict:
        """The finished job's artifact envelope (design + provenance)."""
        return self._request_json("GET", f"/v1/jobs/{job_id}/result")

    def fetch_design_dict(self, job_id: str) -> Dict:
        """The finished job's design document, format-validated."""
        return ensure_design_document(self.result(job_id)["design"])

    def wait(
        self,
        job_id: str,
        poll_seconds: float = 0.25,
        timeout_seconds: Optional[float] = None,
    ) -> JobRecord:
        """Poll until the job reaches a terminal state.

        Raises :class:`GatewayError` (status 0) on timeout; inspect the
        returned record's ``state``/``error`` for failure details.
        """
        deadline = (
            None
            if timeout_seconds is None
            else time.monotonic() + timeout_seconds
        )
        while True:
            record = self.job(job_id)
            if record.state in _TERMINAL:
                return record
            if deadline is not None and time.monotonic() >= deadline:
                raise GatewayError(
                    f"timed out waiting for job {job_id} "
                    f"(last state {record.state!r})",
                    status=0,
                )
            self._sleep(poll_seconds)
