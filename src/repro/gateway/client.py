"""Typed Python client for the gateway (stdlib ``urllib`` only).

:class:`GatewayClient` mirrors the local
:class:`~repro.service.DecompositionService` surface — ``submit`` /
``job`` / ``jobs`` / ``fetch_design_dict`` — returning the same
:class:`~repro.service.JobRecord` and design-document types, which is
what lets the CLI run one code path for local and ``--remote`` modes.

Transient failures (connection refused, 408/429/503) are retried with
exponential backoff, and a server ``Retry-After`` hint always wins over
the computed delay when it is longer.  All failures surface as
:class:`~repro.errors.GatewayError` carrying the HTTP status (0 when no
response existed) and any ``Retry-After`` value.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import GatewayError
from repro.resilience import active_fault_plan
from repro.serialization import ensure_design_document
from repro.service.jobstore import JobRecord
from repro.service.spec import JobSpec

__all__ = ["GatewayClient", "RetryPolicy"]

#: terminal job states — polling stops here
_TERMINAL = ("done", "failed", "quarantined")


@dataclass(frozen=True)
class RetryPolicy:
    """When and how the client retries a failed request.

    Attributes
    ----------
    max_retries:
        Retries *after* the first attempt (0 disables retrying).
    backoff_base_seconds, backoff_max_seconds:
        Exponential schedule: ``base * 2**attempt`` capped at the max.
        A server ``Retry-After`` longer than the computed delay is
        honored instead.
    retry_statuses:
        HTTP statuses worth retrying — throttling and transient
        unavailability, never 4xx input errors.  Connection-level
        failures (status 0) are always retried.
    """

    max_retries: int = 4
    backoff_base_seconds: float = 0.25
    backoff_max_seconds: float = 8.0
    retry_statuses: Tuple[int, ...] = (408, 429, 503)


class GatewayClient:
    """Client for one gateway base URL (see module docs).

    Parameters
    ----------
    base_url:
        E.g. ``http://127.0.0.1:8080``; a trailing slash is fine.
    token:
        Bearer token matching the server's ``auth_token``; sent as
        ``Authorization: Bearer <token>`` when set.
    timeout_seconds:
        Per-request socket timeout.
    retry:
        See :class:`RetryPolicy`.
    sleep:
        Injection point for tests (default :func:`time.sleep`).
    """

    def __init__(
        self,
        base_url: str,
        token: Optional[str] = None,
        timeout_seconds: float = 30.0,
        retry: Optional[RetryPolicy] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.token = token
        self.timeout_seconds = timeout_seconds
        self.retry = retry if retry is not None else RetryPolicy()
        self._sleep = sleep

    # -- transport -----------------------------------------------------

    def _attempt(
        self, method: str, path: str, body: Optional[bytes]
    ) -> Tuple[int, Dict[str, str], bytes]:
        request = urllib.request.Request(
            self.base_url + path, data=body, method=method
        )
        request.add_header("Accept", "application/json")
        if body is not None:
            request.add_header("Content-Type", "application/json")
        if self.token is not None:
            request.add_header("Authorization", f"Bearer {self.token}")
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout_seconds
            ) as response:
                plan = active_fault_plan()
                if plan is not None and plan.should_fire(
                    "client.connection_drop", f"{method} {path}"
                ):
                    raise http.client.IncompleteRead(b"")
                return (
                    response.status,
                    dict(response.headers.items()),
                    response.read(),
                )
        except urllib.error.HTTPError as exc:
            return exc.code, dict(exc.headers.items()), exc.read()
        except http.client.HTTPException as exc:
            # connection reset mid-body: ``response.read()`` raises raw
            # ``http.client`` errors (``IncompleteRead``, ...), which are
            # NOT ``OSError`` subclasses — map them to the same
            # retryable status-0 shape as a refused connection
            raise GatewayError(
                f"gateway connection dropped mid-response at "
                f"{self.base_url}: {type(exc).__name__}: {exc}",
                status=0,
            ) from exc
        except (urllib.error.URLError, OSError) as exc:
            raise GatewayError(
                f"cannot reach gateway at {self.base_url}: "
                f"{getattr(exc, 'reason', exc)}",
                status=0,
            ) from exc

    @staticmethod
    def _retry_after(headers: Dict[str, str]) -> Optional[float]:
        value = headers.get("Retry-After")
        if value is None:
            return None
        try:
            return max(0.0, float(value))
        except ValueError:
            return None  # HTTP-date form; fall back to computed backoff

    @staticmethod
    def _error_message(payload: bytes, status: int) -> str:
        try:
            data = json.loads(payload.decode("utf-8"))
            return str(data.get("error", data))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return f"HTTP {status}"

    def _request(
        self, method: str, path: str, payload: Optional[Dict] = None
    ) -> Tuple[int, Dict[str, str], bytes]:
        """One logical request: attempts + backoff; raises on 4xx/5xx
        that survive the retry budget.
        """
        body = (
            None
            if payload is None
            else json.dumps(payload, sort_keys=True).encode("utf-8")
        )
        policy = self.retry
        last_error: Optional[GatewayError] = None
        for attempt in range(policy.max_retries + 1):
            try:
                status, headers, data = self._attempt(method, path, body)
            except GatewayError as exc:
                last_error = exc  # connection-level: always retryable
            else:
                if status < 400:
                    return status, headers, data
                retry_after = self._retry_after(headers)
                last_error = GatewayError(
                    self._error_message(data, status),
                    status=status,
                    retry_after=retry_after,
                )
                if status not in policy.retry_statuses:
                    raise last_error
            if attempt >= policy.max_retries:
                break
            delay = min(
                policy.backoff_max_seconds,
                policy.backoff_base_seconds * (2.0 ** attempt),
            )
            hinted = getattr(last_error, "retry_after", None)
            if hinted is not None:
                delay = max(delay, hinted)
            self._sleep(delay)
        raise last_error

    def _request_json(
        self, method: str, path: str, payload: Optional[Dict] = None
    ) -> Dict:
        status, _, data = self._request(method, path, payload)
        try:
            return json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise GatewayError(
                f"gateway returned invalid JSON for {path}: {exc}",
                status=status,
            ) from exc

    # -- API surface ---------------------------------------------------

    def healthz(self) -> Dict:
        """Liveness document (status, version, pending jobs)."""
        return self._request_json("GET", "/v1/healthz")

    def status(self) -> Dict:
        """The service telemetry summary (``service_summary`` shape)."""
        return self._request_json("GET", "/v1/status")

    def metrics_text(self) -> str:
        """The Prometheus text exposition, verbatim."""
        _, _, data = self._request("GET", "/v1/metrics")
        return data.decode("utf-8")

    def submit(self, spec: JobSpec) -> Tuple[JobRecord, bool]:
        """Submit one spec; returns ``(record, deduplicated)``.

        Idempotent end to end: the server dedups by artifact key, so
        retrying a submission whose response was lost returns the
        original job instead of enqueueing a twin.
        """
        data = self._request_json("POST", "/v1/jobs", spec.to_wire())
        return JobRecord.from_dict(data["job"]), bool(
            data.get("deduplicated", False)
        )

    def job(self, job_id: str) -> JobRecord:
        """Current record of one job (includes the failure log)."""
        data = self._request_json("GET", f"/v1/jobs/{job_id}")
        return JobRecord.from_dict(data["job"])

    def jobs(self, state: Optional[str] = None) -> List[JobRecord]:
        """All jobs, oldest first, optionally filtered by state."""
        path = "/v1/jobs" + (f"?state={state}" if state else "")
        data = self._request_json("GET", path)
        return [JobRecord.from_dict(entry) for entry in data["jobs"]]

    def result(self, job_id: str) -> Dict:
        """The finished job's artifact envelope (design + provenance)."""
        return self._request_json("GET", f"/v1/jobs/{job_id}/result")

    def fetch_design_dict(self, job_id: str) -> Dict:
        """The finished job's design document, format-validated."""
        return ensure_design_document(self.result(job_id)["design"])

    def wait(
        self,
        job_id: str,
        poll_seconds: float = 0.25,
        timeout_seconds: Optional[float] = None,
    ) -> JobRecord:
        """Poll until the job reaches a terminal state.

        Raises :class:`GatewayError` (status 0) on timeout; inspect the
        returned record's ``state``/``error`` for failure details.
        """
        deadline = (
            None
            if timeout_seconds is None
            else time.monotonic() + timeout_seconds
        )
        while True:
            record = self.job(job_id)
            if record.state in _TERMINAL:
                return record
            if deadline is not None and time.monotonic() >= deadline:
                raise GatewayError(
                    f"timed out waiting for job {job_id} "
                    f"(last state {record.state!r})",
                    status=0,
                )
            self._sleep(poll_seconds)
