"""The gateway HTTP server (stdlib ``http.server``, threaded).

:class:`DecompositionGateway` wraps a
:class:`~repro.service.DecompositionService` in a
:class:`~http.server.ThreadingHTTPServer`.  The gateway is a *front
end* only — it never executes jobs itself; workers are the service's
business (run them in the same process via ``serve --http``, or in any
other process sharing the service directory).

Request handling order for ``POST /v1/jobs`` is deliberate::

    auth -> rate limit -> size limit -> parse (strict JobSpecV1)
         -> idempotent dedup -> queue-depth backpressure -> enqueue

Dedup runs *before* backpressure so a resubmission of finished (or
already-queued) work still succeeds on a saturated queue — the client
gets its twin back instead of a useless 503, and no capacity is spent.

Every response is JSON with a correct ``Content-Length``.  Rejections
all use one canonical envelope —
``{"error": {"code", "message", "retry_after"?}, "status": ...}`` —
across every ``/v1/*`` endpoint (``code`` is a stable slug such as
``rate_limited`` or ``overloaded``; the top-level ``status`` mirror is
kept for legacy readers), and 429/503 additionally carry a
``Retry-After`` header the client's backoff honors.
"""

from __future__ import annotations

import hmac
import json
import logging
import sqlite3
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, Optional, Union
from urllib.parse import parse_qs, urlsplit

from repro._version import package_version
from repro.errors import (
    JobNotFound,
    ReproError,
    ServiceError,
    ShardUnavailableError,
)
from repro.obs.exporters import PROMETHEUS_CONTENT_TYPE
from repro.obs.metrics import get_metrics
from repro.service.service import DecompositionService
from repro.service.spec import JobSpec, queue_artifact_key
from repro.service.telemetry import prometheus_exposition, service_summary

__all__ = ["DecompositionGateway", "GatewayConfig", "TokenBucket"]

logger = logging.getLogger(__name__)

#: request-latency histogram boundaries (seconds)
_LATENCY_BUCKETS = (0.001, 0.005, 0.02, 0.1, 0.5, 2.0, 10.0)

#: default machine-readable error code per HTTP status (canonical
#: envelope); handlers override with a more specific slug where one
#: exists (e.g. 503 ``overloaded`` vs ``store_unavailable``)
_ERROR_CODES = {
    400: "invalid_request",
    401: "unauthorized",
    404: "not_found",
    409: "conflict",
    411: "length_required",
    413: "payload_too_large",
    429: "rate_limited",
    500: "internal",
    503: "unavailable",
}


@dataclass(frozen=True)
class GatewayConfig:
    """Tunable gateway policy; defaults suit a trusted local network.

    Attributes
    ----------
    host, port:
        Bind address.  Port 0 binds an ephemeral port (tests); the
        resolved port is on :attr:`DecompositionGateway.port`.
    auth_token:
        When set, every endpoint except ``/v1/healthz`` requires
        ``Authorization: Bearer <token>`` (constant-time comparison).
        The health endpoint stays open for load-balancer probes.
    rate_limit_per_second, rate_limit_burst:
        Per-client token bucket.  ``None`` disables rate limiting.
        Clients are keyed by peer address.
    max_queue_depth:
        Backpressure threshold: when queued+running jobs reach this,
        new (non-deduplicated) submissions get 503 + ``Retry-After``.
    max_request_bytes:
        Request bodies above this are rejected with 413 before parsing.
    request_timeout_seconds:
        Socket timeout while reading one request; a stalled client is
        dropped instead of pinning a handler thread.
    retry_after_seconds:
        The ``Retry-After`` hint attached to 503 backpressure responses
        (rate-limit 429s compute their own from the bucket deficit).
    access_log_path:
        When set, one JSON line per request is appended here
        (timestamp, client, method, path, status, duration, bytes).
    claim_wait_seconds:
        How long ``POST /v1/workers/claim`` long-polls an empty queue
        before answering 204 + ``Retry-After`` (0 disables long-poll).
        Callers may lower (never raise) this per request with a
        ``wait`` field in the claim body.
    claim_poll_seconds:
        Store re-check interval inside the claim long-poll.
    claim_retry_after_seconds:
        The ``Retry-After`` hint on empty 204 claim responses.
    worker_rate_limit_per_second, worker_rate_limit_burst:
        Separate token-bucket class for the ``/v1/workers/*`` plane, so
        a hot claim loop never burns the submitter budget (and vice
        versa).  ``None`` disables limiting for worker endpoints —
        the long-poll already paces empty-queue claims.
    """

    host: str = "127.0.0.1"
    port: int = 8080
    auth_token: Optional[str] = None
    rate_limit_per_second: Optional[float] = None
    rate_limit_burst: int = 10
    max_queue_depth: int = 64
    max_request_bytes: int = 1 << 20
    request_timeout_seconds: float = 30.0
    retry_after_seconds: float = 2.0
    access_log_path: Optional[Union[str, Path]] = None
    claim_wait_seconds: float = 20.0
    claim_poll_seconds: float = 0.05
    claim_retry_after_seconds: float = 1.0
    worker_rate_limit_per_second: Optional[float] = None
    worker_rate_limit_burst: int = 20


class TokenBucket:
    """Classic token bucket; thread-safe; injectable clock for tests."""

    def __init__(
        self, rate: float, burst: int, clock=time.monotonic
    ) -> None:
        if rate <= 0 or burst <= 0:
            raise ServiceError(
                f"rate and burst must be positive, got {rate}/{burst}"
            )
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._updated = clock()
        self._lock = threading.Lock()

    def acquire(self) -> float:
        """Take one token.  Returns 0.0 on success, else the seconds
        until a token becomes available (the ``Retry-After`` hint).
        """
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.burst,
                self._tokens + (now - self._updated) * self.rate,
            )
            self._updated = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return 0.0
            return (1.0 - self._tokens) / self.rate


class _AccessLog:
    """Thread-safe JSONL access log (line-buffered append)."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._fh = open(self.path, "a", encoding="utf-8")

    def write(self, record: Dict) -> None:
        line = json.dumps(record, sort_keys=True)
        with self._lock:
            self._fh.write(line + "\n")
            self._fh.flush()

    def close(self) -> None:
        with self._lock:
            self._fh.close()


class DecompositionGateway:
    """HTTP front end over one decomposition service (module docs).

    Usable blocking (:meth:`serve_forever`), backgrounded
    (:meth:`start` / :meth:`stop`), or as a context manager::

        with DecompositionGateway(service, GatewayConfig(port=0)) as gw:
            client = GatewayClient(gw.url)
            ...

    :meth:`stop` is a *graceful drain*: it stops accepting, then joins
    every in-flight handler thread before returning (the underlying
    ``ThreadingHTTPServer`` runs with non-daemonic handler threads and
    ``block_on_close``).
    """

    def __init__(
        self,
        service: DecompositionService,
        config: Optional[GatewayConfig] = None,
    ) -> None:
        self.service = service
        self.config = config if config is not None else GatewayConfig()
        self._access_log = (
            _AccessLog(self.config.access_log_path)
            if self.config.access_log_path is not None
            else None
        )
        self._buckets: Dict[str, TokenBucket] = {}
        self._buckets_lock = threading.Lock()
        self._metrics = get_metrics()
        self._thread: Optional[threading.Thread] = None
        # set before shutdown so in-flight claim long-polls return
        # promptly instead of pinning the graceful drain
        self._stopping = threading.Event()
        handler = _build_handler(self)
        self._httpd = ThreadingHTTPServer(
            (self.config.host, self.config.port), handler
        )
        # graceful drain: track handler threads and join them on close
        self._httpd.daemon_threads = False
        self._httpd.block_on_close = True

    # -- addressing ----------------------------------------------------

    @property
    def port(self) -> int:
        """The actually-bound port (resolves config port 0)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL clients should use."""
        return f"http://{self.config.host}:{self.port}"

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "DecompositionGateway":
        """Serve on a background thread; returns self for chaining."""
        if self._thread is not None:
            raise ServiceError("gateway already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="gateway-accept",
            daemon=True,
        )
        self._thread.start()
        logger.info("gateway listening on %s", self.url)
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`stop` (or Ctrl-C)."""
        logger.info("gateway listening on %s", self.url)
        self._httpd.serve_forever()

    def request_drain(self) -> None:
        """Wake parked claim long-polls without tearing anything down.

        Signal-handler safe (sets one event, no locks, no joins): the
        CLI's SIGTERM hook calls this *synchronously in signal
        context* so every parked ``/v1/workers/claim`` long-poll
        returns 204 + Retry-After immediately, instead of holding its
        poll deadline while the interpreter unwinds toward
        :meth:`stop`.  Idempotent; :meth:`stop` implies it.
        """
        self._stopping.set()

    def stop(self) -> None:
        """Stop accepting, drain in-flight handlers, release the port."""
        self.request_drain()
        self._httpd.shutdown()
        self._httpd.server_close()  # joins handler threads
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        if self._access_log is not None:
            self._access_log.close()

    def __enter__(self) -> "DecompositionGateway":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- shared per-request machinery ----------------------------------

    def bucket_for(
        self, client: str, worker: bool = False
    ) -> Optional[TokenBucket]:
        """The rate-limit bucket for one peer (``None`` — unlimited).

        ``worker=True`` selects the separate ``/v1/workers/*`` bucket
        class (own rate/burst config, own table key) — the worker plane
        and the submitter plane never draw from each other's budget.
        """
        if worker:
            rate = self.config.worker_rate_limit_per_second
            burst = self.config.worker_rate_limit_burst
            key = f"worker:{client}"
        else:
            rate = self.config.rate_limit_per_second
            burst = self.config.rate_limit_burst
            key = client
        if rate is None:
            return None
        with self._buckets_lock:
            # bound the table: a scrape-happy network of ephemeral
            # clients must not grow this dict without limit
            if len(self._buckets) > 4096:
                self._buckets.clear()
            bucket = self._buckets.get(key)
            if bucket is None:
                bucket = TokenBucket(rate, burst)
                self._buckets[key] = bucket
            return bucket

    def record(
        self,
        *,
        client: str,
        method: str,
        path: str,
        status: int,
        duration_seconds: float,
        bytes_out: int,
    ) -> None:
        """Account one finished request (metrics + access log)."""
        self._metrics.counter(
            "gateway_requests", help="HTTP requests handled"
        ).inc()
        if status >= 500:
            self._metrics.counter(
                "gateway_responses_5xx", help="server-error responses"
            ).inc()
        elif status >= 400:
            self._metrics.counter(
                "gateway_responses_4xx", help="client-error responses"
            ).inc()
        self._metrics.histogram(
            "gateway_request_seconds",
            buckets=_LATENCY_BUCKETS,
            help="request wall time",
        ).observe(duration_seconds)
        if self._access_log is not None:
            self._access_log.write(
                {
                    "ts": time.time(),
                    "client": client,
                    "method": method,
                    "path": path,
                    "status": status,
                    "duration_ms": round(duration_seconds * 1000.0, 3),
                    "bytes_out": bytes_out,
                }
            )


def _build_handler(gateway: DecompositionGateway):
    """Bind a ``BaseHTTPRequestHandler`` subclass to one gateway."""

    config = gateway.config
    service = gateway.service

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = f"repro-gateway/{package_version()}"
        timeout = config.request_timeout_seconds

        # -- plumbing --------------------------------------------------

        def log_message(self, fmt, *args):  # stdlib default spams stderr
            logger.debug("%s %s", self.address_string(), fmt % args)

        def _finish(self, status: int, body: bytes,
                    content_type: str = "application/json",
                    extra_headers: Optional[Dict[str, str]] = None) -> None:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            for key, value in (extra_headers or {}).items():
                self.send_header(key, value)
            self.end_headers()
            self.wfile.write(body)
            gateway.record(
                client=self.client_address[0],
                method=self.command,
                path=self.path,
                status=status,
                duration_seconds=time.perf_counter() - self._started,
                bytes_out=len(body),
            )

        def _json(self, status: int, payload: Dict,
                  extra_headers: Optional[Dict[str, str]] = None) -> None:
            self._finish(
                status,
                json.dumps(payload, sort_keys=True).encode("utf-8"),
                extra_headers=extra_headers,
            )

        def _error(self, status: int, message: str,
                   retry_after: Optional[float] = None,
                   code: Optional[str] = None) -> None:
            """One canonical error envelope for every rejection.

            ``{"error": {"code", "message", "retry_after"?},
            "status": ...}`` — ``code`` defaults from the status, the
            top-level ``status`` mirror keeps legacy readers working,
            and any ``retry_after`` is surfaced both in the envelope
            and as a ``Retry-After`` header.
            """
            headers = (
                {"Retry-After": f"{retry_after:g}"}
                if retry_after is not None
                else None
            )
            envelope: Dict = {
                "code": code or _ERROR_CODES.get(status, "error"),
                "message": message,
            }
            if retry_after is not None:
                envelope["retry_after"] = retry_after
            self._json(
                status,
                {"error": envelope, "status": status},
                extra_headers=headers,
            )

        # -- gatekeeping (auth, rate limit) ----------------------------

        def _authorized(self) -> bool:
            if config.auth_token is None:
                return True
            header = self.headers.get("Authorization", "")
            expected = f"Bearer {config.auth_token}"
            return hmac.compare_digest(
                header.encode("utf-8"), expected.encode("utf-8")
            )

        def _gate(self, worker: bool = False) -> bool:
            """Auth + rate limit; sends the rejection itself on False.

            ``worker=True`` draws from the worker-plane bucket class
            instead of the submitter one (see ``bucket_for``).
            """
            if not self._authorized():
                self._metrics_inc("gateway_rejected_auth",
                                  "requests rejected by bearer auth")
                self._error(401, "missing or invalid bearer token")
                return False
            bucket = gateway.bucket_for(
                self.client_address[0], worker=worker
            )
            if bucket is not None:
                wait = bucket.acquire()
                if wait > 0.0:
                    self._metrics_inc(
                        "gateway_rejected_ratelimit",
                        "requests rejected by the token bucket",
                    )
                    self._error(
                        429,
                        "rate limit exceeded",
                        retry_after=max(wait, 0.001),
                    )
                    return False
            return True

        @staticmethod
        def _metrics_inc(name: str, help: str) -> None:
            gateway._metrics.counter(name, help=help).inc()

        # -- routing ---------------------------------------------------

        def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
            self._started = time.perf_counter()
            parts = urlsplit(self.path)
            segments = [s for s in parts.path.split("/") if s]
            try:
                if segments == ["v1", "healthz"]:
                    # liveness stays unauthenticated (LB probes)
                    self._handle_healthz()
                    return
                if not self._gate():
                    return
                if segments == ["v1", "metrics"]:
                    self._handle_metrics()
                elif segments == ["v1", "status"]:
                    self._json(200, service_summary(
                        service.store, service.artifacts))
                elif segments == ["v1", "workers"]:
                    self._handle_workers()
                elif (len(segments) == 3
                      and segments[:2] == ["v1", "artifacts"]):
                    self._handle_artifact(segments[2])
                elif segments == ["v1", "jobs"]:
                    self._handle_list(parse_qs(parts.query))
                elif len(segments) == 3 and segments[:2] == ["v1", "jobs"]:
                    self._handle_job(segments[2])
                elif (len(segments) == 4 and segments[:2] == ["v1", "jobs"]
                      and segments[3] == "result"):
                    self._handle_result(segments[2])
                else:
                    self._error(404, f"no such endpoint: {parts.path}")
            except JobNotFound as exc:
                self._error(404, str(exc))
            except ShardUnavailableError as exc:
                self._shard_unavailable(exc)
            except ReproError as exc:
                self._error(400, str(exc))
            except Exception as exc:  # noqa: BLE001 — boundary
                logger.exception("gateway GET %s failed", self.path)
                self._error(500, f"internal error: {exc}")

        def do_POST(self) -> None:  # noqa: N802
            self._started = time.perf_counter()
            parts = urlsplit(self.path)
            segments = [s for s in parts.path.split("/") if s]
            try:
                if (len(segments) == 3
                        and segments[:2] == ["v1", "workers"]):
                    if not self._gate(worker=True):
                        return
                    self._handle_worker_verb(segments[2])
                    return
                if not self._gate():
                    return
                if segments == ["v1", "jobs"]:
                    self._handle_submit()
                else:
                    self._error(404, f"no such endpoint: {parts.path}")
            except JobNotFound as exc:
                self._error(404, str(exc))
            except ShardUnavailableError as exc:
                self._shard_unavailable(exc)
            except ReproError as exc:
                self._error(400, str(exc))
            except Exception as exc:  # noqa: BLE001 — boundary
                logger.exception("gateway POST %s failed", self.path)
                self._error(500, f"internal error: {exc}")

        # -- endpoints -------------------------------------------------

        def _shard_unavailable(self, exc: ShardUnavailableError) -> None:
            """Scoped 503: one shard's circuit is open, the rest serve."""
            self._metrics_inc(
                "gateway_rejected_shard_unavailable",
                "requests refused because their shard is degraded",
            )
            self._error(
                503,
                str(exc),
                retry_after=(
                    exc.retry_after
                    if exc.retry_after is not None
                    else config.retry_after_seconds
                ),
                code="store_unavailable",
            )

        def _handle_healthz(self) -> None:
            body = {
                "status": "ok",
                "version": package_version(),
                "pending": service.store.pending(),
            }
            # sharded stores report per-shard breaker state; overall
            # status flips to "degraded" while any circuit is open
            # (the store still serves on the survivors)
            shard_states = service.shard_states()
            if shard_states is not None:
                degraded = [
                    state["index"] for state in shard_states
                    if state["state"] != "healthy"
                ]
                body["shards"] = {
                    "total": len(shard_states),
                    "degraded": degraded,
                    "states": shard_states,
                }
                if degraded:
                    body["status"] = "degraded"
            self._json(200, body)

        def _handle_metrics(self) -> None:
            text = prometheus_exposition(
                service.store, service.artifacts
            )
            self._finish(
                200,
                text.encode("utf-8"),
                content_type=PROMETHEUS_CONTENT_TYPE,
            )

        def _handle_list(self, query: Dict) -> None:
            state = query.get("state", [None])[0]
            cursor = query.get("cursor", [None])[0]
            limit_raw = query.get("limit", [None])[0]
            limit = None
            if limit_raw is not None:
                try:
                    limit = int(limit_raw)
                except ValueError:
                    limit = -1
                if limit <= 0:
                    self._error(
                        400,
                        f"limit must be a positive integer, "
                        f"got {limit_raw!r}",
                    )
                    return
            jobs, next_cursor = service.jobs_page(
                state=state, limit=limit, cursor=cursor
            )
            self._json(
                200,
                {
                    "jobs": [job.to_dict() for job in jobs],
                    "next_cursor": next_cursor,
                },
            )

        def _handle_job(self, job_id: str) -> None:
            self._json(200, {"job": service.job(job_id).to_dict()})

        def _handle_result(self, job_id: str) -> None:
            job = service.job(job_id)
            if job.state != "done":
                # not an input error: the job exists but has no result
                # (yet / ever) — 409 tells pollers to keep waiting or
                # give up, with the failure log attached
                self._error(
                    409,
                    f"job {job_id} is {job.state!r}, not done"
                    + (f" ({job.error})" if job.error else ""),
                )
                return
            self._json(200, service.fetch_envelope(job_id))

        def _read_body(self) -> Optional[bytes]:
            length = self.headers.get("Content-Length")
            if length is None:
                self._error(411, "Content-Length required")
                return None
            length = int(length)
            if length > config.max_request_bytes:
                self._error(
                    413,
                    f"request of {length} bytes exceeds the "
                    f"{config.max_request_bytes}-byte limit",
                )
                return None
            return self.rfile.read(length)

        def _handle_submit(self) -> None:
            raw = self._read_body()
            if raw is None:
                return
            try:
                payload = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                self._error(400, f"invalid JSON body: {exc}")
                return
            spec = JobSpec.from_wire(payload)  # strict; 400 via ReproError
            # also 400s partition-parent documents (k > 1): the fan-out
            # is coordinated client-side, never enqueued wholesale
            key = queue_artifact_key(spec)
            live = service.store.find_by_key(
                key, states=("queued", "running", "done")
            )
            if live:
                # idempotent resubmission — no capacity consumed, so it
                # succeeds even when the queue is refusing new work
                self._json(
                    200,
                    {"job": live[0].to_dict(), "deduplicated": True},
                )
                return
            if service.store.pending() >= config.max_queue_depth:
                self._metrics_inc(
                    "gateway_rejected_backpressure",
                    "submissions rejected by queue-depth backpressure",
                )
                self._error(
                    503,
                    f"queue is full ({config.max_queue_depth} jobs "
                    f"pending); retry later",
                    retry_after=config.retry_after_seconds,
                    code="overloaded",
                )
                return
            job = service.store.submit(spec, artifact_key=key)
            self._json(
                201, {"job": job.to_dict(), "deduplicated": False}
            )

        # -- worker plane ----------------------------------------------

        def _handle_workers(self) -> None:
            now = time.time()
            self._json(
                200,
                {
                    "workers": [
                        worker.to_dict(now)
                        for worker in service.store.list_workers()
                    ]
                },
            )

        def _handle_artifact(self, key: str) -> None:
            envelope = service.artifacts.get(key)
            if envelope is None:
                self._error(404, f"no artifact stored under key {key}")
                return
            self._json(200, envelope)

        def _read_json(self) -> Optional[Dict]:
            raw = self._read_body()
            if raw is None:
                return None
            try:
                payload = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                self._error(400, f"invalid JSON body: {exc}")
                return None
            if not isinstance(payload, dict):
                self._error(400, "request body must be a JSON object")
                return None
            return payload

        @staticmethod
        def _require(payload: Dict, field: str) -> str:
            value = payload.get(field)
            if not isinstance(value, str) or not value:
                raise ServiceError(
                    f"field {field!r} (non-empty string) is required"
                )
            return value

        def _handle_worker_verb(self, verb: str) -> None:
            handlers = {
                "claim": self._worker_claim,
                "heartbeat": self._worker_heartbeat,
                "checkpoint": self._worker_checkpoint,
                "complete": self._worker_complete,
                "fail": self._worker_fail,
            }
            handler = handlers.get(verb)
            if handler is None:
                self._error(
                    404,
                    f"no such worker verb: {verb!r} "
                    f"(one of {sorted(handlers)})",
                )
                return
            payload = self._read_json()
            if payload is None:
                return
            handler(payload)

        def _owned_running(
            self, payload: Dict
        ) -> Optional["JobRecord"]:
            """The payload's job iff running and owned by the caller.

            Sends the 409 itself and returns ``None`` when the caller
            lost its claim (lease expired, job recovered or finished
            elsewhere) — the agent must abandon the attempt.
            """
            worker = self._require(payload, "worker")
            job_id = self._require(payload, "job_id")
            job = service.store.get(job_id)  # JobNotFound -> 404
            if job.state != "running" or job.worker != worker:
                self._error(
                    409,
                    f"job {job_id} is not running for {worker!r} "
                    f"(state {job.state!r}, holder {job.worker!r})",
                )
                return None
            return job

        def _worker_claim(self, payload: Dict) -> None:
            worker = self._require(payload, "worker")
            wait = max(
                0.0,
                min(
                    float(payload.get("wait", config.claim_wait_seconds)),
                    config.claim_wait_seconds,
                ),
            )
            deadline = time.monotonic() + wait
            while True:
                try:
                    service.scheduler.recover_orphans()
                    job = service.scheduler.claim(worker, kind="remote")
                except sqlite3.OperationalError as exc:
                    # transient store pressure — punt, agent backs off
                    self._error(
                        503,
                        f"job store unavailable: {exc}",
                        retry_after=config.claim_retry_after_seconds,
                        code="store_unavailable",
                    )
                    return
                if job is not None:
                    self._metrics_inc(
                        "gateway_worker_claims",
                        "jobs claimed by remote workers",
                    )
                    checkpoint = service.artifacts.get_checkpoint(
                        job.artifact_key
                    )
                    self._json(
                        200,
                        {
                            "job": job.to_dict(),
                            "checkpoint": checkpoint,
                            "lease_seconds": (
                                service.scheduler.policy.lease_seconds
                            ),
                        },
                    )
                    return
                if (
                    gateway._stopping.is_set()
                    or time.monotonic() >= deadline
                ):
                    break
                gateway._stopping.wait(config.claim_poll_seconds)
            self._metrics_inc(
                "gateway_worker_claims_empty",
                "claim long-polls that timed out empty",
            )
            self._finish(
                204,
                b"",
                extra_headers={
                    "Retry-After": (
                        f"{config.claim_retry_after_seconds:g}"
                    )
                },
            )

        def _worker_heartbeat(self, payload: Dict) -> None:
            job = self._owned_running(payload)
            if job is None:
                return
            service.scheduler.heartbeat(job)
            self._metrics_inc(
                "gateway_worker_heartbeats",
                "lease renewals from remote workers",
            )
            self._json(
                200,
                {
                    "ok": True,
                    "lease_seconds": (
                        service.scheduler.policy.lease_seconds
                    ),
                },
            )

        def _worker_checkpoint(self, payload: Dict) -> None:
            job = self._owned_running(payload)
            if job is None:
                return
            checkpoint = payload.get("checkpoint")
            if not isinstance(checkpoint, dict):
                raise ServiceError(
                    "field 'checkpoint' (JSON object) is required"
                )
            service.artifacts.put_checkpoint(
                job.artifact_key, checkpoint
            )
            # a shipped checkpoint is proof of life — renew the lease
            service.scheduler.heartbeat(job)
            self._metrics_inc(
                "gateway_worker_checkpoints",
                "checkpoints shipped by remote workers",
            )
            self._json(200, {"ok": True})

        def _worker_complete(self, payload: Dict) -> None:
            """Idempotent completion, keyed by artifact key.

            The artifact write is content-addressed and the design is
            deterministic, so replays (network retry, double worker)
            converge: whoever writes first wins, everyone else gets
            ``already_done``/``superseded`` — never an error, never a
            lost or duplicated result.
            """
            worker = self._require(payload, "worker")
            job_id = self._require(payload, "job_id")
            key = self._require(payload, "artifact_key")
            job = service.store.get(job_id)  # JobNotFound -> 404
            if key != job.artifact_key:
                raise ServiceError(
                    f"artifact key mismatch for job {job_id}: "
                    f"claimed {key}, expected {job.artifact_key}"
                )
            design = payload.get("design")
            if design is not None and service.artifacts.get(key) is None:
                service.artifacts.put(
                    key, design, payload.get("meta") or {}
                )
            if job.state == "done":
                self._json(
                    200, {"result": "already_done", "state": "done"}
                )
                return
            if job.state != "running" or job.worker != worker:
                self._json(
                    200, {"result": "superseded", "state": job.state}
                )
                return
            try:
                service.scheduler.complete(
                    job,
                    med=payload.get("med"),
                    runtime_seconds=payload.get("runtime_seconds"),
                    cache_hit=bool(payload.get("cache_hit", False)),
                )
            except ServiceError:
                # lost the race between the ownership check and the
                # transition (lease expired mid-request) — the other
                # holder owns the durable state now
                self._json(
                    200,
                    {
                        "result": "superseded",
                        "state": service.store.get(job_id).state,
                    },
                )
                return
            service.artifacts.delete_checkpoint(key)
            self._metrics_inc(
                "gateway_worker_completions",
                "jobs completed by remote workers",
            )
            self._json(200, {"result": "completed", "state": "done"})

        def _worker_fail(self, payload: Dict) -> None:
            worker = self._require(payload, "worker")
            job_id = self._require(payload, "job_id")
            error = self._require(payload, "error")
            job = service.store.get(job_id)  # JobNotFound -> 404
            if job.state != "running" or job.worker != worker:
                self._json(
                    200, {"result": "ignored", "state": job.state}
                )
                return
            try:
                state = service.scheduler.record_failure(
                    job, error=error, now=time.time()
                )
            except ServiceError:
                self._json(
                    200,
                    {
                        "result": "ignored",
                        "state": service.store.get(job_id).state,
                    },
                )
                return
            self._metrics_inc(
                "gateway_worker_failures",
                "failed attempts reported by remote workers",
            )
            self._json(200, {"result": "failed", "state": state})

    return Handler
