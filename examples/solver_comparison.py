#!/usr/bin/env python
"""Compare Ising solvers on one core-COP instance and a MAX-CUT.

The paper argues for ballistic simulated bifurcation (bSB) over
sequential-update annealing.  This example races the solver zoo —
bSB, dSB, aSB, simulated annealing, and (when small enough) exact brute
force — on

* a column-based core COP built from the ``ln(x)`` workload, and
* a random weighted MAX-CUT instance,

and also demonstrates the paper's two bSB improvements: the dynamic
energy-variance stop and the Theorem-3 intervention.

Run:  python examples/solver_comparison.py
"""

import time

import numpy as np

from repro.analysis import format_table
from repro.core import CoreSolverConfig, CoreCOPSolver, sample_partitions
from repro.core.ising_formulation import build_core_cop_model
from repro.ising import (
    AdiabaticSBSolver,
    BallisticSBSolver,
    BruteForceSolver,
    DiscreteSBSolver,
    EnergyVarianceStop,
    FixedIterations,
    SimulatedAnnealingSolver,
    max_cut_model,
)
from repro.ising.problems import random_max_cut_weights
from repro.workloads import build_workload


def race(model, solvers, seed=0):
    rows = []
    for name, solver in solvers:
        start = time.perf_counter()
        result = solver.solve(model, np.random.default_rng(seed))
        elapsed = time.perf_counter() - start
        rows.append([name, result.objective, result.n_iterations, elapsed])
    return rows


def main() -> None:
    # ---- core COP from the ln(x) workload --------------------------------
    workload = build_workload("ln", n_inputs=9)
    rng = np.random.default_rng(1)
    partition = sample_partitions(9, workload.free_size, 1, rng)[0]
    model = build_core_cop_model(
        workload.table, workload.table, 8, partition, "separate"
    )
    print(
        f"core COP: ln(x) MSB, partition free={partition.free}, "
        f"{model.n_spins} spins"
    )

    solvers = [
        ("bSB (fixed 2000 iters)",
         BallisticSBSolver(stop=FixedIterations(2000), n_replicas=4)),
        ("bSB (dynamic stop)",
         BallisticSBSolver(
             stop=EnergyVarianceStop(20, 20, 1e-8, max_iterations=2000),
             n_replicas=4,
         )),
        ("dSB", DiscreteSBSolver(stop=FixedIterations(2000), n_replicas=4)),
        ("aSB", AdiabaticSBSolver(stop=FixedIterations(2000), n_replicas=4)),
        ("SA (200 sweeps)", SimulatedAnnealingSolver(n_sweeps=200)),
    ]
    rows = race(model, solvers)

    # the full paper configuration: dynamic stop + Theorem-3 intervention
    start = time.perf_counter()
    solution = CoreCOPSolver(
        CoreSolverConfig(max_iterations=2000, n_replicas=4)
    ).solve_model(model, np.random.default_rng(0))
    elapsed = time.perf_counter() - start
    rows.append(
        [
            "bSB + dynamic stop + Theorem-3 (paper)",
            solution.objective,
            solution.solve_result.n_iterations,
            elapsed,
        ]
    )
    print(format_table(
        ["solver", "objective (ER)", "iterations", "time (s)"], rows
    ))

    # ---- MAX-CUT cross-check ---------------------------------------------
    print("\nMAX-CUT, 18 vertices (objective = -cut weight):")
    weights = random_max_cut_weights(18, density=0.5, rng=3)
    cut = max_cut_model(weights)
    solvers = [
        ("brute force (exact)", BruteForceSolver()),
        ("bSB", BallisticSBSolver(stop=FixedIterations(3000), n_replicas=8)),
        ("dSB", DiscreteSBSolver(stop=FixedIterations(3000), n_replicas=8)),
        ("SA", SimulatedAnnealingSolver(n_sweeps=300, n_restarts=2)),
    ]
    rows = race(cut, solvers)
    print(format_table(["solver", "objective", "iterations", "time (s)"],
                       rows))


if __name__ == "__main__":
    main()
