#!/usr/bin/env python
"""Bring your own function: decompose a custom kernel with a custom
input distribution.

The library is not limited to the paper's ten benchmarks.  This example
builds a LUT for a saturating "gamma correction" kernel used in image
pipelines, weights the input distribution towards dark pixels (as real
image histograms are), decomposes it in both separate and joint modes,
and shows why joint mode wins when output bits have different
significance.

Run:  python examples/custom_function.py
"""

import numpy as np

from repro.analysis import format_table
from repro.boolean.metrics import error_rate, mean_error_distance
from repro.core import CoreSolverConfig, FrameworkConfig, IsingDecomposer
from repro.workloads import QuantizationScheme, quantize_real_function


def main() -> None:
    # gamma-correction kernel with soft clipping
    def gamma(x: np.ndarray) -> np.ndarray:
        return np.minimum(1.0, 1.08 * x**0.45)

    scheme = QuantizationScheme(n_inputs=9, n_outputs=8)

    # dark-heavy input histogram: exponentially more mass at low codes
    codes = np.arange(1 << scheme.n_inputs)
    histogram = np.exp(-3.0 * codes / codes.max())
    histogram /= histogram.sum()

    table = quantize_real_function(
        gamma, scheme, domain=(0.0, 1.0), output_range=(0.0, 1.0),
        probabilities=histogram,
    )
    print(
        f"custom kernel: gamma correction, n = {scheme.n_inputs}, "
        f"m = {scheme.n_outputs}, dark-weighted inputs"
    )

    rows = []
    for mode in ("separate", "joint"):
        config = FrameworkConfig(
            mode=mode,
            free_size=scheme.free_size,
            n_partitions=8,
            n_rounds=2,
            seed=7,
            solver=CoreSolverConfig(max_iterations=800, n_replicas=4),
        )
        result = IsingDecomposer(config).decompose(table)
        rows.append(
            [
                mode,
                mean_error_distance(table, result.approx),
                error_rate(table, result.approx),
                result.compression_ratio,
                result.runtime_seconds,
            ]
        )

    print(format_table(
        ["mode", "MED", "word error rate", "compression", "time (s)"],
        rows,
    ))
    print(
        "\nSeparate mode minimizes each bit's own error rate and ignores"
        "\nbit significance; joint mode minimizes the binary-weighted MED"
        "\n(Eq. 2), which is what the output actually means numerically."
    )


if __name__ == "__main__":
    main()
