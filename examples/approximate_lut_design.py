#!/usr/bin/env python
"""Design-space study: accuracy vs. LUT storage across methods.

The motivating use case of the paper: an error-tolerant accelerator
wants complex functions in small LUTs.  This example decomposes an
``exp(x)`` LUT with all four methods the paper compares — the DALTA
heuristic, DALTA-ILP (branch and bound under a time budget), BA
(simulated annealing), and the proposed Ising/bSB solver — and prints
the accuracy/storage/runtime trade-off each achieves, plus the Fig. 1
style storage story.

Run:  python examples/approximate_lut_design.py
"""

import time

from repro.analysis import format_table
from repro.analysis.experiments import (
    ba_method,
    dalta_ilp_method,
    dalta_method,
    proposed_method,
)
from repro.core import CoreSolverConfig, FrameworkConfig
from repro.lut import build_cascade_design, cascade_cost_report
from repro.workloads import build_workload


def main() -> None:
    workload = build_workload("exp", n_inputs=9)
    table = workload.table
    flat_bits = table.n_outputs * table.size
    print(
        f"workload: exp(x) on [0, 3], n = {table.n_inputs}, "
        f"m = {table.n_outputs}  ->  flat LUT = {flat_bits} bits"
    )

    methods = [
        dalta_method(),
        dalta_ilp_method(time_limit=2.0),
        ba_method(n_moves=400),
        proposed_method(CoreSolverConfig(max_iterations=800, n_replicas=4)),
    ]
    config = FrameworkConfig(
        mode="joint",
        free_size=workload.free_size,
        n_partitions=6,
        n_rounds=2,
        seed=0,
    )

    rows = []
    for method in methods:
        start = time.perf_counter()
        result = method.run(table, config)
        elapsed = time.perf_counter() - start
        design = build_cascade_design(result)
        report = cascade_cost_report(design)
        rows.append(
            [
                method.name,
                result.med,
                report.cascade_bits,
                report.compression_ratio,
                elapsed,
            ]
        )

    print()
    print(
        format_table(
            ["method", "MED", "cascade bits", "compression", "time (s)"],
            rows,
        )
    )
    print()
    print(
        "Every method lands on the same cascade storage (it is fixed by"
        " the partition sizes); they differ in how much accuracy that"
        " storage costs — the column the paper's Table 1 ranks."
    )


if __name__ == "__main__":
    main()
