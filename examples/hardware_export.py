#!/usr/bin/env python
"""From workload to hardware: distribution-aware decomposition, lossless
multi-level refinement, JSON persistence, and Verilog export.

This is the "productization" walk: an erf(x) LUT driven by a measured
(non-uniform) input histogram is decomposed, the resulting design is
losslessly refined into multi-level LUT trees where the sub-functions
are exactly decomposable, saved to JSON, re-loaded, and finally emitted
as a synthesizable Verilog module.

Run:  python examples/hardware_export.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core import CoreSolverConfig, FrameworkConfig, IsingDecomposer
from repro.lut import build_cascade_design, cascade_cost_report
from repro.lut.multilevel import refine_design
from repro.lut.verilog import cascade_to_verilog
from repro.serialization import load_design, save_design
from repro.workloads import build_workload
from repro.workloads.distributions import gaussian_codes, mixture, uniform


def main() -> None:
    # 1. Workload with a measured-looking distribution: mid-range-heavy
    #    sensor codes mixed with a uniform floor.
    workload = build_workload("erf", n_inputs=9)
    histogram = mixture(
        [gaussian_codes(9, center=0.4, sigma=0.1), uniform(9)],
        weights=[0.8, 0.2],
    )
    table = workload.table.with_probabilities(histogram)
    print(f"workload: erf(x), n = 9, distribution-weighted inputs")

    # 2. Decompose.
    config = FrameworkConfig(
        mode="joint",
        free_size=workload.free_size,
        n_partitions=8,
        n_rounds=2,
        seed=1,
        solver=CoreSolverConfig(max_iterations=1500, n_replicas=4),
    )
    result = IsingDecomposer(config).decompose(table)
    design = build_cascade_design(result)
    print(f"decomposed: MED {result.med:.3f}, {cascade_cost_report(design)}")

    # 3. Lossless multi-level refinement: split sub-LUTs that are exactly
    #    decomposable again.
    refined = refine_design(design, min_inputs=4)
    assert np.array_equal(
        refined.evaluate(np.arange(512)),
        design.evaluate(np.arange(512)),
    )
    print(
        f"multi-level refinement: {design.total_bits} -> "
        f"{refined.total_bits} bits (lossless)"
    )

    # 4. Persist and reload the design.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "erf_design.json"
        save_design(result, path)
        loaded = load_design(path)
        assert np.array_equal(
            loaded.evaluate(np.arange(512)), design.evaluate(np.arange(512))
        )
        print(f"persisted + reloaded: {path.name} "
              f"({path.stat().st_size} bytes)")

        # 5. Emit Verilog.
        verilog = cascade_to_verilog(loaded, module_name="erf_lut")
        rtl_path = Path(tmp) / "erf_lut.v"
        rtl_path.write_text(verilog)
        header = "\n".join(verilog.splitlines()[:6])
        print(f"\nVerilog written to {rtl_path.name}:\n{header}\n...")


if __name__ == "__main__":
    main()
