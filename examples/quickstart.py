#!/usr/bin/env python
"""Quickstart: approximately decompose one function and inspect the LUTs.

This walks the paper's whole story end to end on a laptop-sized
instance:

1. quantize ``cos(x)`` into a lookup table (computing-with-memory
   workload),
2. run the Ising/bSB approximate disjoint decomposition in joint mode,
3. check the accuracy (mean error distance, Eq. 2 of the paper), and
4. build the two-level LUT cascade and compare storage with the flat
   LUT (the Fig. 1 economics).

Run:  python examples/quickstart.py
"""

from repro import FrameworkConfig, IsingDecomposer, build_cascade_design
from repro.core import CoreSolverConfig
from repro.lut import cascade_cost_report
from repro.workloads import build_workload


def main() -> None:
    # 1. A 10-bit cosine LUT: 2^10 entries, 10 output bits.
    workload = build_workload("cos", n_inputs=10)
    table = workload.table
    print(
        f"workload: cos(x), {table.n_inputs}-bit input, "
        f"{table.n_outputs}-bit output "
        f"({table.n_outputs * table.size} LUT bits flat)"
    )

    # 2. Decompose. The solver knobs mirror the paper: dynamic stop
    #    (Sec. 3.3.1) and the Theorem-3 intervention (Sec. 3.3.2) are on
    #    by default.
    config = FrameworkConfig(
        mode="joint",
        free_size=workload.free_size,
        n_partitions=8,
        n_rounds=2,
        seed=0,
        solver=CoreSolverConfig(max_iterations=1000, n_replicas=4),
    )
    result = IsingDecomposer(config).decompose(table)

    # 3. Accuracy.
    print(f"mean error distance (MED): {result.med:.3f}")
    print(f"MED after each round:      {result.med_trace}")
    print(f"core COPs solved:          {result.n_cop_solves}")
    print(f"wall clock:                {result.runtime_seconds:.2f}s")

    # 4. Hardware view: every output is now a two-LUT cascade.
    design = build_cascade_design(result)
    report = cascade_cost_report(design)
    print(f"LUT storage: {report}")
    k = table.n_outputs - 1
    component = design.components[k]
    print(
        f"example: output bit {k} uses a "
        f"{component.partition.n_cols}-bit LUT for phi(bound set "
        f"{component.partition.bound}) feeding a "
        f"{2 * component.partition.n_rows}-bit LUT for F(phi, free set "
        f"{component.partition.free})"
    )

    # The cascade is a faithful implementation of the approximation.
    assert (design.to_truth_table().outputs == result.approx.outputs).all()
    print("cascade output verified against the approximate truth table")


if __name__ == "__main__":
    main()
