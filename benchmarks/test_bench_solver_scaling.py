"""Supporting benchmark: solver kernels and the structured-model payoff.

Not a paper artifact per se, but the engineering claim underneath the
reproduction: (a) the bipartite field oracle beats densifying the
coupling matrix as instances grow (this is what makes the n = 16 scale
tractable), and (b) the SB solver family is sound on a ground-truthed
MAX-CUT instance.  pytest-benchmark timings of the core kernels are the
artifact here.
"""

import numpy as np
import pytest

from repro.ising.model import DenseIsingModel
from repro.ising.problems import max_cut_model, random_max_cut_weights
from repro.ising.solvers import (
    BallisticSBSolver,
    BruteForceSolver,
    SimulatedAnnealingSolver,
)
from repro.ising.stop_criteria import FixedIterations
from repro.ising.structured import BipartiteDecompositionModel

# the paper's large case: r = 2^7 = 128, c = 2^9 = 512 -> 768 spins
PAPER_R, PAPER_C = 128, 512


@pytest.fixture(scope="module")
def paper_scale_model():
    rng = np.random.default_rng(0)
    return BipartiteDecompositionModel(rng.normal(size=(PAPER_R, PAPER_C)))


def test_structured_fields_kernel(benchmark, paper_scale_model):
    """Field evaluation at the paper's n = 16 spin count (768 spins)."""
    rng = np.random.default_rng(1)
    x = rng.normal(size=(4, paper_scale_model.n_spins))
    result = benchmark(paper_scale_model.fields, x)
    assert result.shape == x.shape


def test_dense_fields_kernel(benchmark, paper_scale_model):
    """The same evaluation through the dense (h, J) route, for contrast."""
    dense = paper_scale_model.to_dense()
    rng = np.random.default_rng(1)
    x = rng.normal(size=(4, dense.n_spins))
    result = benchmark(dense.fields, x)
    assert result.shape == x.shape


def test_bsb_full_solve_paper_scale(benchmark, paper_scale_model):
    """One complete bSB solve at the paper's large-instance size."""
    solver = BallisticSBSolver(stop=FixedIterations(200), n_replicas=2)

    def solve():
        return solver.solve(paper_scale_model, np.random.default_rng(0))

    result = benchmark.pedantic(solve, rounds=1, iterations=1)
    assert np.isfinite(result.energy)


def test_solver_quality_ground_truth(benchmark):
    """bSB and SA against the exact optimum on a 14-vertex MAX-CUT."""
    weights = random_max_cut_weights(14, 0.6, 7)
    model = max_cut_model(weights)
    exact = BruteForceSolver().solve(model)

    def run_heuristics():
        bsb = BallisticSBSolver(
            stop=FixedIterations(2000), n_replicas=8
        ).solve(model, np.random.default_rng(0))
        sa = SimulatedAnnealingSolver(n_sweeps=200, n_restarts=2).solve(
            model, np.random.default_rng(0)
        )
        return bsb, sa

    bsb, sa = benchmark.pedantic(run_heuristics, rounds=1, iterations=1)
    print(
        f"\n[solver] exact {exact.objective:.3f}, "
        f"bSB {bsb.objective:.3f}, SA {sa.objective:.3f}"
    )
    assert bsb.objective <= exact.objective * 0.95  # within 5% of optimum
    assert sa.objective <= exact.objective * 0.90
