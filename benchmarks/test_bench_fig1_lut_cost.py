"""Fig. 1 reproduction: LUT size reduction via disjoint decomposition.

The paper's motivating figure: a 5-input function needs a 32-bit LUT
flat, or 16 bits as a phi/F cascade (2x).  This benchmark verifies the
exact Fig. 1 numbers and then reproduces the economics on a real
workload (cos) at benchmark scale, timing the full decompose-and-build
pipeline.
"""

import numpy as np
import pytest

from repro.boolean.partition import InputPartition
from repro.core import CoreSolverConfig, FrameworkConfig, IsingDecomposer
from repro.lut import build_cascade_design, cascade_cost_report, flat_lut_bits
from repro.workloads import build_workload


def test_fig1_exact_numbers(benchmark):
    """The literal Fig. 1 arithmetic: 32 bits -> 16 bits."""

    def figure1():
        w = InputPartition(free=(3, 4), bound=(0, 1, 2), n_inputs=5)
        flat = flat_lut_bits(5, 1)
        cascade = w.n_cols + 2 * w.n_rows
        return flat, cascade

    flat, cascade = benchmark(figure1)
    assert flat == 32
    assert cascade == 16
    print(f"\n[fig1] flat LUT {flat} bits -> cascade {cascade} bits "
          f"({flat / cascade:.0f}x, matching the paper's example)")


def test_fig1_on_real_workload(benchmark, bench_scale):
    """Decompose cos(x) and report the cascade economics."""
    workload = build_workload("cos", n_inputs=bench_scale["n_small"])
    config = FrameworkConfig(
        mode="joint",
        free_size=workload.free_size,
        n_partitions=bench_scale["n_partitions"],
        n_rounds=bench_scale["n_rounds"],
        seed=0,
        solver=CoreSolverConfig(max_iterations=1000, n_replicas=4),
    )

    def pipeline():
        result = IsingDecomposer(config).decompose(workload.table)
        return result, build_cascade_design(result)

    result, design = benchmark.pedantic(pipeline, rounds=1, iterations=1)
    report = cascade_cost_report(design)
    print(f"\n[fig1/cos] {report}")
    print(f"[fig1/cos] MED of the compressed design: {result.med:.3f}")

    # the paper's storage story: the cascade must be substantially smaller
    assert report.compression_ratio >= 2.0
    # and it must be a faithful implementation
    assert np.array_equal(
        design.to_truth_table().outputs, result.approx.outputs
    )
