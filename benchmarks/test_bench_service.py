"""Service-layer benchmark: queue throughput and artifact-cache value.

Drives the durable service end to end with a realistic traffic mix — a
batch of jobs where popular problems repeat (duplicates dominate real
LUT-serving traffic: the same kernel/width/config is requested over and
over) — and measures:

* jobs/second through the submit → schedule → solve → persist pipeline,
* the artifact cache hit rate on that mix,
* service overhead vs calling ``IsingDecomposer`` directly (the queue,
  store, and hashing should cost a small fraction of solve time),
* per-job latency split between cache hits and real solves.

Writes ``BENCH_service.json`` at the repo root.  Scale knobs:
``REPRO_BENCH_SVC_JOBS`` (default 12 jobs), ``REPRO_BENCH_SVC_WORKERS``
(default 4), ``REPRO_BENCH_P`` / ``REPRO_BENCH_R`` as everywhere else.
"""

import os
import time

import pytest

from benchmarks.conftest import write_bench_json
from repro.core import CoreSolverConfig, FrameworkConfig, IsingDecomposer
from repro.service import DecompositionService, JobSpec, SchedulerPolicy
from repro.workloads import build_workload

#: unique problems in the mix; each repeats until the batch is full
UNIQUE_WORKLOADS = ("cos", "tan", "erf", "exp")
N_INPUTS = 6


def _config(bench_scale):
    return FrameworkConfig(
        mode="joint",
        free_size=2,
        n_partitions=bench_scale["n_partitions"],
        n_rounds=bench_scale["n_rounds"],
        seed=7,
        solver=CoreSolverConfig(max_iterations=400, n_replicas=2),
    )


def test_service_throughput(benchmark, bench_scale, tmp_path):
    n_jobs = int(os.environ.get("REPRO_BENCH_SVC_JOBS", 12))
    n_workers = int(os.environ.get("REPRO_BENCH_SVC_WORKERS", 4))
    config = _config(bench_scale)
    specs = [
        JobSpec(
            workload=UNIQUE_WORKLOADS[i % len(UNIQUE_WORKLOADS)],
            n_inputs=N_INPUTS,
            config=config,
        )
        for i in range(n_jobs)
    ]

    # baseline: the same *unique* problems solved directly, no service
    direct_start = time.perf_counter()
    for name in UNIQUE_WORKLOADS:
        table = build_workload(name, n_inputs=N_INPUTS).table
        IsingDecomposer(config).decompose(table)
    direct_seconds = time.perf_counter() - direct_start

    def run_service():
        service = DecompositionService(
            tmp_path / f"svc-{time.monotonic_ns()}",
            n_workers=n_workers,
            policy=SchedulerPolicy(
                retry_backoff_seconds=0.01, poll_interval_seconds=0.005
            ),
        )
        submit_start = time.perf_counter()
        jobs = service.submit_batch(specs)
        submit_seconds = time.perf_counter() - submit_start
        serve_start = time.perf_counter()
        service.run_until_drained(timeout=600)
        serve_seconds = time.perf_counter() - serve_start
        return service, jobs, submit_seconds, serve_seconds

    service, jobs, submit_seconds, serve_seconds = benchmark.pedantic(
        run_service, rounds=1, iterations=1
    )

    summary = service.status()
    records = [service.job(job.id) for job in jobs]
    assert summary["jobs"]["failed"] == 0
    assert summary["jobs"]["done"] == n_jobs

    hits = [r for r in records if r.cache_hit]
    solves = [r for r in records if not r.cache_hit]
    hit_latency = (
        sum(r.runtime_seconds for r in hits) / len(hits) if hits else None
    )
    solve_latency = (
        sum(r.runtime_seconds for r in solves) / len(solves)
        if solves
        else None
    )
    total_seconds = submit_seconds + serve_seconds
    payload = {
        "mix": {
            "n_jobs": n_jobs,
            "n_unique_problems": len(UNIQUE_WORKLOADS),
            "n_workers": n_workers,
            "n_inputs": N_INPUTS,
            "n_partitions": config.n_partitions,
            "n_rounds": config.n_rounds,
        },
        "throughput": {
            "jobs_per_second": n_jobs / total_seconds,
            "submit_seconds": submit_seconds,
            "serve_seconds": serve_seconds,
            "direct_unique_solve_seconds": direct_seconds,
            "service_overhead_ratio": total_seconds / direct_seconds,
        },
        "cache": {
            "hit_rate": summary["cache"]["hit_rate"],
            "hits": summary["cache"]["hits"],
            "misses": summary["cache"]["misses"],
            "mean_hit_latency_seconds": hit_latency,
            "mean_solve_latency_seconds": solve_latency,
        },
        "retries": summary["retries"],
    }
    path = write_bench_json("BENCH_service.json", payload)
    print(
        f"\n[service] {n_jobs} jobs ({len(UNIQUE_WORKLOADS)} unique) on "
        f"{n_workers} workers: {payload['throughput']['jobs_per_second']:.2f}"
        f" jobs/s, cache hit rate {payload['cache']['hit_rate']:.2f}, "
        f"overhead {payload['throughput']['service_overhead_ratio']:.2f}x "
        f"direct"
    )
    print(f"[service] wrote {path}")

    # the cache must absorb every duplicate: exactly one solve per
    # unique problem
    assert summary["cache"]["misses"] == len(UNIQUE_WORKLOADS)
    assert summary["cache"]["hit_rate"] == pytest.approx(
        (n_jobs - len(UNIQUE_WORKLOADS)) / n_jobs, abs=1e-3
    )
    # durable queueing + hashing + persistence must not dominate solve
    # time on a duplicate-heavy mix: the whole batch should cost less
    # than twice the direct unique solves
    assert payload["throughput"]["service_overhead_ratio"] < 2.0
