"""Load benchmark: latency-vs-offered-RPS curves, knee, SLO, soak.

Drives the real HTTP gateway with the open-loop harness
(:mod:`repro.loadgen`) and writes ``BENCH_load.json`` at the repo
root:

* per-mix latency-vs-offered-RPS curves (service, open-loop, and
  server-side completion percentiles) with the identified knee;
* an SLO verdict block (availability + p95 + burn rate) per mix;
* a chaos soak plateau whose artifacts must be byte-identical to a
  fresh, unloaded local solve of the same specs.

Assertions gate on *structure and correctness* (curves present, every
accepted job completes, soak byte-identical), never on throughput —
absolute numbers vary with the host.  Scale knobs:

=================================  ==================================  =========
variable                           meaning                             default
=================================  ==================================  =========
``REPRO_BENCH_LOAD_RATES``         offered-RPS sweep, comma list        ``4,8``
``REPRO_BENCH_LOAD_DURATION``      seconds per stage                    ``1.5``
``REPRO_BENCH_LOAD_MIXES``         job mixes, comma list                ``dedup-heavy,mixed-sizes``
``REPRO_BENCH_LOAD_SOAK_SECONDS``  soak plateau length (0 disables)     ``1.5``
``REPRO_BENCH_LOAD_WORKERS``       service worker pool                  ``4``
=================================  ==================================  =========
"""

import os

from benchmarks.conftest import write_bench_json
from repro.gateway import (
    DecompositionGateway,
    GatewayClient,
    GatewayConfig,
    RetryPolicy,
)
from repro.loadgen import (
    MixSubmitter,
    OpenLoopGenerator,
    SLOSpec,
    build_report,
    collect_completion_latencies,
    evaluate_slo,
    find_knee,
    get_mix,
    run_soak,
    summarize_stage,
)
from repro.loadgen.mixes import default_load_config
from repro.service import DecompositionService, SchedulerPolicy

#: generous bench SLO — gates harness wiring, not host speed
BENCH_SLO = SLOSpec(
    availability=0.95, latency_p95_ms=30_000.0, max_burn_rate=10.0
)


def _env_list(name, default):
    return [
        part.strip()
        for part in os.environ.get(name, default).split(",")
        if part.strip()
    ]


def test_load_curves_slo_and_soak(tmp_path):
    rates = sorted(
        float(r) for r in _env_list("REPRO_BENCH_LOAD_RATES", "4,8")
    )
    duration = float(os.environ.get("REPRO_BENCH_LOAD_DURATION", 1.5))
    mix_list = _env_list(
        "REPRO_BENCH_LOAD_MIXES", "dedup-heavy,mixed-sizes"
    )
    soak_seconds = float(
        os.environ.get("REPRO_BENCH_LOAD_SOAK_SECONDS", 1.5)
    )
    n_workers = int(os.environ.get("REPRO_BENCH_LOAD_WORKERS", 4))
    config = default_load_config()

    service = DecompositionService(
        tmp_path / "svc",
        n_workers=n_workers,
        policy=SchedulerPolicy(
            retry_backoff_seconds=0.01, poll_interval_seconds=0.005
        ),
    )
    pool = service.serve_forever()
    mixes = {}
    slo_mixes = {}
    soak_block = None
    try:
        with DecompositionGateway(service, GatewayConfig(port=0)) as gw:
            for name in mix_list:
                mix = get_mix(name)
                client = GatewayClient(
                    gw.url, retry=RetryPolicy(max_retries=0)
                )
                submitter = MixSubmitter(client, mix, config)
                generator = OpenLoopGenerator(
                    submitter,
                    mix_name=mix.name,
                    expect_rejections=mix.expect_rejections,
                    concurrency=8,
                )
                stages, rows = [], []
                for rps in rates:
                    stage = generator.run(
                        rps=rps, duration_seconds=duration
                    )
                    latencies = collect_completion_latencies(
                        client, stage.job_ids(), timeout_seconds=120.0
                    )
                    # every accepted job must reach done — correctness
                    # gate; speed is only *recorded*
                    assert len(latencies) == len(stage.job_ids())
                    stages.append(stage)
                    rows.append(
                        summarize_stage(
                            stage, completion_latencies=latencies
                        )
                    )
                mixes[name] = {
                    "summary": mix.summary,
                    "stages": rows,
                    "knee": find_knee(rows),
                }
                slo_mixes[name] = evaluate_slo(BENCH_SLO, stages)

            if soak_seconds > 0:
                soak_client = GatewayClient(gw.url)
                summary, soak_stage = run_soak(
                    soak_client,
                    get_mix("cache-cold"),
                    config,
                    rps=min(rates),
                    duration_seconds=soak_seconds,
                    baseline_dir=tmp_path / "baseline",
                    wait_timeout_seconds=300.0,
                )
                summary["slo"] = evaluate_slo(BENCH_SLO, [soak_stage])
                soak_block = summary
    finally:
        pool.stop()

    slo_block = {
        "objective": BENCH_SLO.to_dict(),
        "mixes": slo_mixes,
        "ok": all(v["ok"] for v in slo_mixes.values()),
    }
    report = build_report(
        mixes,
        slo_block=slo_block,
        soak_block=soak_block,
        context={
            "rates": rates,
            "stage_duration_seconds": duration,
            "n_workers": n_workers,
            "harness": "open-loop (no coordinated omission)",
        },
    )
    path = write_bench_json("BENCH_load.json", report)
    print(f"\nwrote {path}")

    # -- structural gates ---------------------------------------------
    assert len(mixes) >= 2
    for name, block in mixes.items():
        assert len(block["stages"]) == len(rates)
        knee = block["knee"]
        assert isinstance(knee["saturated"], bool)
        assert knee["offered_rps"] is not None
        for row in block["stages"]:
            assert row["requests"] >= 1
            assert row["errors"] == 0, f"{name}: unexpected errors"
    for verdict in slo_mixes.values():
        assert {"availability", "latency", "burn_rate", "ok"} <= set(
            verdict
        )
    if soak_block is not None:
        assert soak_block["byte_identical"] is True
        assert soak_block["mismatches"] == []
