"""Gateway benchmark: HTTP request latency and submit→done throughput.

Measures the HTTP layer the way an operator would size it:

* request latency — p50/p95 wall time of ``GET /v1/healthz`` (the
  cheapest endpoint: pure gateway + one SQLite count) and of an
  idempotent resubmission of finished work (``POST /v1/jobs`` that
  dedups — the hot path of duplicate-heavy LUT-serving traffic);
* throughput at capacity — a duplicate-heavy batch submitted over HTTP
  while the worker pool serves, measured submit-to-drained.

Writes ``BENCH_gateway.json`` at the repo root.  Scale knobs:
``REPRO_BENCH_GW_REQUESTS`` (latency sample count, default 150),
``REPRO_BENCH_GW_JOBS`` (throughput batch, default 8), plus the global
``REPRO_BENCH_P`` / ``REPRO_BENCH_R``.
"""

import os
import time

from benchmarks.conftest import write_bench_json
from repro.core import CoreSolverConfig, FrameworkConfig
from repro.gateway import DecompositionGateway, GatewayClient, GatewayConfig
from repro.service import DecompositionService, JobSpec, SchedulerPolicy

UNIQUE_WORKLOADS = ("cos", "tan", "erf", "exp")
N_INPUTS = 6


def _config(bench_scale):
    return FrameworkConfig(
        mode="joint",
        free_size=2,
        n_partitions=bench_scale["n_partitions"],
        n_rounds=bench_scale["n_rounds"],
        seed=7,
        solver=CoreSolverConfig(max_iterations=400, n_replicas=2),
    )


def _percentile(samples, q):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def _latency(fn, n):
    samples = []
    for _ in range(n):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return {
        "n_requests": n,
        "p50_ms": _percentile(samples, 0.50) * 1000.0,
        "p95_ms": _percentile(samples, 0.95) * 1000.0,
        "mean_ms": sum(samples) / n * 1000.0,
    }


def test_gateway_latency_and_throughput(benchmark, bench_scale, tmp_path):
    n_requests = int(os.environ.get("REPRO_BENCH_GW_REQUESTS", 150))
    n_jobs = int(os.environ.get("REPRO_BENCH_GW_JOBS", 8))
    config = _config(bench_scale)
    service = DecompositionService(
        tmp_path / "svc",
        n_workers=int(os.environ.get("REPRO_BENCH_SVC_WORKERS", 4)),
        policy=SchedulerPolicy(
            retry_backoff_seconds=0.01, poll_interval_seconds=0.005
        ),
    )
    specs = [
        JobSpec(
            workload=UNIQUE_WORKLOADS[i % len(UNIQUE_WORKLOADS)],
            n_inputs=N_INPUTS,
            config=config,
        )
        for i in range(n_jobs)
    ]

    with DecompositionGateway(service, GatewayConfig(port=0)) as gateway:
        client = GatewayClient(gateway.url)

        # throughput at capacity: workers serving while HTTP submits land
        def run_batch():
            pool = service.serve_forever()
            start = time.perf_counter()
            submitted = [client.submit(spec) for spec in specs]
            for job, _ in submitted:
                client.wait(job.id, poll_seconds=0.02,
                            timeout_seconds=600)
            elapsed = time.perf_counter() - start
            pool.stop()
            return submitted, elapsed

        (submitted, batch_seconds) = benchmark.pedantic(
            run_batch, rounds=1, iterations=1
        )
        jobs = [job for job, _ in submitted]
        n_deduplicated = sum(1 for _, dedup in submitted if dedup)
        summary = client.status()
        assert summary["jobs"]["failed"] == 0
        # idempotent submission collapses duplicates at POST time, so
        # distinct job records = unique problems
        assert summary["jobs"]["done"] == n_jobs - n_deduplicated
        assert n_deduplicated == n_jobs - len(UNIQUE_WORKLOADS)

        healthz = _latency(client.healthz, n_requests)
        # idempotent re-POST of finished work: full validation + content
        # hash + dedup lookup, no solving
        dedup_submit = _latency(
            lambda: client.submit(specs[0]), max(1, n_requests // 3)
        )

    payload = {
        "mix": {
            "n_jobs": n_jobs,
            "n_unique_problems": len(UNIQUE_WORKLOADS),
            "n_inputs": N_INPUTS,
            "n_partitions": config.n_partitions,
            "n_rounds": config.n_rounds,
        },
        "latency": {
            "healthz": healthz,
            "dedup_submit": dedup_submit,
        },
        "throughput": {
            "jobs_per_second": n_jobs / batch_seconds,
            "batch_seconds": batch_seconds,
            "n_deduplicated_submissions": n_deduplicated,
            "dedup_rate": n_deduplicated / n_jobs,
        },
    }
    path = write_bench_json("BENCH_gateway.json", payload)
    print(
        f"\n[gateway] healthz p50 {healthz['p50_ms']:.2f} ms / "
        f"p95 {healthz['p95_ms']:.2f} ms; dedup submit p50 "
        f"{dedup_submit['p50_ms']:.2f} ms; throughput "
        f"{payload['throughput']['jobs_per_second']:.2f} jobs/s "
        f"over HTTP"
    )
    print(f"[gateway] wrote {path}")

    # sanity floor, not a timing gate: the HTTP hop must stay cheap
    # relative to any real solve (hundreds of ms)
    assert healthz["p95_ms"] < 500.0
    assert dedup_submit["p50_ms"] < 1000.0
    assert len(jobs) == n_jobs
