"""Observability overhead: the disabled path must be near-free.

The bSB solve loop carries probe hooks (``repro.obs.probe``) on its
hottest path.  When no ``repro.obs.observe`` context is active the probe
resolves to ``None`` and every hook collapses to one ``is None`` check
per iteration — this benchmark pins that claim with a number.

Three variants of the same seeded solve (r=128, c=512 bipartite core
COP, 16 replicas) are timed min-of-repeats:

* ``baseline_frozen`` — a frozen replica of the pre-observability solve
  loop with no probe checks at all (the "what we would have shipped
  without obs" floor),
* ``obs_disabled`` — the shipped :class:`BallisticSBSolver.solve` with
  the default null tracer / no probe factory (the production default),
* ``obs_enabled`` — the shipped solver under an active
  :class:`~repro.obs.probe.RecordingSolverProbe` (informational only).

Writes ``BENCH_obs.json`` at the repo root and **gates** the disabled
path at < 3% overhead vs the frozen baseline.  All three variants must
decode bit-identical best spins from the same seed (RNG neutrality).
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import write_bench_json
from repro.ising.schedules import LinearPump
from repro.ising.solvers.bsb import BallisticSBSolver, _sign_readout
from repro.ising.stop_criteria import FixedIterations
from repro.ising.structured import BipartiteDecompositionModel
from repro.obs.probe import RecordingSolverProbe

N_ROWS = 128
N_COLS = 512
N_REPLICAS = 16
N_ITERATIONS = 300
SAMPLE_EVERY = 50
SEED = 2024
TIMING_REPEATS = 5
MAX_DISABLED_OVERHEAD = 0.03


def _frozen_pre_obs_solve(model, rng):
    """The solve loop exactly as it ran before the obs layer existed.

    Same kernel, same pump, same sampling cadence and same RNG draws as
    ``BallisticSBSolver.solve`` — but with no probe hooks, no per-step
    timing conditionals and no ``trace_every`` gate.
    """
    n = model.n_spins
    c0 = 0.5 / (model.coupling_rms() * np.sqrt(n))
    pump = LinearPump(1.0, N_ITERATIONS)
    amplitude = 0.1
    x = rng.uniform(-amplitude, amplitude, (N_REPLICAS, n))
    y = rng.uniform(-amplitude, amplitude, (N_REPLICAS, n))
    kernel = model.make_kernel(None)
    x, y = kernel.prepare_state(x, y)

    best_energy = np.inf
    best_spins = _sign_readout(x[0])
    trace = []
    for iteration in range(1, N_ITERATIONS + 1):
        kernel.step(x, y, pump(iteration), 0.25, 1.0, c0)
        if iteration % SAMPLE_EVERY == 0:
            spins = _sign_readout(x)
            energies = np.atleast_1d(model.energy(spins))
            idx = int(np.argmin(energies))
            current = float(energies[idx])
            if current < best_energy:
                best_energy = current
                best_spins = spins[idx].copy()
            trace.append(current)
    spins = _sign_readout(x)
    energies = np.atleast_1d(model.energy(spins))
    idx = int(np.argmin(energies))
    if float(energies[idx]) < best_energy:
        best_energy = float(energies[idx])
        best_spins = spins[idx].copy()
    return best_spins, best_energy, trace


def _make_solver(probe=None):
    return BallisticSBSolver(
        stop=FixedIterations(N_ITERATIONS),
        n_replicas=N_REPLICAS,
        sample_every_default=SAMPLE_EVERY,
        probe=probe,
    )


@pytest.fixture(scope="module")
def model():
    rng = np.random.default_rng(SEED)
    weights = rng.normal(size=(N_ROWS, N_COLS)) / np.sqrt(N_COLS)
    return BipartiteDecompositionModel(weights)


def _time_variant(run):
    best_seconds = np.inf
    result = None
    for _ in range(TIMING_REPEATS):
        t0 = time.perf_counter()
        result = run()
        best_seconds = min(best_seconds, time.perf_counter() - t0)
    return N_ITERATIONS / best_seconds, result


def test_obs_disabled_overhead(benchmark, model):
    def sweep():
        results = {}
        results["baseline_frozen"] = _time_variant(
            lambda: _frozen_pre_obs_solve(
                model, np.random.default_rng(SEED)
            )
        )
        results["obs_disabled"] = _time_variant(
            lambda: _make_solver().solve(
                model, rng=np.random.default_rng(SEED)
            )
        )
        results["obs_enabled"] = _time_variant(
            lambda: _make_solver(probe=RecordingSolverProbe()).solve(
                model, rng=np.random.default_rng(SEED)
            )
        )
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    baseline_rate, (frozen_spins, frozen_energy, frozen_trace) = results[
        "baseline_frozen"
    ]
    disabled_rate, disabled = results["obs_disabled"]
    enabled_rate, enabled = results["obs_enabled"]
    disabled_overhead = baseline_rate / disabled_rate - 1.0
    enabled_overhead = baseline_rate / enabled_rate - 1.0

    payload = {
        "instance": {
            "n_rows": N_ROWS,
            "n_cols": N_COLS,
            "n_replicas": N_REPLICAS,
            "n_iterations": N_ITERATIONS,
            "sample_every": SAMPLE_EVERY,
        },
        "variants": {
            "baseline_frozen": {"iters_per_second": baseline_rate},
            "obs_disabled": {
                "iters_per_second": disabled_rate,
                "overhead_vs_baseline": disabled_overhead,
            },
            "obs_enabled": {
                "iters_per_second": enabled_rate,
                "overhead_vs_baseline": enabled_overhead,
            },
        },
        "max_disabled_overhead": MAX_DISABLED_OVERHEAD,
    }
    print(f"\n[obs] r={N_ROWS} c={N_COLS} replicas={N_REPLICAS}")
    for name, entry in payload["variants"].items():
        overhead = entry.get("overhead_vs_baseline")
        suffix = (
            "" if overhead is None else f" ({overhead * 100:+5.2f}%)"
        )
        print(
            f"[obs] {name:>16}: {entry['iters_per_second']:8.1f} it/s"
            f"{suffix}"
        )

    path = write_bench_json("BENCH_obs.json", payload)
    print(f"[obs] wrote {path}")

    # RNG neutrality: all three variants replay the identical search
    assert np.array_equal(disabled.spins, frozen_spins)
    assert disabled.energy == frozen_energy
    assert disabled.energy_trace == frozen_trace
    assert np.array_equal(enabled.spins, disabled.spins)
    assert enabled.energy == disabled.energy
    assert enabled.energy_trace == disabled.energy_trace

    # the gate: hooks-present-but-disabled must be within 3% of the
    # hook-free loop
    assert disabled_overhead < MAX_DISABLED_OVERHEAD
