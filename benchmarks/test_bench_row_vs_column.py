"""Ablation (Sec. 3.1's motivation): row-based third-order Ising vs the
paper's column-based second-order Ising.

The paper's central design decision is to abandon the row-based view —
whose Ising mapping needs an irreducible three-spin term — in favour of
the column-based view that fits a second-order model.  This benchmark
makes that trade measurable: the *same* core-COP instances (same
weights, same ``2r + c`` spin count) are solved through

* the column route: bipartite quadratic model + standard bSB (+ the
  paper's Theorem-3 intervention), and
* the row route: cubic polynomial model + higher-order bSB
  (Kanao & Goto), which a physical second-order Ising machine could
  not host at all.

Expected shape: the column route matches or beats the row route on
solution quality at comparable spin counts — supporting the paper's
choice — while the row route demonstrates that the claim "third order
is required" is about *hardware realizability*, not solvability in
software.
"""

import numpy as np
import pytest

from repro.analysis.tables import format_table
from repro.core.config import CoreSolverConfig
from repro.core.ising_formulation import (
    build_core_cop_model,
    linear_error_terms,
)
from repro.core.row_ising_formulation import build_row_cop_polynomial_model
from repro.core.partitions import sample_partitions
from repro.core.solver import CoreCOPSolver
from repro.ising.solvers import BallisticSBSolver
from repro.ising.stop_criteria import FixedIterations
from repro.workloads import small_scale_suite


@pytest.fixture(scope="module")
def instances(bench_scale):
    n = bench_scale["n_small"]
    suite = small_scale_suite(n)
    rng = np.random.default_rng(0)
    pool = []
    for index, name in enumerate(sorted(suite)):
        workload = suite[name]
        partition = sample_partitions(n, workload.free_size, 1, rng)[0]
        component = workload.table.n_outputs - 1 - (index % 2)
        weights, constant = linear_error_terms(
            workload.table, workload.table, component, partition, "joint"
        )
        column_model = build_core_cop_model(
            workload.table, workload.table, component, partition, "joint"
        )
        row_model = build_row_cop_polynomial_model(weights, constant)
        pool.append((f"{name}[k={component}]", column_model, row_model))
    return pool


def _solve_all(instances):
    column_solver = CoreCOPSolver(
        CoreSolverConfig.paper_small_scale().with_updates(
            max_iterations=2000, n_replicas=4
        )
    )
    rows = []
    for label, column_model, row_model in instances:
        column = column_solver.solve_model(
            column_model, np.random.default_rng(0)
        )
        ho_bsb = BallisticSBSolver(
            stop=FixedIterations(2000), n_replicas=4
        ).solve(row_model, np.random.default_rng(0))
        rows.append(
            {
                "instance": label,
                "column_obj": column.objective,
                "row_obj": ho_bsb.objective,
                "column_time": column.runtime_seconds,
                "row_time": ho_bsb.runtime_seconds,
            }
        )
    return rows


@pytest.fixture(scope="module")
def results(instances):
    return _solve_all(instances)


def test_row_vs_column_table(benchmark, results):
    rows = benchmark.pedantic(lambda: results, rounds=1, iterations=1)
    body = [
        [
            r["instance"],
            r["column_obj"],
            r["row_obj"],
            r["column_time"],
            r["row_time"],
        ]
        for r in rows
    ]
    print("\n[row-vs-column] same instances, same 2r+c spins")
    print(
        format_table(
            ["instance", "column (2nd-order) obj",
             "row (3rd-order) obj", "col time (s)", "row time (s)"],
            body,
        )
    )
    assert len(rows) == 6


def test_row_vs_column_shape(benchmark, results):
    rows = benchmark.pedantic(lambda: results, rounds=1, iterations=1)
    column_total = sum(r["column_obj"] for r in rows)
    row_total = sum(r["row_obj"] for r in rows)
    print(
        f"\n[row-vs-column] total objective: column {column_total:.3f} "
        f"vs row {row_total:.3f}"
    )
    # the paper's design choice: the second-order column route should
    # match or beat the third-order row route in aggregate
    assert column_total <= row_total * 1.05 + 1e-9
    # both produce finite, valid objectives everywhere
    assert all(np.isfinite(r["row_obj"]) for r in rows)
