"""Partition-and-stitch benchmark: quality and wall-clock vs ``k``.

Two questions an operator sizing a partitioned solve cares about:

* **cost of splitting** — on an instance a single worker can still
  solve (``N = 48``), how much objective quality does ``k = 2`` / ``4``
  give up against the monolithic solve, and what does the
  boundary-coordination overhead cost in wall-clock?
* **reach** — on an instance *beyond* a worker's single-solve spin
  limit (``N = 144`` against ``REPRO_ISING_MAX_SPINS = 96``), does
  ``k = 4`` complete at all, and does its stitched result pass the
  same verification verdict a monolithic solve of the full model
  produces (byte-identical canonical verdicts)?

Also pins the degenerate acceptance case: ``k = 1`` writes the *same
artifact under the same key* as a plain submission.

Writes ``BENCH_partition.json`` at the repo root.  Scale knobs:
``REPRO_BENCH_PARTITION_N`` (input bits of the in-reach instance,
default 8) and the global solver knobs via the instance defaults.
"""

import os
import time

import pytest

from benchmarks.conftest import write_bench_json
from repro.core import CoreSolverConfig, FrameworkConfig
from repro.partition import (
    LocalDispatcher,
    PartitionCoordinator,
    canonical_verdict,
    verify_result,
)
from repro.partition.instances import separate_mode_instance
from repro.ising.wire import solve_result_to_dict
from repro.service import DecompositionService, JobSpec, SchedulerPolicy
from repro.service.spec import spec_artifact_key

K_VALUES = (1, 2, 4)

FAST_POLICY = SchedulerPolicy(
    retry_backoff_seconds=0.01, poll_interval_seconds=0.005
)

CONFIG = FrameworkConfig(
    seed=3,
    solver=CoreSolverConfig(max_iterations=400, n_replicas=2),
)


def _dispatcher(tmp_path, label):
    return LocalDispatcher(
        DecompositionService(
            tmp_path / label, n_workers=2, policy=FAST_POLICY
        )
    )


def _solve(dispatcher, problem, k):
    start = time.perf_counter()
    stitched = PartitionCoordinator(
        dispatcher, CONFIG, k=k, seed=5
    ).solve(problem)
    elapsed = time.perf_counter() - start
    verdict = verify_result(
        problem, solve_result_to_dict(stitched.result)
    )
    return stitched, verdict, elapsed


def test_partition_quality_and_reach(tmp_path):
    n_inputs = int(os.environ.get("REPRO_BENCH_PARTITION_N", 8))
    payload = {
        "config": {
            "n_inputs": n_inputs,
            "free_size": 3,
            "solver": "bsb",
            "max_iterations": CONFIG.solver.max_iterations,
            "n_replicas": CONFIG.solver.n_replicas,
        },
        "k_sweep": {},
    }

    # -- quality vs k on an in-reach instance (N = 48 at defaults) ----
    problem = separate_mode_instance(
        workload="cos", n_inputs=n_inputs, free_size=3
    )
    n_spins = problem["model"]["n_spins"]
    payload["config"]["n_spins"] = n_spins
    monolithic_objective = None
    for k in K_VALUES:
        dispatcher = _dispatcher(tmp_path, f"k{k}")
        stitched, verdict, elapsed = _solve(dispatcher, problem, k)
        assert verdict["verified"], f"k={k} result failed verification"
        if k == 1:
            monolithic_objective = stitched.result.objective
            # degenerate case: identical artifact, identical key
            plain_key = spec_artifact_key(
                JobSpec(config=CONFIG, ising=problem)
            )
            assert stitched.artifact_key == plain_key
            assert plain_key in dispatcher.service.artifacts
        payload["k_sweep"][str(k)] = {
            "objective": float(stitched.result.objective),
            "objective_gap_vs_monolithic": float(
                stitched.result.objective - monolithic_objective
            ),
            "rounds": stitched.rounds,
            "stop_reason": stitched.result.stop_reason,
            "boundary_energies": [
                float(e) for e in stitched.boundary_energies
            ],
            "reused_solves": stitched.reused_solves,
            "n_child_solves": len(stitched.child_artifact_keys),
            "wall_clock_seconds": round(elapsed, 4),
            "verified": verdict["verified"],
        }

    # -- reach: an instance over the worker's single-solve limit ------
    wide = separate_mode_instance(
        workload="cos", n_inputs=n_inputs + 2, free_size=3
    )
    wide_spins = wide["model"]["n_spins"]
    limit = 96
    assert wide_spins > limit, (
        "beyond-limit instance must exceed the simulated worker cap"
    )
    # monolithic reference solve (no worker limit applies locally at
    # k = 1 only because this service runs without the env cap)
    mono_stitched, mono_verdict, mono_elapsed = _solve(
        _dispatcher(tmp_path, "wide-mono"), wide, 1
    )
    # the partitioned solve respects the cap: every child fits
    os.environ["REPRO_ISING_MAX_SPINS"] = str(limit)
    try:
        stitched, verdict, elapsed = _solve(
            _dispatcher(tmp_path, "wide-k4"), wide, 4
        )
    finally:
        del os.environ["REPRO_ISING_MAX_SPINS"]
    assert verdict["verified"]
    assert mono_verdict["verified"]
    # the stitched verdict is byte-identical to the monolithic one —
    # same canonical verification document for the same model
    assert canonical_verdict(verdict) == canonical_verdict(mono_verdict)
    assert max(
        len(block) for block in stitched.plan.blocks
    ) <= limit
    payload["beyond_limit"] = {
        "n_spins": wide_spins,
        "worker_spin_limit": limit,
        "k": 4,
        "block_sizes": [len(b) for b in stitched.plan.blocks],
        "rounds": stitched.rounds,
        "stop_reason": stitched.result.stop_reason,
        "objective": float(stitched.result.objective),
        "monolithic_objective": float(mono_stitched.result.objective),
        "wall_clock_seconds": round(elapsed, 4),
        "monolithic_wall_clock_seconds": round(mono_elapsed, 4),
        "verdicts_byte_identical": True,
    }

    path = write_bench_json("BENCH_partition.json", payload)
    print(f"\nwrote {path}")
    for k in K_VALUES:
        row = payload["k_sweep"][str(k)]
        print(
            f"  k={k}: objective={row['objective']:+.4f} "
            f"(gap {row['objective_gap_vs_monolithic']:+.4f}), "
            f"rounds={row['rounds']}, "
            f"{row['wall_clock_seconds']:.2f}s"
        )
    wide_row = payload["beyond_limit"]
    print(
        f"  beyond-limit N={wide_row['n_spins']} (cap {limit}): k=4 "
        f"objective={wide_row['objective']:+.4f} vs monolithic "
        f"{wide_row['monolithic_objective']:+.4f}, "
        f"{wide_row['wall_clock_seconds']:.2f}s"
    )
