"""Table 1 (joint mode): DALTA vs DALTA-ILP vs BA vs proposed.

Paper result (n = 9, joint mode): the proposed Ising method has the
smallest average MED of the four (12% below DALTA-ILP, ~30% below
DALTA), with runtime comparable to the fast heuristics and far below
the ILP.  The shape asserted here: proposed is within a whisker of the
best average MED and at least an order faster than the ILP.
"""

import numpy as np
import pytest

from repro.analysis.experiments import (
    ba_method,
    dalta_ilp_method,
    dalta_method,
    proposed_method,
    run_table1,
)
from repro.core.config import CoreSolverConfig


@pytest.fixture(scope="module")
def table1_joint(bench_scale):
    solver = CoreSolverConfig.paper_small_scale().with_updates(
        max_iterations=2000, n_replicas=4
    )
    return run_table1(
        mode="joint",
        methods=[
            dalta_method(),
            dalta_ilp_method(
                time_limit=bench_scale["ilp_seconds"], node_limit=2000
            ),
            ba_method(n_moves=600),
            proposed_method(solver),
        ],
        n_inputs=bench_scale["n_small"],
        n_partitions=min(2, bench_scale["n_partitions"]),
        n_rounds=bench_scale["n_rounds"],
        seed=0,
    )


def test_table1_joint_rows(benchmark, table1_joint):
    result = benchmark.pedantic(lambda: table1_joint, rounds=1, iterations=1)
    print("\n[table1/joint]")
    print(result.to_table())
    assert set(result.methods()) == {"dalta", "dalta-ilp", "ba", "proposed"}
    assert len(result.rows) == 24  # 6 functions x 4 methods


def test_table1_joint_shape(benchmark, table1_joint):
    averages = benchmark.pedantic(
        table1_joint.averages, rounds=1, iterations=1
    )
    meds = {name: stats["med"] for name, stats in averages.items()}
    times = {name: stats["time"] for name, stats in averages.items()}
    print(f"\n[table1/joint] avg MED per method: "
          + ", ".join(f"{k}={v:.3f}" for k, v in meds.items()))
    print(f"[table1/joint] avg time per method: "
          + ", ".join(f"{k}={v:.2f}s" for k, v in times.items()))

    # paper shape: proposed has (near-)lowest average MED of all methods
    best = min(meds.values())
    assert meds["proposed"] <= best * 1.15 + 1e-9
    # paper shape: proposed is far faster than the ILP route
    assert times["proposed"] * 2 <= times["dalta-ilp"]
    # joint-mode MEDs are all finite and sane (< half output range)
    assert all(np.isfinite(v) for v in meds.values())
