"""Figure 4 reproduction: proposed / DALTA ratios on the 10 benchmarks.

Paper result (n = 16, joint mode): MED ratio below 1 on 7/10 benchmarks
with an 11% smaller mean MED and a 1.16x mean runtime speedup.

Two substrate caveats for the runtime series (documented in
EXPERIMENTS.md): the paper's DALTA heuristic is a C++ implementation
whose candidate evaluation is comparatively expensive, while this
repository's DALTA is a handful of vectorized NumPy passes — so
absolute runtime *ratios* favour DALTA more here than on the authors'
testbed.  The asserted shape is therefore the accuracy series (mean MED
ratio <= 1) plus sanity on the runtime series; the printed chart gives
the full picture.
"""

import numpy as np
import pytest

from repro.analysis.experiments import run_fig4
from repro.analysis.stats import summarize_ratios
from repro.core.config import CoreSolverConfig


@pytest.fixture(scope="module")
def fig4(bench_scale):
    n = bench_scale["n_large"]
    solver = CoreSolverConfig.paper_large_scale().with_updates(
        max_iterations=2000, n_replicas=4
    )
    return run_fig4(
        n_inputs=n,
        n_partitions=bench_scale["n_partitions"],
        n_rounds=bench_scale["n_rounds"],
        seed=0,
        solver=solver,
    )


def test_fig4_series(benchmark, fig4):
    result = benchmark.pedantic(lambda: fig4, rounds=1, iterations=1)
    print("\n[fig4]")
    print(result.to_chart())
    assert len(result.med_ratios()) == 10


def test_fig4_shape(benchmark, fig4):
    summary = benchmark.pedantic(fig4.summary, rounds=1, iterations=1)
    med = summary["med_ratio"]
    run = summary["runtime_ratio"]
    print(
        f"\n[fig4] MED ratio mean {med['mean']:.3f} "
        f"(paper: 0.89), below 1 on {med['fraction_below_one'] * 100:.0f}% "
        f"of benchmarks (paper: 70%)"
    )
    print(
        f"[fig4] runtime ratio mean {run['mean']:.3f} "
        f"(paper: 0.86, i.e. 1.16x speedup; see module docstring for the "
        f"substrate caveat)"
    )
    # paper shape: proposed at least matches DALTA's accuracy on average
    assert med["mean"] <= 1.10
    # and wins or ties on at least half the benchmarks
    assert med["fraction_below_one"] + _tie_fraction(fig4) >= 0.5
    # runtime ratios are finite and positive
    assert np.isfinite(run["mean"]) and run["mean"] > 0


def _tie_fraction(fig4_result) -> float:
    ratios = list(fig4_result.med_ratios().values())
    ties = sum(1 for r in ratios if np.isclose(r, 1.0))
    return ties / len(ratios)
