"""Fleet benchmark: remote-worker throughput scaling and claim latency.

Sizes the worker plane the way an operator would:

* **throughput vs fleet size** — one dispatch-only gateway (no local
  workers), the same unique-job batch drained by 1, 2, and 4 remote
  agents; reports jobs/s per fleet size and the speedup over one
  worker;
* **claim latency** — the long-poll wakeup (submit-to-grant while a
  claim is parked) and the empty-claim round trip (``wait=0`` → 204).

Writes ``BENCH_fleet.json`` at the repo root.  Scale knobs:
``REPRO_BENCH_FLEET_JOBS`` (batch size, default 8),
``REPRO_BENCH_FLEET_WAKEUPS`` (wakeup samples, default 10), plus the
global ``REPRO_BENCH_P`` / ``REPRO_BENCH_R``.
"""

import dataclasses
import os
import threading
import time

from benchmarks.conftest import write_bench_json
from repro.core import CoreSolverConfig, FrameworkConfig
from repro.fleet import RemoteWorkerAgent
from repro.gateway import DecompositionGateway, GatewayConfig
from repro.service import DecompositionService, JobSpec, SchedulerPolicy

FLEET_SIZES = (1, 2, 4)
N_INPUTS = 6

FAST_POLICY = SchedulerPolicy(
    retry_backoff_seconds=0.01, poll_interval_seconds=0.005
)


def _config(bench_scale):
    return FrameworkConfig(
        mode="joint",
        free_size=2,
        n_partitions=bench_scale["n_partitions"],
        n_rounds=bench_scale["n_rounds"],
        seed=7,
        solver=CoreSolverConfig(max_iterations=400, n_replicas=2),
    )


def _percentile(samples, q):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def _drain_with_fleet(tmp_path, config, n_jobs, n_agents):
    """Submit a unique batch, drain it with ``n_agents`` remote
    agents over HTTP, return (elapsed_seconds, per-agent stats)."""
    service = DecompositionService(
        tmp_path / f"svc-{n_agents}", policy=FAST_POLICY
    )
    jobs = [
        service.submit(
            JobSpec(
                workload="cos",
                n_inputs=N_INPUTS,
                config=dataclasses.replace(config, seed=seed),
            )
        )
        for seed in range(n_jobs)
    ]
    gw_config = GatewayConfig(
        port=0, claim_wait_seconds=0.2, claim_poll_seconds=0.02
    )
    with DecompositionGateway(service, gw_config) as gw:
        agents = [
            RemoteWorkerAgent(
                gw.url,
                worker_id=f"bench-{n_agents}-{i}",
                drain=True,
                claim_wait=0.2,
                poll_seconds=0.02,
            )
            for i in range(n_agents)
        ]
        start = time.perf_counter()
        threads = [
            threading.Thread(target=agent.run, name=agent.worker_id)
            for agent in agents
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
    for job in jobs:
        assert service.job(job.id).state == "done"
    return elapsed, [agent.stats for agent in agents]


def _claim_latency(tmp_path, config, n_wakeups):
    """Long-poll wakeup (submit→grant) and empty-claim round trip."""
    service = DecompositionService(
        tmp_path / "svc-latency", policy=FAST_POLICY
    )
    gw_config = GatewayConfig(
        port=0, claim_wait_seconds=5.0, claim_poll_seconds=0.02
    )
    wakeups = []
    empties = []
    with DecompositionGateway(service, gw_config) as gw:
        from repro.fleet import FleetClient

        client = FleetClient(gw.url, timeout_seconds=30.0)
        for i in range(n_wakeups):
            grant_box = {}

            def parked_claim():
                grant_box["grant"] = client.claim("latency-probe")

            thread = threading.Thread(target=parked_claim)
            thread.start()
            time.sleep(0.1)  # let the claim park server-side
            submitted_at = time.perf_counter()
            job = service.submit(
                JobSpec(
                    workload="cos",
                    n_inputs=N_INPUTS,
                    config=dataclasses.replace(config, seed=1000 + i),
                )
            )
            thread.join(timeout=30)
            wakeups.append(time.perf_counter() - submitted_at)
            grant = grant_box["grant"]
            assert grant is not None and grant.job.id == job.id
            # settle the probe job instantly (no solve) so the next
            # wakeup measures an empty queue again
            client.complete(
                "latency-probe",
                job.id,
                job.artifact_key,
                design={"bench": "latency-probe"},
            )
        probe = FleetClient(gw.url)
        for _ in range(30):
            start = time.perf_counter()
            assert probe.claim("empty-probe", wait=0) is None
            empties.append(time.perf_counter() - start)
    return wakeups, empties


def test_fleet_throughput_and_claim_latency(
    benchmark, bench_scale, tmp_path
):
    n_jobs = int(os.environ.get("REPRO_BENCH_FLEET_JOBS", 8))
    n_wakeups = int(os.environ.get("REPRO_BENCH_FLEET_WAKEUPS", 10))
    config = _config(bench_scale)

    def run_sweep():
        results = {}
        for n_agents in FLEET_SIZES:
            elapsed, stats = _drain_with_fleet(
                tmp_path, config, n_jobs, n_agents
            )
            results[n_agents] = {
                "elapsed_seconds": elapsed,
                "jobs_per_second": n_jobs / elapsed,
                "completed_by_agent": [s.completed for s in stats],
                "failed": sum(s.failed for s in stats),
            }
        return results

    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    wakeups, empties = _claim_latency(tmp_path, config, n_wakeups)

    base = results[FLEET_SIZES[0]]["jobs_per_second"]
    payload = {
        "mix": {
            "n_jobs": n_jobs,
            "n_inputs": N_INPUTS,
            "n_partitions": config.n_partitions,
            "n_rounds": config.n_rounds,
        },
        "throughput": {
            str(n): {
                **results[n],
                "speedup_vs_1": results[n]["jobs_per_second"] / base,
            }
            for n in FLEET_SIZES
        },
        "claim_latency": {
            "longpoll_wakeup": {
                "n_samples": len(wakeups),
                "p50_ms": _percentile(wakeups, 0.50) * 1000.0,
                "p95_ms": _percentile(wakeups, 0.95) * 1000.0,
            },
            "empty_claim": {
                "n_samples": len(empties),
                "p50_ms": _percentile(empties, 0.50) * 1000.0,
                "p95_ms": _percentile(empties, 0.95) * 1000.0,
            },
        },
    }
    path = write_bench_json("BENCH_fleet.json", payload)
    for n in FLEET_SIZES:
        row = payload["throughput"][str(n)]
        print(
            f"\n[fleet] {n} worker(s): "
            f"{row['jobs_per_second']:.2f} jobs/s "
            f"({row['speedup_vs_1']:.2f}x vs 1)"
        )
    wake = payload["claim_latency"]["longpoll_wakeup"]
    print(
        f"[fleet] long-poll wakeup p50 {wake['p50_ms']:.1f} ms / "
        f"p95 {wake['p95_ms']:.1f} ms"
    )
    print(f"[fleet] wrote {path}")

    # qualitative shape, not a timing gate: more workers must not be
    # slower, and every batch must land completely
    for n in FLEET_SIZES:
        assert results[n]["failed"] == 0
        assert sum(results[n]["completed_by_agent"]) == n_jobs
    assert (
        payload["throughput"]["4"]["jobs_per_second"]
        >= 0.8 * payload["throughput"]["1"]["jobs_per_second"]
    )
    # the long-poll must wake well under the claim-wait cap
    assert wake["p95_ms"] < 2000.0
