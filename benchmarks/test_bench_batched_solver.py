"""Supporting benchmark: batched multi-partition bSB vs sequential.

The paper's pitch for SB is parallel spin updates; the software
counterpart is batching the framework's ``P`` candidate-partition COPs
into one vectorized integration (:mod:`repro.core.batch`).  This
benchmark times one full component optimization both ways at equal
iteration budgets and checks the accuracy parity.
"""

import time

import numpy as np
import pytest

from repro.core.batch import BatchedCoreCOPSolver
from repro.core.config import CoreSolverConfig
from repro.core.partitions import sample_partitions
from repro.core.solver import CoreCOPSolver
from repro.workloads import build_workload

N_PARTITIONS = 8


@pytest.fixture(scope="module")
def instance(bench_scale):
    workload = build_workload("ln", n_inputs=bench_scale["n_small"])
    rng = np.random.default_rng(0)
    partitions = sample_partitions(
        workload.table.n_inputs, workload.free_size, N_PARTITIONS, rng
    )
    return workload, partitions


# fixed budget on both sides for a fair flop comparison
CONFIG = CoreSolverConfig(
    max_iterations=1000, n_replicas=4, use_dynamic_stop=False
)


def test_sequential_component_sweep(benchmark, instance):
    workload, partitions = instance
    solver = CoreCOPSolver(CONFIG)

    def sweep():
        best = np.inf
        for partition in partitions:
            solution = solver.solve(
                workload.table, workload.table,
                workload.table.n_outputs - 1, partition, "joint",
                np.random.default_rng(0),
            )
            best = min(best, solution.objective)
        return best

    best = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(f"\n[batched] sequential best objective: {best:.4f}")
    assert np.isfinite(best)


def test_batched_component_sweep(benchmark, instance):
    workload, partitions = instance
    solver = BatchedCoreCOPSolver(CONFIG)

    def sweep():
        solutions = solver.solve_candidates(
            workload.table, workload.table,
            workload.table.n_outputs - 1, partitions, "joint",
            np.random.default_rng(0),
        )
        return min(s.objective for s in solutions)

    best = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(f"\n[batched] batched best objective:    {best:.4f}")
    assert np.isfinite(best)


def test_batched_speedup_and_parity(benchmark, instance):
    """Direct head-to-head under one timer (the headline number)."""
    workload, partitions = instance
    sequential = CoreCOPSolver(CONFIG)
    batched = BatchedCoreCOPSolver(CONFIG)
    k = workload.table.n_outputs - 1

    def head_to_head():
        t0 = time.perf_counter()
        seq_best = min(
            sequential.solve(
                workload.table, workload.table, k, partition, "joint",
                np.random.default_rng(0),
            ).objective
            for partition in partitions
        )
        t_seq = time.perf_counter() - t0
        t0 = time.perf_counter()
        bat_best = min(
            s.objective
            for s in batched.solve_candidates(
                workload.table, workload.table, k, partitions, "joint",
                np.random.default_rng(0),
            )
        )
        t_bat = time.perf_counter() - t0
        return seq_best, t_seq, bat_best, t_bat

    seq_best, t_seq, bat_best, t_bat = benchmark.pedantic(
        head_to_head, rounds=1, iterations=1
    )
    print(
        f"\n[batched] sequential {seq_best:.4f} in {t_seq:.2f}s vs "
        f"batched {bat_best:.4f} in {t_bat:.2f}s "
        f"({t_seq / t_bat:.1f}x speedup)"
    )
    # equal budgets: the batch must not trade away accuracy...
    assert bat_best <= seq_best * 1.25 + 0.1
    # ...and must be faster (that is its entire reason to exist)
    assert t_bat < t_seq
