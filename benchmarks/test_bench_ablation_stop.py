"""Ablation (Sec. 3.3.1): dynamic energy-variance stop vs fixed budgets.

The dynamic criterion should (a) terminate well before a generous fixed
budget on instances that settle early, while (b) matching the solution
quality of the largest fixed budget — that is the whole point of
monitoring the energy variance instead of guessing an iteration count.
"""

from collections import defaultdict

import numpy as np
import pytest

from repro.analysis.experiments import run_stop_ablation
from repro.analysis.tables import format_table
from repro.core.config import CoreSolverConfig

BUDGETS = (100, 500, 2000)


@pytest.fixture(scope="module")
def stop_rows(bench_scale):
    solver = CoreSolverConfig.paper_small_scale().with_updates(
        max_iterations=4000, n_replicas=4
    )
    return run_stop_ablation(
        n_inputs=bench_scale["n_small"],
        n_instances=6,
        fixed_budgets=BUDGETS,
        seed=0,
        solver=solver,
    )


def _by_variant(rows):
    grouped = defaultdict(list)
    for row in rows:
        grouped[row.variant].append(row)
    return grouped


def test_stop_ablation_table(benchmark, stop_rows):
    rows = benchmark.pedantic(lambda: stop_rows, rounds=1, iterations=1)
    grouped = _by_variant(rows)
    body = []
    for variant, items in grouped.items():
        body.append(
            [
                variant,
                float(np.mean([r.objective for r in items])),
                float(np.mean([r.n_iterations for r in items])),
                float(np.mean([r.runtime_seconds for r in items])),
            ]
        )
    print("\n[ablation/stop]")
    print(
        format_table(
            ["variant", "mean objective", "mean iterations",
             "mean time (s)"],
            body,
        )
    )
    assert set(grouped) == {"dynamic"} | {f"fixed-{b}" for b in BUDGETS}


def test_stop_ablation_shape(benchmark, stop_rows):
    grouped = benchmark.pedantic(
        lambda: _by_variant(stop_rows), rounds=1, iterations=1
    )
    dynamic_obj = np.mean([r.objective for r in grouped["dynamic"]])
    dynamic_iters = np.mean([r.n_iterations for r in grouped["dynamic"]])
    big_obj = np.mean([r.objective for r in grouped["fixed-2000"]])
    print(
        f"\n[ablation/stop] dynamic: obj {dynamic_obj:.4f} at "
        f"{dynamic_iters:.0f} iters; fixed-2000: obj {big_obj:.4f}"
    )
    # quality of the dynamic stop matches the generous fixed budget
    assert dynamic_obj <= big_obj * 1.1 + 1e-6
    # and it stops meaningfully earlier than its own 4000-iteration cap
    assert dynamic_iters < 4000
