"""Ablation (Sec. 3.3.2): the Theorem-3 intervention on/off.

The intervention resets the column-type oscillators to their
conditionally optimal values at each sampling point.  The paper
introduces it "for quality improvement"; the reproduced shape is that
turning it on never hurts the average objective, and the decoded
settings always carry Theorem-3-optimal column types.  The repository's
optional *polish* extension (a full alternating pass on the decoded
setting) is benchmarked alongside.
"""

from collections import defaultdict

import numpy as np
import pytest

from repro.analysis.experiments import run_heuristic_ablation
from repro.analysis.tables import format_table
from repro.core.config import CoreSolverConfig


@pytest.fixture(scope="module")
def heuristic_rows(bench_scale):
    solver = CoreSolverConfig.paper_small_scale().with_updates(
        max_iterations=2000, n_replicas=4
    )
    return run_heuristic_ablation(
        n_inputs=bench_scale["n_small"],
        n_instances=6,
        seed=0,
        solver=solver,
    )


def _by_variant(rows):
    grouped = defaultdict(list)
    for row in rows:
        grouped[row.variant].append(row)
    return grouped


def test_heuristic_ablation_table(benchmark, heuristic_rows):
    rows = benchmark.pedantic(lambda: heuristic_rows, rounds=1, iterations=1)
    grouped = _by_variant(rows)
    body = [
        [
            variant,
            float(np.mean([r.objective for r in items])),
            float(np.mean([r.runtime_seconds for r in items])),
        ]
        for variant, items in grouped.items()
    ]
    print("\n[ablation/heuristic]")
    print(format_table(["variant", "mean objective", "mean time (s)"], body))
    assert set(grouped) == {
        "intervention", "no-intervention", "no-symmetry-init",
        "intervention+polish",
    }


def test_heuristic_ablation_shape(benchmark, heuristic_rows):
    grouped = benchmark.pedantic(
        lambda: _by_variant(heuristic_rows), rounds=1, iterations=1
    )
    with_hook = np.mean([r.objective for r in grouped["intervention"]])
    without = np.mean([r.objective for r in grouped["no-intervention"]])
    polished = np.mean(
        [r.objective for r in grouped["intervention+polish"]]
    )
    print(
        f"\n[ablation/heuristic] mean objective: intervention "
        f"{with_hook:.4f} vs none {without:.4f} vs +polish {polished:.4f}"
    )
    # the paper's claim: intervening improves (or at worst matches) quality
    assert with_hook <= without * 1.05 + 1e-6
    # polish is a pure refinement: it can only help
    assert polished <= with_hook + 1e-9
