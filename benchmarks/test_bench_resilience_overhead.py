"""Resilience overhead: disabled fault seams must be near-free.

The bSB solve loop gained two pieces of resilience machinery on its hot
path: the kernel fault seams (``kernel.nan`` / ``kernel.overflow``,
behind one hoisted ``active_fault_plan()`` lookup per solve) and the
numeric guard (``kernel.check_state`` once per sampling point).  The
ISSUE gates the *disabled* configuration at < 2% overhead on the kernel
benchmark; this benchmark pins that with a number.

Three variants of the same seeded solve (r=128, c=512 bipartite core
COP, 16 replicas) are timed min-of-repeats:

* ``all_off`` — ``numeric_guard=False``, no fault plan installed: the
  solver with the resilience machinery fully disabled,
* ``default`` — the production default (guard on, no plan installed),
* ``armed_never_fires`` — a fault plan installed whose rules have
  ``probability=0.0``, so every sampling point pays the full
  ``should_fire`` bookkeeping without ever firing (informational).

Writes ``BENCH_resilience.json`` at the repo root and **gates**
``default`` at < 2% overhead vs ``all_off``.  All variants must decode
bit-identical best spins from the same seed (RNG neutrality).
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import write_bench_json
from repro.ising.solvers.bsb import BallisticSBSolver
from repro.ising.stop_criteria import FixedIterations
from repro.ising.structured import BipartiteDecompositionModel
from repro.resilience import FaultPlan, FaultRule, fault_injection

N_ROWS = 128
N_COLS = 512
N_REPLICAS = 16
N_ITERATIONS = 300
SAMPLE_EVERY = 50
SEED = 2024
TIMING_REPEATS = 5
MAX_DISABLED_OVERHEAD = 0.02


def _solver(numeric_guard):
    return BallisticSBSolver(
        stop=FixedIterations(N_ITERATIONS, sample_every=SAMPLE_EVERY),
        n_replicas=N_REPLICAS,
        backend="numpy64",
        numeric_guard=numeric_guard,
    )


def _timed_interleaved(variants):
    """Min-of-repeats with the variants interleaved per round.

    Running each variant as its own back-to-back block biases the
    comparison (warm-up, CPU frequency drift land on one block);
    interleaving spreads that noise evenly across variants.
    """
    times = {label: np.inf for label in variants}
    results = {}
    for _ in range(TIMING_REPEATS):
        for label, solve in variants.items():
            t0 = time.perf_counter()
            results[label] = solve()
            times[label] = min(
                times[label], time.perf_counter() - t0
            )
    return times, results


def test_disabled_fault_injection_overhead():
    rng = np.random.default_rng(SEED)
    model = BipartiteDecompositionModel(
        rng.random((N_ROWS, N_COLS)) * 2.0 - 1.0
    )

    def run(guard):
        return _solver(guard).solve(model, np.random.default_rng(SEED))

    never_fires = FaultPlan(
        [
            FaultRule(site="kernel.nan", probability=0.0),
            FaultRule(site="kernel.overflow", probability=0.0),
        ],
        seed=SEED,
    )

    def run_armed():
        with fault_injection(never_fires):
            return run(True)

    run(True)  # warm-up: imports, allocator, BLAS thread pools
    times, results = _timed_interleaved(
        {
            "all_off": lambda: run(False),
            "default": lambda: run(True),
            "armed_never_fires": run_armed,
        }
    )
    t_off, t_default, t_armed = (
        times["all_off"], times["default"], times["armed_never_fires"]
    )
    r_off, r_default, r_armed = (
        results["all_off"],
        results["default"],
        results["armed_never_fires"],
    )

    # RNG neutrality: the machinery must not perturb the physics
    assert np.array_equal(r_default.spins, r_off.spins)
    assert np.array_equal(r_armed.spins, r_off.spins)
    assert r_default.energy == r_off.energy == r_armed.energy

    overhead_default = t_default / t_off - 1.0
    overhead_armed = t_armed / t_off - 1.0
    payload = {
        "problem": {
            "rows": N_ROWS,
            "cols": N_COLS,
            "replicas": N_REPLICAS,
            "iterations": N_ITERATIONS,
            "sample_every": SAMPLE_EVERY,
        },
        "seconds": {
            "all_off": t_off,
            "default": t_default,
            "armed_never_fires": t_armed,
        },
        "overhead_vs_all_off": {
            "default": overhead_default,
            "armed_never_fires": overhead_armed,
        },
        "gate_max_default_overhead": MAX_DISABLED_OVERHEAD,
    }
    write_bench_json("BENCH_resilience.json", payload)
    print(
        f"\nresilience overhead: all_off={t_off * 1e3:.2f} ms  "
        f"default={t_default * 1e3:.2f} ms "
        f"({overhead_default:+.2%})  "
        f"armed(never fires)={t_armed * 1e3:.2f} ms "
        f"({overhead_armed:+.2%})"
    )

    assert overhead_default < MAX_DISABLED_OVERHEAD, (
        f"disabled resilience machinery costs {overhead_default:.2%} "
        f"(gate: {MAX_DISABLED_OVERHEAD:.0%}) on the kernel benchmark"
    )
