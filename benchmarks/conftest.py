"""Shared configuration for the benchmark suite.

Every benchmark reproduces one table or figure of the paper at a
*laptop* scale by default and scales up to the paper's full settings
through environment variables:

=====================  ======================================  ========
variable               meaning                                 default
=====================  ======================================  ========
``REPRO_BENCH_N``      input bits for the Fig. 4 suite          10
``REPRO_BENCH_N9``     input bits for the Table 1 suite         9
``REPRO_BENCH_P``      candidate partitions per component       4
``REPRO_BENCH_R``      framework rounds                         1
``REPRO_BENCH_ILP_S``  DALTA-ILP per-COP budget (seconds)       0.5
=====================  ======================================  ========

Paper scale: ``REPRO_BENCH_N=16 REPRO_BENCH_P=1000 REPRO_BENCH_R=5
REPRO_BENCH_ILP_S=3600`` (expect long runtimes).

Each benchmark prints the reproduced rows/series (run pytest with
``-s`` to see them) and asserts the paper's *qualitative* shape — who
wins, roughly by how much — rather than absolute numbers, since the
substrate here is NumPy rather than the authors' C++/Eigen testbed.
"""

import json
import os
from pathlib import Path

import pytest

#: repository root — machine-readable benchmark outputs land here
REPO_ROOT = Path(__file__).resolve().parent.parent


def write_bench_json(name: str, payload: dict) -> Path:
    """Write one benchmark's machine-readable results to the repo root.

    Benchmarks that feed numbers into docs or acceptance checks (e.g.
    ``BENCH_kernels.json``) persist them through this helper so every
    suite produces the same layout: pretty-printed, key-sorted JSON with
    a trailing newline, committed next to the README.
    """
    path = REPO_ROOT / name
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


def _env_float(name: str, default: float) -> float:
    return float(os.environ.get(name, default))


@pytest.fixture(scope="session")
def bench_scale():
    """Benchmark scale knobs resolved from the environment."""
    return {
        "n_large": _env_int("REPRO_BENCH_N", 10),
        "n_small": _env_int("REPRO_BENCH_N9", 9),
        "n_partitions": _env_int("REPRO_BENCH_P", 4),
        "n_rounds": _env_int("REPRO_BENCH_R", 1),
        "ilp_seconds": _env_float("REPRO_BENCH_ILP_S", 0.5),
    }
