"""Supporting benchmark: fused kernel backends vs the seed inline loop.

Times the bSB hot loop on one large bipartite instance (r=128, c=512 —
the shape class of the paper's n=16 runs) three ways:

* the historical inline NumPy loop (frozen here, as in the unit tests),
* the fused ``numpy64`` reference backend,
* the fused float32 backends (``numpy32``/``native32``, plus ``numba``
  when installed),

plus a **batched** section: ``B`` independent problems advanced through
one :class:`~repro.ising.kernels.BlockBatch` (the cross-job fusion
path) vs stepping each problem alone with the ``numpy32`` kernel, at
batch sizes 1/4/16/64.

Writes ``BENCH_kernels.json`` at the repo root with iterations/second
per variant and speedups vs the baselines, and checks that the fast
backends do not trade away solution quality: every backend's decoded
best objective (scored in float64) must match the ``numpy64`` result,
and the batched path must keep near-perfect decoded-sign agreement
with the per-problem float32 runs.
"""

import json
import time

import numpy as np
import pytest

from benchmarks.conftest import REPO_ROOT, write_bench_json
from repro.ising.kernels import (
    BlockBatch,
    BlockMember,
    available_backends,
    make_kernel,
)
from repro.ising.kernels.native import native_engine
from repro.ising.schedules import LinearPump

N_ROWS = 128
N_COLS = 512
N_REPLICAS = 16
N_ITERATIONS = 200
DT, A0 = 0.25, 1.0
TIMING_REPEATS = 3


def _inline_reference_loop(weights, x, y, c0, pump):
    """The seed repo's pre-kernel arithmetic, timed as the baseline."""
    k = weights / 4.0
    a = k.sum(axis=1)
    r = weights.shape[0]
    for iteration in range(1, N_ITERATIONS + 1):
        a_t = pump(iteration)
        v1 = x[..., :r]
        v2 = x[..., r : 2 * r]
        t = x[..., 2 * r :]
        kt = t @ k.T
        fields = np.concatenate(
            [-a + kt, -a - kt, (v1 - v2) @ k], axis=-1
        )
        y += DT * (-(A0 - a_t) * x + c0 * fields)
        x += DT * A0 * y
        outside = np.abs(x) > 1.0
        if outside.any():
            np.clip(x, -1.0, 1.0, out=x)
            y[outside] = 0.0
    return x


def _kernel_loop(kernel, x, y, c0, pump):
    x, y = kernel.prepare_state(x, y)
    for iteration in range(1, N_ITERATIONS + 1):
        kernel.step(x, y, pump(iteration), DT, A0, c0)
    return x


def _best_objective(scorer, positions):
    spins = np.where(np.asarray(positions, dtype=float) >= 0, 1.0, -1.0)
    return float(np.min(scorer.energy(spins)))


@pytest.fixture(scope="module")
def instance():
    rng = np.random.default_rng(2024)
    weights = rng.normal(size=(N_ROWS, N_COLS)) / np.sqrt(N_COLS)
    scorer = make_kernel(weights, backend="numpy64")
    n = scorer.n_spins
    c0 = 0.5 / (scorer.coupling_rms() * np.sqrt(n))
    x0 = rng.uniform(-0.1, 0.1, (N_REPLICAS, n))
    y0 = rng.uniform(-0.1, 0.1, (N_REPLICAS, n))
    pump = LinearPump(A0, N_ITERATIONS)
    return weights, scorer, c0, x0, y0, pump


def _time_variant(run):
    best = np.inf
    positions = None
    for _ in range(TIMING_REPEATS):
        t0 = time.perf_counter()
        positions = run()
        best = min(best, time.perf_counter() - t0)
    return N_ITERATIONS / best, positions


def test_kernel_backend_throughput(benchmark, instance):
    weights, scorer, c0, x0, y0, pump = instance

    def sweep():
        results = {}
        rate, positions = _time_variant(
            lambda: _inline_reference_loop(
                weights, x0.copy(), y0.copy(), c0, pump
            )
        )
        results["inline_reference"] = (rate, positions)
        for backend in available_backends():
            kernel = make_kernel(weights, backend=backend)
            rate, positions = _time_variant(
                lambda: _kernel_loop(kernel, x0.copy(), y0.copy(), c0, pump)
            )
            results[backend] = (rate, positions)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    inline_rate, inline_positions = results["inline_reference"]
    numpy64_rate, numpy64_positions = results["numpy64"]
    reference_objective = _best_objective(scorer, numpy64_positions)

    payload = {
        "instance": {
            "n_rows": N_ROWS,
            "n_cols": N_COLS,
            "n_replicas": N_REPLICAS,
            "n_iterations": N_ITERATIONS,
        },
        "backends": {},
    }
    print(f"\n[kernels] r={N_ROWS} c={N_COLS} replicas={N_REPLICAS}")
    for name, (rate, positions) in results.items():
        objective = _best_objective(scorer, positions)
        payload["backends"][name] = {
            "iters_per_second": rate,
            "speedup_vs_inline": rate / inline_rate,
            "speedup_vs_numpy64": rate / numpy64_rate,
            "best_decoded_objective": objective,
        }
        print(
            f"[kernels] {name:>16}: {rate:8.1f} it/s "
            f"({rate / inline_rate:4.2f}x inline) "
            f"objective {objective:.4f}"
        )

    path = write_bench_json("BENCH_kernels.json", payload)
    print(f"[kernels] wrote {path}")

    # numpy64 is the inline loop refactored, not re-derived: identical
    # trajectories, identical decode
    assert np.array_equal(numpy64_positions, inline_positions)
    assert payload["backends"]["numpy64"]["best_decoded_objective"] == (
        _best_objective(scorer, inline_positions)
    )
    # the fused float32 path is the headline: meaningfully faster than
    # the seed loop without giving up decoded solution quality
    assert payload["backends"]["numpy32"]["speedup_vs_inline"] >= 1.5
    numpy32_objective = payload["backends"]["numpy32"][
        "best_decoded_objective"
    ]
    assert numpy32_objective == pytest.approx(
        reference_objective, rel=0.05
    )


# -- batched section ----------------------------------------------------

BATCH_SIZES = (1, 4, 16, 64)
BATCH_ITERATIONS = 100
BATCH_REPLICAS = 4  # the framework default (CoreSolverConfig.n_replicas)
SAMPLE_EVERY = 20   # the framework default sampling cadence
BATCH_REPEATS = 3


def _batch_instance(batch_size):
    """``batch_size`` independent single-problem members, as the fused
    service path would prepare them (one member per job sweep)."""
    rng = np.random.default_rng(9000 + batch_size)
    problems = []
    for _ in range(batch_size):
        weights = rng.normal(size=(1, N_ROWS, N_COLS)) / np.sqrt(N_COLS)
        scorer = make_kernel(weights[0], backend="numpy64")
        n = scorer.n_spins
        c0 = 0.5 / (scorer.coupling_rms() * np.sqrt(n))
        x0 = rng.uniform(-0.1, 0.1, (1, BATCH_REPLICAS, n))
        y0 = rng.uniform(-0.1, 0.1, (1, BATCH_REPLICAS, n))
        problems.append((weights, c0, x0, y0))
    return problems


def _per_problem_numpy32(problems, pump):
    """Baseline: each problem stepped alone by the numpy32 kernel —
    what ``batch_jobs=1`` service workers do per sweep.  Kernels and
    states are built outside the timed region; only stepping is timed
    (one-time setup is amortized over a real job's full run)."""
    kernels = [
        make_kernel(weights, backend="numpy32")
        for weights, _, _, _ in problems
    ]
    starts = [
        kernel.prepare_state(x0.copy(), y0.copy())
        for kernel, (_, _, x0, y0) in zip(kernels, problems)
    ]

    best, finals = np.inf, None
    for _ in range(BATCH_REPEATS):
        states = [(x.copy(), y.copy()) for x, y in starts]
        t0 = time.perf_counter()
        for (_, c0, _, _), kernel, (x, y) in zip(
            problems, kernels, states
        ):
            for iteration in range(1, BATCH_ITERATIONS + 1):
                kernel.step(x, y, pump(iteration), DT, A0, c0)
        elapsed = time.perf_counter() - t0
        if elapsed < best:
            best = elapsed
            finals = [np.asarray(x).copy() for x, _ in states]
    return best, finals


def _batched_blockbatch(problems, pump, backend):
    """Fused path: one BlockBatch advanced in sampling windows.
    Packing happens outside the timed region (the service packs once
    per fused round); only window advancement + pull is timed."""
    members = []
    for weights, c0, x0, y0 in problems:
        kernel = make_kernel(weights, backend=backend)
        x, y = kernel.prepare_state(x0.copy(), y0.copy())
        members.append(BlockMember(kernel, weights, x, y, c0))
    batch = BlockBatch(members, strategy="auto")
    starts = [
        (np.asarray(m.x).copy(), np.asarray(m.y).copy())
        for m in members
    ]

    best, finals = np.inf, None
    for _ in range(BATCH_REPEATS):
        for member, (x0, y0) in zip(members, starts):
            np.asarray(member.x)[...] = x0
            np.asarray(member.y)[...] = y0
        t0 = time.perf_counter()
        iteration = 0
        while iteration < BATCH_ITERATIONS:
            width = min(SAMPLE_EVERY, BATCH_ITERATIONS - iteration)
            a_ts = [pump(iteration + 1 + j) for j in range(width)]
            batch.advance(a_ts, DT, A0)
            iteration += width
            batch.pull()  # the host-side sampling boundary
        elapsed = time.perf_counter() - t0
        if elapsed < best:
            best = elapsed
            finals = [np.asarray(m.x).copy() for m in members]
    return best, finals


def test_batched_blockbatch_throughput(benchmark):
    float32_backend = (
        "native32"
        if "native32" in available_backends()
        and native_engine() is not None
        else "numpy32"
    )
    pump = LinearPump(A0, BATCH_ITERATIONS)

    def sweep():
        section = {}
        for batch_size in BATCH_SIZES:
            problems = _batch_instance(batch_size)
            base_s, base_finals = _per_problem_numpy32(problems, pump)
            fused_s, fused_finals = _batched_blockbatch(
                problems, pump, float32_backend
            )
            agreement = float(
                np.mean(
                    [
                        np.sign(f) == np.sign(b)
                        for f, b in zip(fused_finals, base_finals)
                    ]
                )
            )
            problem_iters = batch_size * BATCH_ITERATIONS
            section[str(batch_size)] = {
                "per_problem_numpy32_iters_per_second": (
                    problem_iters / base_s
                ),
                "batched_iters_per_second": problem_iters / fused_s,
                "speedup_vs_per_problem_numpy32": base_s / fused_s,
                "sign_agreement": agreement,
            }
        return section

    section = benchmark.pedantic(sweep, rounds=1, iterations=1)

    path = REPO_ROOT / "BENCH_kernels.json"
    payload = (
        json.loads(path.read_text()) if path.exists() else {}
    )
    payload["batched"] = {
        "backend": float32_backend,
        "n_rows": N_ROWS,
        "n_cols": N_COLS,
        "n_replicas": BATCH_REPLICAS,
        "n_iterations": BATCH_ITERATIONS,
        "sample_every": SAMPLE_EVERY,
        "batch_sizes": section,
    }
    write_bench_json("BENCH_kernels.json", payload)

    print(f"\n[kernels/batched] backend={float32_backend}")
    for batch_size in BATCH_SIZES:
        row = section[str(batch_size)]
        print(
            f"[kernels/batched] B={batch_size:>3}: "
            f"{row['batched_iters_per_second']:9.1f} problem-it/s "
            f"({row['speedup_vs_per_problem_numpy32']:4.2f}x "
            f"per-problem numpy32), "
            f"sign agreement {row['sign_agreement']:.3f}"
        )

    for batch_size in BATCH_SIZES:
        row = section[str(batch_size)]
        # the fused trajectories decode to (near-)identical spins
        assert row["sign_agreement"] >= 0.99
        if batch_size >= 16 and float32_backend == "native32":
            # the ISSUE's acceptance bar: >= 3x at batch >= 16
            assert row["speedup_vs_per_problem_numpy32"] >= 3.0
