"""Supporting benchmark: fused kernel backends vs the seed inline loop.

Times the bSB hot loop on one large bipartite instance (r=128, c=512 —
the shape class of the paper's n=16 runs) three ways:

* the historical inline NumPy loop (frozen here, as in the unit tests),
* the fused ``numpy64`` reference backend,
* the fused ``numpy32`` backend (plus ``numba`` when installed).

Writes ``BENCH_kernels.json`` at the repo root with iterations/second
per variant and speedups vs both baselines, and checks that the fast
backends do not trade away solution quality: every backend's decoded
best objective (scored in float64) must match the ``numpy64`` result.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import write_bench_json
from repro.ising.kernels import available_backends, make_kernel
from repro.ising.schedules import LinearPump

N_ROWS = 128
N_COLS = 512
N_REPLICAS = 16
N_ITERATIONS = 200
DT, A0 = 0.25, 1.0
TIMING_REPEATS = 3


def _inline_reference_loop(weights, x, y, c0, pump):
    """The seed repo's pre-kernel arithmetic, timed as the baseline."""
    k = weights / 4.0
    a = k.sum(axis=1)
    r = weights.shape[0]
    for iteration in range(1, N_ITERATIONS + 1):
        a_t = pump(iteration)
        v1 = x[..., :r]
        v2 = x[..., r : 2 * r]
        t = x[..., 2 * r :]
        kt = t @ k.T
        fields = np.concatenate(
            [-a + kt, -a - kt, (v1 - v2) @ k], axis=-1
        )
        y += DT * (-(A0 - a_t) * x + c0 * fields)
        x += DT * A0 * y
        outside = np.abs(x) > 1.0
        if outside.any():
            np.clip(x, -1.0, 1.0, out=x)
            y[outside] = 0.0
    return x


def _kernel_loop(kernel, x, y, c0, pump):
    x, y = kernel.prepare_state(x, y)
    for iteration in range(1, N_ITERATIONS + 1):
        kernel.step(x, y, pump(iteration), DT, A0, c0)
    return x


def _best_objective(scorer, positions):
    spins = np.where(np.asarray(positions, dtype=float) >= 0, 1.0, -1.0)
    return float(np.min(scorer.energy(spins)))


@pytest.fixture(scope="module")
def instance():
    rng = np.random.default_rng(2024)
    weights = rng.normal(size=(N_ROWS, N_COLS)) / np.sqrt(N_COLS)
    scorer = make_kernel(weights, backend="numpy64")
    n = scorer.n_spins
    c0 = 0.5 / (scorer.coupling_rms() * np.sqrt(n))
    x0 = rng.uniform(-0.1, 0.1, (N_REPLICAS, n))
    y0 = rng.uniform(-0.1, 0.1, (N_REPLICAS, n))
    pump = LinearPump(A0, N_ITERATIONS)
    return weights, scorer, c0, x0, y0, pump


def _time_variant(run):
    best = np.inf
    positions = None
    for _ in range(TIMING_REPEATS):
        t0 = time.perf_counter()
        positions = run()
        best = min(best, time.perf_counter() - t0)
    return N_ITERATIONS / best, positions


def test_kernel_backend_throughput(benchmark, instance):
    weights, scorer, c0, x0, y0, pump = instance

    def sweep():
        results = {}
        rate, positions = _time_variant(
            lambda: _inline_reference_loop(
                weights, x0.copy(), y0.copy(), c0, pump
            )
        )
        results["inline_reference"] = (rate, positions)
        for backend in available_backends():
            kernel = make_kernel(weights, backend=backend)
            rate, positions = _time_variant(
                lambda: _kernel_loop(kernel, x0.copy(), y0.copy(), c0, pump)
            )
            results[backend] = (rate, positions)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    inline_rate, inline_positions = results["inline_reference"]
    numpy64_rate, numpy64_positions = results["numpy64"]
    reference_objective = _best_objective(scorer, numpy64_positions)

    payload = {
        "instance": {
            "n_rows": N_ROWS,
            "n_cols": N_COLS,
            "n_replicas": N_REPLICAS,
            "n_iterations": N_ITERATIONS,
        },
        "backends": {},
    }
    print(f"\n[kernels] r={N_ROWS} c={N_COLS} replicas={N_REPLICAS}")
    for name, (rate, positions) in results.items():
        objective = _best_objective(scorer, positions)
        payload["backends"][name] = {
            "iters_per_second": rate,
            "speedup_vs_inline": rate / inline_rate,
            "speedup_vs_numpy64": rate / numpy64_rate,
            "best_decoded_objective": objective,
        }
        print(
            f"[kernels] {name:>16}: {rate:8.1f} it/s "
            f"({rate / inline_rate:4.2f}x inline) "
            f"objective {objective:.4f}"
        )

    path = write_bench_json("BENCH_kernels.json", payload)
    print(f"[kernels] wrote {path}")

    # numpy64 is the inline loop refactored, not re-derived: identical
    # trajectories, identical decode
    assert np.array_equal(numpy64_positions, inline_positions)
    assert payload["backends"]["numpy64"]["best_decoded_objective"] == (
        _best_objective(scorer, inline_positions)
    )
    # the fused float32 path is the headline: meaningfully faster than
    # the seed loop without giving up decoded solution quality
    assert payload["backends"]["numpy32"]["speedup_vs_inline"] >= 1.5
    numpy32_objective = payload["backends"]["numpy32"][
        "best_decoded_objective"
    ]
    assert numpy32_objective == pytest.approx(
        reference_objective, rel=0.05
    )
