"""Table 1 (separate mode): DALTA-ILP vs the proposed Ising method.

Paper result (n = 9, separate mode): the proposed method finds a 16%
smaller MED than DALTA-ILP using ~418x less runtime (DALTA-ILP's ILP
instances hit their hour-scale budget; bSB converges in sub-second).

Here DALTA-ILP runs under a laptop-scale per-COP budget
(``REPRO_BENCH_ILP_S``), which keeps its anytime character: the shape
to reproduce is *proposed at least matches the ILP incumbent's accuracy
while being far faster*.
"""

import pytest

from repro.analysis.experiments import (
    dalta_ilp_method,
    proposed_method,
    run_table1,
)
from repro.core.config import CoreSolverConfig


@pytest.fixture(scope="module")
def table1_separate(bench_scale):
    solver = CoreSolverConfig.paper_small_scale().with_updates(
        max_iterations=2000, n_replicas=4
    )
    return run_table1(
        mode="separate",
        methods=[
            dalta_ilp_method(
                time_limit=bench_scale["ilp_seconds"], node_limit=2000
            ),
            proposed_method(solver),
        ],
        n_inputs=bench_scale["n_small"],
        n_partitions=min(2, bench_scale["n_partitions"]),
        n_rounds=1,
        seed=0,
    )


def test_table1_separate_rows(benchmark, table1_separate):
    result = benchmark.pedantic(
        lambda: table1_separate, rounds=1, iterations=1
    )
    print("\n[table1/separate]")
    print(result.to_table())
    assert result.benchmarks() == [
        "cos", "tan", "exp", "ln", "erf", "denoise",
    ]


def test_table1_separate_shape(benchmark, table1_separate):
    """Proposed: accuracy >= ILP incumbent, runtime orders faster."""
    averages = benchmark.pedantic(
        table1_separate.averages, rounds=1, iterations=1
    )
    proposed = averages["proposed"]
    ilp = averages["dalta-ilp"]
    print(
        f"\n[table1/separate] avg MED: proposed {proposed['med']:.3f} "
        f"vs dalta-ilp {ilp['med']:.3f}; avg time: "
        f"{proposed['time']:.2f}s vs {ilp['time']:.2f}s "
        f"({ilp['time'] / proposed['time']:.1f}x speedup)"
    )
    # paper shape: proposed MED <= ILP-incumbent MED (16% better there)
    assert proposed["med"] <= ilp["med"] * 1.05 + 1e-9
    # paper shape: large speedup (418x there; require at least 2x here)
    assert proposed["time"] * 2 <= ilp["time"]
