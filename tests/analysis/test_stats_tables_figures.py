"""Tests for the analysis helpers (stats, tables, figures)."""

import numpy as np
import pytest

from repro.analysis.figures import ascii_bar_chart, ratio_series
from repro.analysis.stats import geometric_mean, safe_ratio, summarize_ratios
from repro.analysis.tables import format_markdown_table, format_table
from repro.errors import DimensionError


class TestStats:
    def test_geometric_mean(self):
        assert np.isclose(geometric_mean([1.0, 4.0]), 2.0)

    def test_geometric_mean_validation(self):
        with pytest.raises(DimensionError):
            geometric_mean([])
        with pytest.raises(DimensionError):
            geometric_mean([1.0, 0.0])

    def test_safe_ratio(self):
        assert safe_ratio(2.0, 4.0) == 0.5
        assert safe_ratio(0.0, 0.0) == 1.0
        assert safe_ratio(1.0, 0.0) == float("inf")

    def test_summarize_ratios(self):
        summary = summarize_ratios([0.5, 1.0, 2.0])
        assert np.isclose(summary["geomean"], 1.0)
        assert summary["min"] == 0.5
        assert summary["max"] == 2.0
        assert np.isclose(summary["fraction_below_one"], 1 / 3)

    def test_summarize_empty_rejected(self):
        with pytest.raises(DimensionError):
            summarize_ratios([])


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["x", "y"]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4  # header, rule, two rows

    def test_width_mismatch_rejected(self):
        with pytest.raises(DimensionError):
            format_table(["a"], [[1, 2]])

    def test_markdown_table(self):
        text = format_markdown_table(["m", "v"], [["x", 1.0]])
        assert text.splitlines()[0] == "| m | v |"
        assert "---" in text.splitlines()[1]

    def test_float_formatting(self):
        text = format_table(["v"], [[0.123456789]])
        assert "0.1235" in text


class TestFigures:
    def test_ratio_series(self):
        ratios = ratio_series({"a": 1.0, "b": 4.0}, {"a": 2.0, "b": 2.0})
        assert ratios == {"a": 0.5, "b": 2.0}

    def test_ratio_series_key_mismatch(self):
        with pytest.raises(DimensionError):
            ratio_series({"a": 1.0}, {"b": 1.0})

    def test_bar_chart_renders(self):
        chart = ascii_bar_chart({"cos": 0.9, "tan": 1.2}, title="MED")
        assert "MED" in chart
        assert "cos" in chart and "tan" in chart
        assert "0.900" in chart

    def test_bar_chart_reference_marker(self):
        chart = ascii_bar_chart({"x": 0.5}, reference=1.0)
        assert "|" in chart  # value below the reference: marker visible

    def test_bar_chart_validation(self):
        with pytest.raises(DimensionError):
            ascii_bar_chart({})
        with pytest.raises(DimensionError):
            ascii_bar_chart({"a": 1.0}, width=3)
