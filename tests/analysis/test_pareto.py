"""Tests for the accuracy-vs-storage sweep utilities."""

import numpy as np
import pytest

from repro.analysis.pareto import DesignPoint, pareto_front, sweep_free_sizes
from repro.core.config import CoreSolverConfig, FrameworkConfig
from repro.errors import DimensionError
from repro.workloads import build_workload


def point(free, med, bits):
    return DesignPoint(
        free_size=free, med=med, total_lut_bits=bits,
        compression_ratio=1.0, runtime_seconds=0.0,
    )


class TestDominance:
    def test_strict_dominance(self):
        assert point(2, 1.0, 100).dominates(point(3, 2.0, 200))
        assert point(2, 1.0, 100).dominates(point(3, 1.0, 200))
        assert not point(2, 1.0, 100).dominates(point(3, 0.5, 200))
        assert not point(2, 1.0, 100).dominates(point(2, 1.0, 100))

    def test_pareto_front_filters(self):
        points = [
            point(1, 5.0, 50),
            point(2, 2.0, 100),
            point(3, 2.5, 150),  # dominated by free=2
            point(4, 1.0, 300),
        ]
        front = pareto_front(points)
        assert [p.free_size for p in front] == [1, 2, 4]

    def test_front_sorted_by_storage(self):
        points = [point(4, 1.0, 300), point(1, 5.0, 50)]
        front = pareto_front(points)
        assert front[0].total_lut_bits <= front[1].total_lut_bits

    def test_empty_rejected(self):
        with pytest.raises(DimensionError):
            pareto_front([])


class TestSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        workload = build_workload("exp", n_inputs=7)
        config = FrameworkConfig(
            mode="joint", n_partitions=3, n_rounds=1, seed=0,
            solver=CoreSolverConfig(max_iterations=400, n_replicas=2),
        )
        return sweep_free_sizes(workload.table, [2, 3, 4], config)

    def test_one_point_per_size(self, sweep):
        assert [p.free_size for p in sweep] == [2, 3, 4]

    def test_storage_follows_partition_arithmetic(self, sweep):
        # per output: 2^(7 - free) + 2^(free + 1), times 7 outputs
        for p in sweep:
            expected = 7 * ((1 << (7 - p.free_size))
                            + (1 << (p.free_size + 1)))
            assert p.total_lut_bits == expected

    def test_meds_finite(self, sweep):
        assert all(np.isfinite(p.med) for p in sweep)

    def test_front_is_subset(self, sweep):
        front = pareto_front(sweep)
        assert set(front) <= set(sweep)

    def test_bad_sizes_rejected(self):
        workload = build_workload("exp", n_inputs=6)
        with pytest.raises(DimensionError):
            sweep_free_sizes(workload.table, [6])
        with pytest.raises(DimensionError):
            sweep_free_sizes(workload.table, [])
