"""Tests for the experiment runners (tiny scales for speed)."""

import numpy as np
import pytest

from repro.analysis.experiments import (
    ba_method,
    dalta_method,
    proposed_method,
    run_fig4,
    run_heuristic_ablation,
    run_stop_ablation,
    run_table1,
)
from repro.core.config import CoreSolverConfig
from repro.errors import ConfigurationError

TINY_SOLVER = CoreSolverConfig(max_iterations=200, n_replicas=2)


@pytest.fixture(scope="module")
def tiny_table1():
    return run_table1(
        mode="joint",
        methods=[dalta_method(), proposed_method(TINY_SOLVER)],
        n_inputs=6,
        n_partitions=2,
        n_rounds=1,
        functions=["cos", "ln"],
    )


class TestRunTable1:
    def test_row_coverage(self, tiny_table1):
        assert tiny_table1.benchmarks() == ["cos", "ln"]
        assert tiny_table1.methods() == ["dalta", "proposed"]
        assert len(tiny_table1.rows) == 4

    def test_cells_and_averages(self, tiny_table1):
        cell = tiny_table1.cell("cos", "proposed")
        assert cell.med >= 0 and cell.runtime_seconds > 0
        averages = tiny_table1.averages()
        meds = [
            tiny_table1.cell(b, "proposed").med
            for b in tiny_table1.benchmarks()
        ]
        assert np.isclose(averages["proposed"]["med"], np.mean(meds))

    def test_to_table_renders(self, tiny_table1):
        text = tiny_table1.to_table()
        assert "average" in text
        assert "proposed MED" in text

    def test_missing_cell_raises(self, tiny_table1):
        with pytest.raises(KeyError):
            tiny_table1.cell("cos", "ilp")

    def test_unknown_function_rejected(self):
        with pytest.raises(ConfigurationError):
            run_table1(functions=["nope"], n_inputs=6)


class TestRunFig4:
    @pytest.fixture(scope="class")
    def tiny_fig4(self):
        return run_fig4(
            n_inputs=6,
            n_partitions=2,
            n_rounds=1,
            benchmarks=["cos", "multiplier"],
            solver=TINY_SOLVER,
        )

    def test_ratios_cover_benchmarks(self, tiny_fig4):
        assert set(tiny_fig4.med_ratios()) == {"cos", "multiplier"}
        assert set(tiny_fig4.runtime_ratios()) == {"cos", "multiplier"}

    def test_ratios_positive(self, tiny_fig4):
        for value in tiny_fig4.med_ratios().values():
            assert value >= 0
        for value in tiny_fig4.runtime_ratios().values():
            assert value > 0

    def test_summary_and_chart(self, tiny_fig4):
        summary = tiny_fig4.summary()
        assert "med_ratio" in summary and "runtime_ratio" in summary
        chart = tiny_fig4.to_chart()
        assert "MED ratio" in chart and "runtime ratio" in chart

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ConfigurationError):
            run_fig4(benchmarks=["nope"], n_inputs=6)


class TestAblations:
    def test_stop_ablation_variants(self):
        rows = run_stop_ablation(
            n_inputs=6, n_instances=2, fixed_budgets=(100,),
            solver=TINY_SOLVER,
        )
        variants = {row.variant for row in rows}
        assert variants == {"dynamic", "fixed-100"}
        fixed = [r for r in rows if r.variant == "fixed-100"]
        assert all(r.n_iterations == 100 for r in fixed)

    def test_heuristic_ablation_variants(self):
        rows = run_heuristic_ablation(
            n_inputs=6, n_instances=2, solver=TINY_SOLVER
        )
        variants = {row.variant for row in rows}
        assert variants == {
            "intervention", "no-intervention", "no-symmetry-init",
            "intervention+polish",
        }

    def test_polish_never_worse_per_instance(self):
        rows = run_heuristic_ablation(
            n_inputs=6, n_instances=3, solver=TINY_SOLVER
        )
        by_instance = {}
        for row in rows:
            by_instance.setdefault(row.instance, {})[row.variant] = row
        for variants in by_instance.values():
            assert (
                variants["intervention+polish"].objective
                <= variants["intervention"].objective + 1e-9
            )


class TestMethodSpecs:
    def test_ba_method_runs(self):
        result = run_table1(
            mode="joint",
            methods=[ba_method(n_moves=50)],
            n_inputs=6,
            n_partitions=1,
            n_rounds=1,
            functions=["erf"],
        )
        assert result.rows[0].method == "ba"
