"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.boolean.partition import InputPartition
from repro.boolean.truth_table import TruthTable


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator, fresh per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_table(rng) -> TruthTable:
    """A random 5-input, 3-output table with a random distribution."""
    probabilities = rng.random(32)
    return TruthTable.random(5, 3, rng, probabilities / probabilities.sum())


@pytest.fixture
def small_partition() -> InputPartition:
    """A canonical 2/3 partition of 5 variables."""
    return InputPartition(free=(0, 1), bound=(2, 3, 4), n_inputs=5)


@pytest.fixture
def square_table() -> TruthTable:
    """The deterministic 6-input squaring table used by integration tests."""
    return TruthTable.from_integer_function(
        lambda x: (x * x) % 64, n_inputs=6, n_outputs=6
    )
