"""Tests for :mod:`repro.lut.cascade` and :mod:`repro.lut.cost`."""

import numpy as np
import pytest

from repro.baselines.dalta import DaltaHeuristicSolver
from repro.baselines.framework import BaselineDecomposer
from repro.boolean.decomposition import RowSetting, RowType
from repro.boolean.partition import InputPartition
from repro.boolean.random_functions import random_partition
from repro.boolean.truth_table import TruthTable
from repro.core.config import CoreSolverConfig, FrameworkConfig
from repro.core.framework import IsingDecomposer
from repro.errors import DecompositionError, DimensionError
from repro.lut import (
    LutCascadeDesign,
    build_cascade_design,
    cascade_cost_report,
    flat_lut_bits,
    row_component,
)


def fast_config(**overrides):
    base = dict(
        mode="joint", free_size=2, n_partitions=3, n_rounds=1, seed=0,
        solver=CoreSolverConfig(max_iterations=300, n_replicas=2),
    )
    base.update(overrides)
    return FrameworkConfig(**base)


@pytest.fixture(scope="module")
def demo_table():
    return TruthTable.from_integer_function(
        lambda x: (x * 5 + 2) % 32, n_inputs=5, n_outputs=5
    )


class TestRowComponent:
    def test_row_types_realized(self):
        w = InputPartition((0,), (1, 2), 3)
        setting = RowSetting(
            pattern=np.array([1, 0, 1, 1]),
            row_types=np.array([RowType.PATTERN, RowType.COMPLEMENT]),
        )
        component = row_component(w, setting)
        # phi = V; F(phi, row 0) = phi, F(phi, row 1) = 1 - phi
        assert np.array_equal(component.phi, [1, 0, 1, 1])
        assert np.array_equal(component.f_table[:, 0], [0, 1])
        assert np.array_equal(component.f_table[:, 1], [1, 0])

    def test_matches_reconstruction(self, rng):
        w = random_partition(5, 2, rng)
        pattern = rng.integers(0, 2, w.n_cols, dtype=np.uint8)
        types = rng.integers(0, 4, w.n_rows).astype(np.int8)
        setting = RowSetting(pattern, types)
        component = row_component(w, setting)
        matrix = setting.reconstruct()
        vector = component.to_truth_vector()
        for idx in range(32):
            row, col = w.cell_of_index(idx)
            assert vector[idx] == matrix[row, col]

    def test_shape_mismatch(self, rng):
        w = random_partition(5, 2, rng)
        setting = RowSetting(
            np.zeros(4, dtype=np.uint8), np.zeros(2, dtype=np.int8)
        )
        with pytest.raises(DecompositionError):
            row_component(w, setting)


class TestBuildCascadeDesign:
    def test_from_ising_result(self, demo_table):
        result = IsingDecomposer(fast_config()).decompose(demo_table)
        design = build_cascade_design(result)
        rebuilt = design.to_truth_table()
        assert np.array_equal(rebuilt.outputs, result.approx.outputs)

    def test_from_baseline_result(self, demo_table):
        result = BaselineDecomposer(
            DaltaHeuristicSolver(), fast_config()
        ).decompose(demo_table)
        design = build_cascade_design(result)
        rebuilt = design.to_truth_table()
        assert np.array_equal(rebuilt.outputs, result.approx.outputs)

    def test_evaluate_word(self, demo_table):
        result = IsingDecomposer(fast_config()).decompose(demo_table)
        design = build_cascade_design(result)
        indices = np.arange(32)
        assert np.array_equal(
            design.evaluate_word(indices), result.approx.words
        )

    def test_missing_output_rejected(self, demo_table):
        result = IsingDecomposer(fast_config()).decompose(demo_table)
        design = build_cascade_design(result)
        partial = dict(design.components)
        partial.pop(0)
        with pytest.raises(DecompositionError):
            LutCascadeDesign(partial, 5, 5)

    def test_wrong_input_width_rejected(self, demo_table, rng):
        result = IsingDecomposer(fast_config()).decompose(demo_table)
        design = build_cascade_design(result)
        with pytest.raises(DecompositionError):
            LutCascadeDesign(design.components, 6, 5)


class TestCost:
    def test_flat_lut_bits(self):
        assert flat_lut_bits(5, 1) == 32
        assert flat_lut_bits(16, 16) == 16 * 65536
        with pytest.raises(DimensionError):
            flat_lut_bits(-1, 2)
        with pytest.raises(DimensionError):
            flat_lut_bits(4, 0)

    def test_cost_report(self, demo_table):
        result = IsingDecomposer(fast_config()).decompose(demo_table)
        design = build_cascade_design(result)
        report = cascade_cost_report(design)
        assert report.flat_bits == 160
        assert report.cascade_bits == design.total_bits
        assert report.compression_ratio > 1.0
        # at this size sqrt(8)+sqrt(8) == sqrt(32): the heuristic ties
        assert report.relative_access_cost <= 1.0
        assert len(report.per_output_bits) == 5
        assert "x smaller" in str(report)

    def test_fig1_numbers(self):
        """Fig. 1: a 5-input function, bound {x1,x2,x3}, free {x4,x5}
        drops from 32 bits to 16 bits (2x)."""
        assert flat_lut_bits(5, 1) == 32
        w = InputPartition(free=(3, 4), bound=(0, 1, 2), n_inputs=5)
        # cascade: 2^3 phi bits + 2 * 2^2 F bits = 16
        assert w.n_cols + 2 * w.n_rows == 16
