"""Tests for lossless multi-level refinement (:mod:`repro.lut.multilevel`)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolean.random_functions import random_column_setting
from repro.core import CoreSolverConfig, FrameworkConfig, IsingDecomposer
from repro.errors import DecompositionError
from repro.lut import build_cascade_design
from repro.lut.multilevel import (
    LutNode,
    decompose_vector_exactly,
    refine_design,
)
from repro.workloads import build_workload


class TestLutNode:
    def test_leaf_evaluates_truth_vector(self):
        node = LutNode(n_inputs=2, table=np.array([0, 1, 1, 0]))
        patterns = np.array([[0, 0], [0, 1], [1, 0], [1, 1]])
        assert np.array_equal(node.evaluate(patterns), [0, 1, 1, 0])
        assert node.storage_bits == 4
        assert node.depth == 1

    def test_inner_node_shapes_checked(self):
        with pytest.raises(DecompositionError):
            LutNode(
                n_inputs=3, free=(0,), bound=(1,),  # missing variable 2
                phi=LutNode(n_inputs=1, table=np.array([0, 1])),
                f_table=np.zeros((2, 2), dtype=int),
            )

    def test_leaf_length_checked(self):
        with pytest.raises(DecompositionError):
            LutNode(n_inputs=2, table=np.array([0, 1, 0]))

    def test_round_trip_to_truth_vector(self, rng):
        vec = rng.integers(0, 2, 16)
        node = LutNode(n_inputs=4, table=vec)
        assert np.array_equal(node.to_truth_vector(), vec)


class TestDecomposeVectorExactly:
    def test_non_decomposable_stays_leaf(self):
        # parity is not disjoint-decomposable into strictly smaller LUTs
        # with a storage win at 4 inputs? parity IS decomposable:
        # xor(a, xor(b, xor(c, d))) — use a known hard function instead:
        rng = np.random.default_rng(5)
        # random functions of 4 inputs are almost surely not decomposable
        for _ in range(3):
            vec = rng.integers(0, 2, 16)
            node = decompose_vector_exactly(vec, min_inputs=4)
            assert np.array_equal(node.to_truth_vector(), vec)

    def test_parity_decomposes_recursively(self):
        n = 6
        codes = np.arange(1 << n)
        parity = np.zeros(1 << n, dtype=np.uint8)
        for shift in range(n):
            parity ^= ((codes >> shift) & 1).astype(np.uint8)
        node = decompose_vector_exactly(parity, min_inputs=2)
        assert np.array_equal(node.to_truth_vector(), parity)
        # parity of 6 inputs collapses to a chain far below 64 bits
        assert node.storage_bits < 64
        assert node.depth >= 2

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_constructed_decomposable_vector_shrinks(self, seed):
        """A vector built from a column setting decomposes exactly."""
        rng = np.random.default_rng(seed)
        setting = random_column_setting(4, 16, rng)  # 2 x 4 split, n=6
        matrix = setting.reconstruct()  # (4, 16)
        # lay out as truth vector with free = first 2 vars
        vec = matrix.reshape(-1)
        node = decompose_vector_exactly(vec, min_inputs=3)
        assert np.array_equal(node.to_truth_vector(), vec)
        assert node.storage_bits <= 64

    def test_bad_length_rejected(self):
        with pytest.raises(DecompositionError):
            decompose_vector_exactly(np.zeros(5, dtype=int))


class TestRefineDesign:
    @pytest.fixture(scope="class")
    def flat_design(self):
        workload = build_workload("cos", n_inputs=8)
        config = FrameworkConfig(
            mode="joint",
            free_size=workload.free_size,
            n_partitions=3,
            n_rounds=1,
            seed=0,
            solver=CoreSolverConfig(max_iterations=400, n_replicas=2),
        )
        result = IsingDecomposer(config).decompose(workload.table)
        return build_cascade_design(result)

    def test_refinement_is_lossless(self, flat_design):
        refined = refine_design(flat_design, min_inputs=3)
        indices = np.arange(1 << flat_design.n_inputs)
        assert np.array_equal(
            refined.evaluate(indices), flat_design.evaluate(indices)
        )

    def test_refinement_never_grows(self, flat_design):
        refined = refine_design(flat_design, min_inputs=3)
        assert refined.total_bits <= flat_design.total_bits
        assert refined.flat_bits == flat_design.flat_bits

    def test_all_outputs_present(self, flat_design):
        refined = refine_design(flat_design)
        assert sorted(refined.components) == list(
            range(flat_design.n_outputs)
        )
