"""Tests for the Verilog emitter, including a behavioral simulation.

The emitted module is pure combinational logic built from ``case``
ROMs; rather than trusting string inspection alone, we *interpret* the
emitted Verilog with a tiny evaluator (parse the case tables back out)
and check bit-exact agreement with the cascade on every input.
"""

import re

import numpy as np
import pytest

from repro.core import CoreSolverConfig, FrameworkConfig, IsingDecomposer
from repro.errors import DimensionError
from repro.lut import build_cascade_design
from repro.lut.verilog import cascade_to_verilog
from repro.workloads import build_workload


@pytest.fixture(scope="module")
def design():
    workload = build_workload("erf", n_inputs=6)
    config = FrameworkConfig(
        mode="joint",
        free_size=workload.free_size,
        n_partitions=3,
        n_rounds=1,
        seed=0,
        solver=CoreSolverConfig(max_iterations=300, n_replicas=2),
    )
    result = IsingDecomposer(config).decompose(workload.table)
    return build_cascade_design(result)


@pytest.fixture(scope="module")
def verilog(design):
    return cascade_to_verilog(design, "erf_lut")


class TestStructure:
    def test_module_header(self, design, verilog):
        assert "module erf_lut (" in verilog
        assert f"input  wire [{design.n_inputs - 1}:0] x," in verilog
        assert f"output reg  [{design.n_outputs - 1}:0] y" in verilog
        assert verilog.rstrip().endswith("endmodule")

    def test_one_phi_rom_per_output(self, design, verilog):
        for k in range(design.n_outputs):
            assert f"reg phi_{k};" in verilog
            assert f"f_pair_{k}" in verilog

    def test_bit_count_comment(self, design, verilog):
        assert f"{design.total_bits} ROM bits" in verilog

    def test_bad_module_name(self, design):
        with pytest.raises(DimensionError):
            cascade_to_verilog(design, "bad name")


def _parse_case_tables(verilog):
    """Extract every `case (sel) ... endcase` as {signal: {addr: value}}."""
    tables = {}
    pattern = re.compile(
        r"case \((\w+)\)(.*?)endcase", re.DOTALL
    )
    entry = re.compile(r"\d+'d(\d+): (\w+(?:\[\d+\])?) = (\d+)'d?(?:b)?(\d+);")
    for match in pattern.finditer(verilog):
        select, body = match.groups()
        for addr, signal, _width, value in entry.findall(
            body.replace("1'b", "1'd")
        ):
            tables.setdefault((select, signal), {})[int(addr)] = int(value)
    return tables


class TestBehavioralEquivalence:
    def test_emitted_roms_match_cascade(self, design, verilog):
        """Interpret the emitted ROMs and replay every input pattern."""
        tables = _parse_case_tables(verilog)
        n = design.n_inputs
        for x in range(1 << n):
            expected = design.evaluate(x)
            for k in range(design.n_outputs):
                component = design.components[k]
                partition = component.partition
                # selector values as the Verilog computes them
                sel_phi = 0
                for v in partition.bound:
                    sel_phi = (sel_phi << 1) | ((x >> (n - 1 - v)) & 1)
                sel_row = 0
                for v in partition.free:
                    sel_row = (sel_row << 1) | ((x >> (n - 1 - v)) & 1)
                phi = tables[(f"sel_phi_{k}", f"phi_{k}")][sel_phi]
                pair = tables[(f"sel_row_{k}", f"f_pair_{k}")][sel_row]
                bit = (pair >> 1) & 1 if phi else pair & 1
                assert bit == expected[k], (x, k)

    def test_phi_rom_contents(self, design, verilog):
        tables = _parse_case_tables(verilog)
        for k in range(design.n_outputs):
            component = design.components[k]
            rom = tables[(f"sel_phi_{k}", f"phi_{k}")]
            assert len(rom) == component.partition.n_cols
            for address, value in rom.items():
                assert value == int(component.phi[address])
