"""Tests for :mod:`repro.serialization` (round trips both frameworks)."""

import json

import numpy as np
import pytest

from repro.baselines.dalta import DaltaHeuristicSolver
from repro.baselines.framework import BaselineDecomposer
from repro.core import CoreSolverConfig, FrameworkConfig, IsingDecomposer
from repro.lut import build_cascade_design
from repro.serialization import (
    SCHEMA_VERSION,
    SerializationError,
    design_from_dict,
    load_design,
    result_to_dict,
    save_design,
)
from repro.workloads import build_workload


def fast_config(workload):
    return FrameworkConfig(
        mode="joint",
        free_size=workload.free_size,
        n_partitions=3,
        n_rounds=1,
        seed=0,
        solver=CoreSolverConfig(max_iterations=300, n_replicas=2),
    )


@pytest.fixture(scope="module")
def ising_result():
    workload = build_workload("cos", n_inputs=6)
    return IsingDecomposer(fast_config(workload)).decompose(workload.table)


@pytest.fixture(scope="module")
def baseline_result():
    workload = build_workload("cos", n_inputs=6)
    return BaselineDecomposer(
        DaltaHeuristicSolver(), fast_config(workload)
    ).decompose(workload.table)


class TestRoundTrip:
    def test_column_design_round_trip(self, ising_result, tmp_path):
        path = tmp_path / "design.json"
        save_design(ising_result, path)
        loaded = load_design(path)
        original = build_cascade_design(ising_result)
        indices = np.arange(64)
        assert np.array_equal(
            loaded.evaluate(indices), original.evaluate(indices)
        )
        assert loaded.total_bits == original.total_bits

    def test_row_design_round_trip(self, baseline_result, tmp_path):
        path = tmp_path / "row.json"
        save_design(baseline_result, path)
        loaded = load_design(path)
        original = build_cascade_design(baseline_result)
        indices = np.arange(64)
        assert np.array_equal(
            loaded.evaluate(indices), original.evaluate(indices)
        )

    def test_json_is_human_readable(self, ising_result, tmp_path):
        path = tmp_path / "design.json"
        save_design(ising_result, path)
        data = json.loads(path.read_text())
        assert data["format"] == "repro-decomposition"
        assert data["n_inputs"] == 6
        assert set(data["components"]) == {str(k) for k in range(6)}

    def test_med_preserved(self, ising_result):
        data = result_to_dict(ising_result)
        assert np.isclose(data["med"], ising_result.med)


class TestValidation:
    def test_wrong_format_rejected(self, ising_result):
        data = result_to_dict(ising_result)
        data["format"] = "something-else"
        with pytest.raises(SerializationError):
            design_from_dict(data)

    def test_unknown_schema_version_rejected(self, ising_result):
        data = result_to_dict(ising_result)
        data["schema_version"] = 99
        with pytest.raises(SerializationError, match="schema_version"):
            design_from_dict(data)

    def test_missing_schema_version_rejected(self, ising_result):
        data = result_to_dict(ising_result)
        del data["schema_version"]
        with pytest.raises(SerializationError, match="schema_version"):
            design_from_dict(data)

    def test_legacy_version_key_still_read(self, ising_result):
        # version-1 documents predate the schema_version key
        data = result_to_dict(ising_result)
        del data["schema_version"]
        data["version"] = 1
        design = design_from_dict(data)
        assert design.n_inputs == ising_result.exact.n_inputs

    def test_documents_declare_current_schema_version(self, ising_result):
        assert result_to_dict(ising_result)["schema_version"] == (
            SCHEMA_VERSION
        )

    def test_corrupt_bits_rejected(self, ising_result):
        data = result_to_dict(ising_result)
        key = next(iter(data["components"]))
        data["components"][key]["pattern1"] = "01x1"
        with pytest.raises(SerializationError):
            design_from_dict(data)

    def test_unknown_kind_rejected(self, ising_result):
        data = result_to_dict(ising_result)
        key = next(iter(data["components"]))
        data["components"][key]["kind"] = "diagonal"
        with pytest.raises(SerializationError):
            design_from_dict(data)

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(SerializationError):
            load_design(path)
