"""Cross-module property-based invariants (hypothesis).

These are the load-bearing identities of the reproduction, stated once
more at the integration level and fuzzed across random functions,
distributions, partitions, and settings:

1. Ising objective == direct error metric (both modes).
2. Theorem 1 <-> Theorem 2 equivalence on arbitrary matrices.
3. Decode(solve(model)) is always a realizable cascade whose measured
   error equals the reported objective.
4. QUBO <-> Ising <-> solver consistency.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolean.boolean_matrix import BooleanMatrix
from repro.boolean.decomposition import (
    column_setting_from_matrix,
    has_column_decomposition,
    has_row_decomposition,
)
from repro.boolean.metrics import error_rate_per_output, mean_error_distance
from repro.boolean.random_functions import (
    random_column_setting,
    random_function,
    random_partition,
)
from repro.boolean.synthesis import (
    apply_column_setting,
    component_from_column_setting,
)
from repro.core.config import CoreSolverConfig
from repro.core.ising_formulation import (
    build_core_cop_model,
    spins_from_setting,
)
from repro.core.solver import CoreCOPSolver
from repro.core.theorem3 import alternating_refinement
from repro.ising.qubo import ising_to_qubo
from repro.ising.solvers import BruteForceSolver

seeds = st.integers(min_value=0, max_value=2**31)


@settings(max_examples=25, deadline=None)
@given(seed=seeds)
def test_objective_metric_identity_under_random_distributions(seed):
    """Invariant 1, fuzzed over modes, shapes, and distributions."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(3, 7))
    m = int(rng.integers(1, 4))
    table = random_function(n, m, rng, random_distribution=True)
    partition = random_partition(n, int(rng.integers(1, n)), rng)
    k = int(rng.integers(0, m))
    setting = random_column_setting(
        partition.n_rows, partition.n_cols, rng
    )
    spins = spins_from_setting(setting)

    separate = build_core_cop_model(table, table, k, partition, "separate")
    approx = apply_column_setting(table, k, partition, setting)
    assert np.isclose(
        separate.objective(spins), error_rate_per_output(table, approx)[k]
    )

    joint = build_core_cop_model(table, table, k, partition, "joint")
    assert np.isclose(
        joint.objective(spins), mean_error_distance(table, approx)
    )


@settings(max_examples=40, deadline=None)
@given(seed=seeds)
def test_theorem_equivalence_on_structured_noise(seed):
    """Invariant 2 on matrices that are 'almost' decomposable — the hard
    region for the checks."""
    rng = np.random.default_rng(seed)
    r, c = int(rng.integers(2, 6)), int(rng.integers(2, 6))
    setting = random_column_setting(r, c, rng)
    matrix = setting.reconstruct()
    flips = int(rng.integers(0, 3))
    for _ in range(flips):
        i, j = rng.integers(0, r), rng.integers(0, c)
        matrix[i, j] ^= 1
    assert has_row_decomposition(matrix) == has_column_decomposition(matrix)


@settings(max_examples=8, deadline=None)
@given(seed=seeds)
def test_solver_output_is_always_realizable(seed):
    """Invariant 3: whatever bSB returns decodes into a cascade whose
    measured error equals the reported objective."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(4, 7))
    table = random_function(n, 2, rng, random_distribution=True)
    partition = random_partition(n, int(rng.integers(1, n)), rng)
    solver = CoreCOPSolver(CoreSolverConfig(max_iterations=300,
                                            n_replicas=2))
    solution = solver.solve(table, table, 1, partition, "separate", rng)

    approx = apply_column_setting(table, 1, partition, solution.setting)
    matrix = BooleanMatrix.from_function(approx, 1, partition)
    assert has_column_decomposition(matrix)
    assert np.isclose(
        solution.objective, error_rate_per_output(table, approx)[1]
    )
    # the cascade agrees with the truth-table route
    component = component_from_column_setting(partition, solution.setting)
    assert np.array_equal(component.to_truth_vector(), approx.component(1))


@settings(max_examples=6, deadline=None)
@given(seed=seeds)
def test_core_cop_brute_force_vs_alternating_bounds(seed):
    """On tiny instances: alternating refinement >= exact optimum, and
    the exact optimum found via brute force on the Ising model matches
    the best achievable metric."""
    rng = np.random.default_rng(seed)
    table = random_function(4, 2, rng)
    partition = random_partition(4, 2, rng)  # r=4, c=4 -> 12 spins
    model = build_core_cop_model(table, table, 0, partition, "separate")
    exact = BruteForceSolver().solve(model)

    start = random_column_setting(4, 4, rng)
    refined, _, _ = alternating_refinement(model.weights, start)
    refined_objective = model.objective(spins_from_setting(refined))
    assert refined_objective >= exact.objective - 1e-9

    # exact optimum is a valid ER (within [0, 1])
    assert -1e-9 <= exact.objective <= 1.0 + 1e-9


@settings(max_examples=6, deadline=None)
@given(seed=seeds)
def test_qubo_route_reaches_same_optimum(seed):
    """Invariant 4: brute-forcing the QUBO form finds the same optimum
    as brute-forcing the Ising form."""
    rng = np.random.default_rng(seed)
    table = random_function(4, 2, rng)
    partition = random_partition(4, 2, rng)
    model = build_core_cop_model(table, table, 1, partition, "separate")
    dense = model.to_dense()
    qubo = ising_to_qubo(dense)

    ising_best = BruteForceSolver().solve(dense).objective
    n = qubo.n_variables
    best = np.inf
    for code in range(1 << n):
        x = np.array([(code >> k) & 1 for k in range(n)], dtype=float)
        best = min(best, float(qubo.value(x)))
    assert np.isclose(best, ising_best)


@settings(max_examples=15, deadline=None)
@given(seed=seeds)
def test_exact_setting_extraction_is_optimal(seed):
    """For an exactly decomposable matrix the extracted setting has zero
    error, and no setting has negative error."""
    rng = np.random.default_rng(seed)
    from repro.boolean.random_functions import (
        random_column_decomposable_matrix,
    )

    matrix, _ = random_column_decomposable_matrix(4, 6, rng)
    extracted = column_setting_from_matrix(matrix)
    assert extracted.error(matrix) == 0.0
    probe = random_column_setting(4, 6, rng)
    assert probe.error(matrix) >= 0.0
