"""Shard chaos: corrupt one of four shards mid-run, finish on the rest.

The ISSUE acceptance scenario end to end, in-process: a 4-shard
service behind a live gateway, ``shard.corrupt`` armed against one
shard while the worker pool drains the queue.  Jobs on the surviving
shards must complete; the gateway must answer the whole time with
``/healthz`` and the Prometheus exposition naming the degraded shard;
submits routed to the dead shard must get a scoped 503 with
Retry-After; and after ``rebuild_shard`` + ``reset_shard`` the
stranded jobs complete too — with every artifact's design document
byte-identical to an unsharded run of the same specs.
"""

import dataclasses
import json

import pytest

from repro.core import CoreSolverConfig, FrameworkConfig
from repro.errors import GatewayError, ShardUnavailableError
from repro.gateway import DecompositionGateway, GatewayClient, GatewayConfig
from repro.resilience import FaultPlan, FaultRule, fault_injection
from repro.service import (
    DecompositionService,
    JobSpec,
    SchedulerPolicy,
    artifact_key,
    rebuild_shard,
    shard_for_key,
)
from repro.service.shards import shard_db_path
from repro.workloads import build_workload

N_SHARDS = 4

FAST_POLICY = SchedulerPolicy(
    lease_seconds=30.0,
    retry_backoff_seconds=0.01,
    poll_interval_seconds=0.01,
)

TINY = FrameworkConfig(
    mode="joint",
    free_size=2,
    n_partitions=2,
    n_rounds=1,
    seed=7,
    solver=CoreSolverConfig(max_iterations=150, n_replicas=2),
)


def spec_with_seed(seed):
    return JobSpec(
        workload="cos", n_inputs=6,
        config=dataclasses.replace(TINY, seed=seed),
    )


def key_of(spec):
    table = build_workload(spec.workload, n_inputs=spec.n_inputs).table
    return artifact_key(table, spec.config)


def seed_on_shard(shard, start=100):
    """A spec seed whose artifact key hashes onto ``shard``."""
    for seed in range(start, start + 200):
        if shard_for_key(key_of(spec_with_seed(seed)), N_SHARDS) == shard:
            return seed
    raise AssertionError(f"no seed found for shard {shard}")


def canonical(design):
    return json.dumps(design, sort_keys=True)


@pytest.mark.slow
def test_corrupted_shard_mid_run_completes_and_rebuilds(tmp_path):
    specs = [spec_with_seed(seed) for seed in range(6)]

    # -- baseline: the same specs through an unsharded service --------
    baseline = DecompositionService(
        tmp_path / "baseline", n_workers=2, policy=FAST_POLICY
    )
    for spec in specs:
        baseline.submit(spec)
    baseline.run_until_drained(timeout=300)
    baseline_designs = {}
    for job in baseline.jobs():
        assert job.state == "done", (job.id, job.error)
        envelope = baseline.artifacts.get(job.artifact_key)
        baseline_designs[job.artifact_key] = canonical(envelope["design"])

    # -- sharded run with one shard corrupted mid-flight ---------------
    service = DecompositionService(
        tmp_path / "svc", n_workers=2, policy=FAST_POLICY,
        shards=N_SHARDS,
    )
    root = tmp_path / "svc"
    with DecompositionGateway(service, GatewayConfig(port=0)) as gateway:
        client = GatewayClient(gateway.url)
        jobs = [client.submit(spec)[0] for spec in specs]
        by_shard = {}
        for job in jobs:
            index = int(job.id[len("job-s"):len("job-s") + 2])
            by_shard.setdefault(index, []).append(job)
        victim = min(by_shard)  # deterministic pick with jobs on it
        victims = by_shard[victim]
        survivors = [
            job for index, group in by_shard.items() if index != victim
            for job in group
        ]
        assert victims and survivors

        plan = FaultPlan(
            [FaultRule(site="shard.corrupt", probability=1.0,
                       match=f"{victim}:")],
            seed=1234,
        )
        with fault_injection(plan):
            pool = service.serve_forever()
            try:
                for job in survivors:
                    record = client.wait(job.id, timeout_seconds=120)
                    assert record.state == "done", (job.id, record.error)

                # the dead shard is visible the whole time: healthz ...
                health = client.healthz()
                assert health["status"] == "degraded"
                assert health["shards"]["total"] == N_SHARDS
                assert victim in health["shards"]["degraded"]
                # ... and the Prometheus exposition
                metrics = client.metrics_text()
                assert f"repro_service_shard{victim:02d}_up 0" in metrics
                assert "repro_service_shards_degraded 1" in metrics
                up = [
                    index for index in range(N_SHARDS) if index != victim
                ]
                for index in up:
                    assert (
                        f"repro_service_shard{index:02d}_up 1" in metrics
                    )

                # a submit routed to the dead shard: scoped 503, not a
                # whole-service outage
                with pytest.raises(GatewayError) as info:
                    client.submit(
                        spec_with_seed(seed_on_shard(victim))
                    )
                assert info.value.status == 503
                assert info.value.retry_after is not None

                # the victim's own jobs are stranded behind the open
                # circuit (a read is scoped-unavailable, not lost)
                for job in victims:
                    with pytest.raises(ShardUnavailableError):
                        service.store.get(job.id)
            finally:
                pool.stop()

        # -- rebuild the lost shard from journal + artifacts -----------
        path = shard_db_path(root, victim, N_SHARDS)
        for suffix in ("", "-wal", "-shm"):
            sidecar = path.with_name(path.name + suffix)
            if sidecar.exists():
                sidecar.unlink()
        report = rebuild_shard(root, victim)
        assert report["restored"] == len(victims)
        assert report["requeued"] == len(victims)

        service.store.reset_shard(victim)
        assert service.store.degraded_shards() == []
        health = client.healthz()
        assert health["status"] == "ok"

        pool = service.serve_forever()
        try:
            for job in victims:
                record = client.wait(job.id, timeout_seconds=120)
                assert record.state == "done", (job.id, record.error)
        finally:
            pool.stop()

    # -- every artifact byte-identical to the unsharded run ------------
    sharded_designs = {}
    for job in service.jobs():
        assert job.state == "done"
        envelope = service.artifacts.get(job.artifact_key)
        sharded_designs[job.artifact_key] = canonical(envelope["design"])
    assert sharded_designs == baseline_designs
