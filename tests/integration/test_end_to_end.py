"""End-to-end integration: workloads -> decomposition -> LUT cascade.

These tests exercise the whole pipeline the way a user would, on small
but real workload instances, and cross-check the core method against
every baseline on identical configurations.
"""

import numpy as np
import pytest

from repro.analysis.experiments import dalta_ilp_method, proposed_method
from repro.baselines.dalta import DaltaHeuristicSolver
from repro.baselines.framework import BaselineDecomposer
from repro.boolean.metrics import (
    max_error_distance,
    mean_error_distance,
)
from repro.core.config import CoreSolverConfig, FrameworkConfig
from repro.core.framework import IsingDecomposer
from repro.lut import build_cascade_design, cascade_cost_report
from repro.workloads import build_workload

SOLVER = CoreSolverConfig(max_iterations=500, n_replicas=3)


def config_for(workload, **overrides):
    base = dict(
        mode="joint",
        free_size=workload.free_size,
        n_partitions=4,
        n_rounds=1,
        seed=0,
        solver=SOLVER,
    )
    base.update(overrides)
    return FrameworkConfig(**base)


@pytest.mark.parametrize("name", ["cos", "exp", "multiplier"])
def test_pipeline_produces_working_cascade(name):
    workload = build_workload(name, n_inputs=8)
    result = IsingDecomposer(config_for(workload)).decompose(workload.table)
    design = build_cascade_design(result)

    # the cascade implements the approximation bit-exactly
    assert np.array_equal(
        design.to_truth_table().outputs, result.approx.outputs
    )
    # and its accuracy against the exact workload matches the report
    assert np.isclose(
        mean_error_distance(workload.table, design.to_truth_table()),
        result.med,
    )
    report = cascade_cost_report(design)
    assert report.compression_ratio > 1.0


def test_proposed_core_solver_competitive_per_cop():
    """The paper's algorithmic claim, tested where it is well-posed: on
    *identical* core-COP instances (same partition, same weights — the
    row and column parameterizations describe the same approximation
    family), the bSB solver should match or beat the DALTA heuristic on
    most instances and never lose badly in aggregate."""
    import numpy as np

    from repro.baselines.dalta import DaltaHeuristicSolver
    from repro.boolean.random_functions import random_partition
    from repro.core.ising_formulation import build_core_cop_model
    from repro.core.solver import CoreCOPSolver

    rng = np.random.default_rng(7)
    solver = CoreCOPSolver(CoreSolverConfig(max_iterations=2000,
                                            n_replicas=6))
    dalta = DaltaHeuristicSolver()
    ours, theirs = [], []
    for name in ("tan", "exp", "denoise"):
        workload = build_workload(name, n_inputs=7)
        for trial in range(3):
            partition = random_partition(7, workload.free_size, rng)
            model = build_core_cop_model(
                workload.table, workload.table,
                workload.table.n_outputs - 1, partition, "joint",
            )
            constant = model.offset - model.weights.sum() / 2
            theirs.append(
                dalta.solve_weights(model.weights, constant, rng).objective
            )
            ours.append(
                solver.solve_model(
                    model, np.random.default_rng(trial)
                ).objective
            )
    # bSB ties or wins on the vast majority of instances; DALTA's
    # structural candidate pool occasionally contains a global optimum
    # that local dynamics miss (documented in EXPERIMENTS.md), so the
    # aggregate bound leaves room for one such instance.
    ours_total, theirs_total = sum(ours), sum(theirs)
    assert ours_total <= theirs_total * 1.3 + 0.5
    wins = sum(o <= t + 1e-12 for o, t in zip(ours, theirs))
    assert wins >= (2 * len(ours)) // 3


@pytest.mark.slow
def test_proposed_vs_ilp_reference():
    """DALTA-ILP with a generous budget is the accuracy reference; the
    proposed solver should come close on a small instance."""
    workload = build_workload("erf", n_inputs=6)
    config = config_for(workload, n_partitions=2)
    ilp = dalta_ilp_method(time_limit=20.0).run(workload.table, config)
    ours = proposed_method(SOLVER).run(workload.table, config)
    assert ours.med <= ilp.med * 1.5 + 0.5


def test_distribution_aware_decomposition():
    """Concentrating input mass must steer errors off the hot inputs."""
    rng = np.random.default_rng(0)
    workload = build_workload("ln", n_inputs=7)
    hot = rng.integers(0, 128, size=16)
    probabilities = np.full(128, 1e-6)
    probabilities[hot] = 1.0
    weighted = workload.table.with_probabilities(probabilities)

    result = IsingDecomposer(config_for(workload)).decompose(weighted)
    uniform_result = IsingDecomposer(config_for(workload)).decompose(
        workload.table
    )
    # weighted MED of the weighted run should beat the uniform run
    # evaluated under the same weighted distribution
    weighted_med_of_uniform = mean_error_distance(
        weighted, uniform_result.approx
    )
    assert result.med <= weighted_med_of_uniform + 1e-9


def test_joint_mode_controls_worst_case_better():
    """Joint mode weights MSBs by 2^k, keeping the max ED in check."""
    workload = build_workload("inversek2j", n_inputs=8)
    joint = IsingDecomposer(config_for(workload)).decompose(workload.table)
    worst = max_error_distance(workload.table, joint.approx)
    # the MSB (weight 128) must not be wrecked: worst-case below half range
    assert worst < (1 << workload.table.n_outputs) // 2


def test_row_and_column_frameworks_report_same_cost_model():
    workload = build_workload("cos", n_inputs=8)
    column = IsingDecomposer(config_for(workload)).decompose(workload.table)
    row = BaselineDecomposer(
        DaltaHeuristicSolver(), config_for(workload)
    ).decompose(workload.table)
    assert column.flat_lut_bits == row.flat_lut_bits
    assert column.total_lut_bits == row.total_lut_bits
