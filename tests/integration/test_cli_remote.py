"""CLI ``--remote`` mode: submit/status/fetch through a live gateway.

The same subcommands that drive a local service directory must work
against a gateway URL and print through the same rendering code — the
fetched design JSON is byte-identical to the local ``fetch`` output.
"""

import json

import pytest

from repro.cli import main
from repro.gateway import DecompositionGateway, GatewayConfig
from repro.serialization import load_design
from repro.service import DecompositionService, SchedulerPolicy

FAST = [
    "--partitions", "2",
    "--rounds", "1",
    "--max-iterations", "200",
    "--replicas", "2",
]


@pytest.fixture(scope="module")
def live_gateway(tmp_path_factory):
    """A drained service with one finished cos job, behind a gateway."""
    root = tmp_path_factory.mktemp("remote") / "svc"
    service = DecompositionService(
        root,
        n_workers=2,
        policy=SchedulerPolicy(
            lease_seconds=30.0,
            retry_backoff_seconds=0.01,
            poll_interval_seconds=0.01,
        ),
    )
    gateway = DecompositionGateway(service, GatewayConfig(port=0))
    gateway.start()
    yield service, gateway
    gateway.stop()


def test_submit_serve_status_fetch_round_trip(live_gateway, tmp_path,
                                              capsys):
    service, gateway = live_gateway
    code = main(
        ["submit", "--remote", gateway.url,
         "--workload", "cos", "--n-inputs", "6", *FAST]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "submitted job-" in out
    job_id = out.split()[1].rstrip(":")

    # resubmission dedups instead of double-queueing
    code = main(
        ["submit", "--remote", gateway.url,
         "--workload", "cos", "--n-inputs", "6", *FAST]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "deduplicated" in out
    assert job_id in out

    service.run_until_drained(timeout=120)

    code = main(["status", "--remote", gateway.url])
    out = capsys.readouterr().out
    assert code == 0
    assert job_id in out
    assert "done" in out

    code = main(["status", "--remote", gateway.url, "--json"])
    summary = json.loads(capsys.readouterr().out)
    assert code == 0
    assert summary["jobs"]["done"] == 1

    code = main(["status", "--remote", gateway.url, "--prometheus"])
    out = capsys.readouterr().out
    assert code == 0
    assert "repro_service_jobs_done" in out

    remote_path = tmp_path / "remote.json"
    code = main(["fetch", "--remote", gateway.url,
                 "--job", job_id, "--out", str(remote_path)])
    assert code == 0
    capsys.readouterr()
    design = load_design(remote_path)
    assert design.n_inputs == 6

    # byte-identical to the local fetch of the same job
    local_path = tmp_path / "local.json"
    code = main(["fetch", "--service-dir", str(service.root),
                 "--job", job_id, "--out", str(local_path)])
    assert code == 0
    capsys.readouterr()
    assert remote_path.read_bytes() == local_path.read_bytes()


def test_target_validation_errors(live_gateway, tmp_path, capsys):
    _, gateway = live_gateway
    # neither target
    code = main(["status"])
    err = capsys.readouterr().err
    assert code == 1
    assert "--service-dir" in err and "--remote" in err
    # both targets
    code = main(["status", "--remote", gateway.url,
                 "--service-dir", str(tmp_path)])
    err = capsys.readouterr().err
    assert code == 1
    assert "exactly one" in err


def test_remote_connection_error_is_clean(capsys):
    code = main(["status", "--remote", "http://127.0.0.1:9",
                 "--json"])
    err = capsys.readouterr().err
    assert code == 1
    assert err.startswith("error:")


def test_list_solvers(capsys):
    code = main(["list-solvers"])
    out = capsys.readouterr().out
    assert code == 0
    assert "bsb" in out
    assert "probes" in out
    assert "aliases: pt" in out
