"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.serialization import load_design


@pytest.fixture(scope="module")
def saved_design(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "cos.json"
    code = main(
        [
            "decompose",
            "--workload", "cos",
            "--n-inputs", "6",
            "--partitions", "2",
            "--rounds", "1",
            "--max-iterations", "300",
            "--replicas", "2",
            "--out", str(path),
        ]
    )
    assert code == 0
    return path


class TestDecompose:
    def test_writes_loadable_design(self, saved_design):
        design = load_design(saved_design)
        assert design.n_inputs == 6
        assert design.n_outputs == 6

    def test_output_message(self, saved_design, capsys):
        # the fixture already ran; re-run to capture output deterministically
        code = main(
            [
                "decompose",
                "--workload", "erf",
                "--n-inputs", "6",
                "--partitions", "1",
                "--rounds", "1",
                "--max-iterations", "200",
                "--replicas", "2",
                "--out", str(saved_design.parent / "erf.json"),
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "MED" in captured.out
        assert "cascade bits" in captured.out


class TestEvaluate:
    def test_reports_metrics(self, saved_design, capsys):
        code = main(
            [
                "evaluate",
                "--design", str(saved_design),
                "--workload", "cos",
                "--n-inputs", "6",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "MED:" in captured.out
        assert "error rate:" in captured.out

    def test_shape_mismatch_is_an_error(self, saved_design, capsys):
        code = main(
            [
                "evaluate",
                "--design", str(saved_design),
                "--workload", "cos",
                "--n-inputs", "8",
            ]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestExportVerilog:
    def test_stdout(self, saved_design, capsys):
        code = main(
            ["export-verilog", "--design", str(saved_design),
             "--module", "cos_lut"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "module cos_lut (" in captured.out
        assert captured.out.rstrip().endswith("endmodule")

    def test_file_output(self, saved_design, tmp_path, capsys):
        out = tmp_path / "cos.v"
        code = main(
            [
                "export-verilog",
                "--design", str(saved_design),
                "--out", str(out),
            ]
        )
        assert code == 0
        assert out.exists()
        assert "endmodule" in out.read_text()


class TestMisc:
    def test_list_workloads(self, capsys):
        assert main(["list-workloads"]) == 0
        out = capsys.readouterr().out.split()
        assert len(out) == 10
        assert "cos" in out and "multiplier" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
