"""Tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.serialization import load_design

FAST = [
    "--partitions", "2",
    "--rounds", "1",
    "--max-iterations", "200",
    "--replicas", "2",
]


@pytest.fixture(scope="module")
def saved_design(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "cos.json"
    code = main(
        [
            "decompose",
            "--workload", "cos",
            "--n-inputs", "6",
            "--partitions", "2",
            "--rounds", "1",
            "--max-iterations", "300",
            "--replicas", "2",
            "--out", str(path),
        ]
    )
    assert code == 0
    return path


class TestDecompose:
    def test_writes_loadable_design(self, saved_design):
        design = load_design(saved_design)
        assert design.n_inputs == 6
        assert design.n_outputs == 6

    def test_output_message(self, saved_design, capsys):
        # the fixture already ran; re-run to capture output deterministically
        code = main(
            [
                "decompose",
                "--workload", "erf",
                "--n-inputs", "6",
                "--partitions", "1",
                "--rounds", "1",
                "--max-iterations", "200",
                "--replicas", "2",
                "--out", str(saved_design.parent / "erf.json"),
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "MED" in captured.out
        assert "cascade bits" in captured.out


class TestEvaluate:
    def test_reports_metrics(self, saved_design, capsys):
        code = main(
            [
                "evaluate",
                "--design", str(saved_design),
                "--workload", "cos",
                "--n-inputs", "6",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "MED:" in captured.out
        assert "error rate:" in captured.out

    def test_shape_mismatch_is_an_error(self, saved_design, capsys):
        code = main(
            [
                "evaluate",
                "--design", str(saved_design),
                "--workload", "cos",
                "--n-inputs", "8",
            ]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestExportVerilog:
    def test_stdout(self, saved_design, capsys):
        code = main(
            ["export-verilog", "--design", str(saved_design),
             "--module", "cos_lut"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "module cos_lut (" in captured.out
        assert captured.out.rstrip().endswith("endmodule")

    def test_file_output(self, saved_design, tmp_path, capsys):
        out = tmp_path / "cos.v"
        code = main(
            [
                "export-verilog",
                "--design", str(saved_design),
                "--out", str(out),
            ]
        )
        assert code == 0
        assert out.exists()
        assert "endmodule" in out.read_text()


class TestMisc:
    def test_list_workloads(self, capsys):
        assert main(["list-workloads"]) == 0
        out = capsys.readouterr().out.split()
        assert len(out) == 10
        assert "cos" in out and "multiplier" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestObservability:
    """--version, --trace-out, trace report, status --prometheus."""

    @pytest.fixture(scope="class")
    def traced(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("obs")
        trace = root / "run.trace.json"
        code = main(
            ["decompose", "--workload", "cos", "--n-inputs", "4",
             *FAST, "--out", str(root / "cos.json"),
             "--trace-out", str(trace)]
        )
        assert code == 0
        return trace

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_trace_out_writes_chrome_trace(self, traced):
        payload = json.loads(traced.read_text())
        assert isinstance(payload["traceEvents"], list)
        assert payload["traceEvents"]
        assert {e["ph"] for e in payload["traceEvents"]} <= {"X", "i"}
        assert payload["otherData"]["format"] == "repro-trace"
        assert payload["otherData"]["workload"] == "cos"

    def test_trace_report_renders_stage_breakdown(self, traced, capsys):
        assert main(["trace", "report", str(traced)]) == 0
        out = capsys.readouterr().out
        assert "stage time breakdown" in out
        assert "sb_solve" in out
        assert "stop iteration histogram" in out

    def test_trace_report_json(self, traced, capsys):
        assert main(["trace", "report", str(traced), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["solver"]["runs"] > 0
        assert "sb_solve" in summary["stages"]

    def test_trace_report_missing_file_is_clean_error(self, capsys,
                                                      tmp_path):
        code = main(["trace", "report", str(tmp_path / "missing.json")])
        captured = capsys.readouterr()
        assert code == 1
        assert captured.err.startswith("error:")

    def test_trace_report_corrupt_file_is_clean_error(self, capsys,
                                                      tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        code = main(["trace", "report", str(bad)])
        captured = capsys.readouterr()
        assert code == 1
        assert captured.err.startswith("error:")
        assert "Traceback" not in captured.err

    def test_status_prometheus(self, tmp_path, capsys):
        root = tmp_path / "svc"
        assert main(
            ["submit", "--service-dir", str(root),
             "--workload", "cos", "--n-inputs", "4", *FAST]
        ) == 0
        assert main(["serve", "--service-dir", str(root)]) == 0
        capsys.readouterr()
        assert main(
            ["status", "--service-dir", str(root), "--prometheus"]
        ) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_service_jobs_done gauge" in out
        assert "repro_service_jobs_done 1" in out
        assert "repro_service_queue_depth 0" in out

    def test_serve_trace_out(self, tmp_path, capsys):
        root = tmp_path / "svc"
        trace = tmp_path / "svc.trace.jsonl"
        assert main(
            ["submit", "--service-dir", str(root),
             "--workload", "erf", "--n-inputs", "4", *FAST]
        ) == 0
        assert main(
            ["serve", "--service-dir", str(root),
             "--trace-out", str(trace)]
        ) == 0
        capsys.readouterr()
        lines = trace.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["type"] == "header"
        names = {json.loads(line)["name"] for line in lines[1:]}
        assert {"job", "job_claimed", "job_completed"} <= names
        assert main(["trace", "report", str(trace)]) == 0
        assert "solver runs" in capsys.readouterr().out


class TestErrorExitCodes:
    """Every failure is one line on stderr + non-zero exit, never a
    traceback."""

    def test_unknown_workload_is_clean_error(self, capsys, tmp_path):
        code = main(
            ["decompose", "--workload", "nope", "--n-inputs", "6",
             "--out", str(tmp_path / "x.json")]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert captured.err.startswith("error:")
        assert "Traceback" not in captured.err

    def test_missing_design_file_is_clean_error(self, capsys, tmp_path):
        code = main(
            ["evaluate", "--design", str(tmp_path / "missing.json"),
             "--workload", "cos", "--n-inputs", "6"]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert captured.err.startswith("error:")

    def test_corrupt_design_is_clean_error(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        code = main(
            ["export-verilog", "--design", str(bad)]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert captured.err.startswith("error:")
        assert "Traceback" not in captured.err

    def test_unknown_schema_version_is_clean_error(self, capsys,
                                                   saved_design, tmp_path):
        data = json.loads(saved_design.read_text())
        data["schema_version"] = 99
        stale = tmp_path / "stale.json"
        stale.write_text(json.dumps(data))
        code = main(
            ["evaluate", "--design", str(stale),
             "--workload", "cos", "--n-inputs", "6"]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "schema_version" in captured.err

    def test_invalid_config_is_clean_error(self, capsys, tmp_path):
        code = main(
            ["decompose", "--workload", "cos", "--n-inputs", "6",
             "--partitions", "-1", "--out", str(tmp_path / "x.json")]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert captured.err.startswith("error:")

    def test_fetch_unknown_job_is_clean_error(self, capsys, tmp_path):
        code = main(
            ["fetch", "--service-dir", str(tmp_path / "svc"),
             "--job", "job-doesnotexist"]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert captured.err.startswith("error:")


class TestServiceCommands:
    """submit -> serve -> status -> fetch over one service directory."""

    @pytest.fixture(scope="class")
    def service_dir(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("svc")
        for _ in range(2):  # exact duplicate: must dedup via the cache
            code = main(
                ["submit", "--service-dir", str(root),
                 "--workload", "cos", "--n-inputs", "6", *FAST]
            )
            assert code == 0
        assert main(
            ["serve", "--service-dir", str(root), "--workers", "2"]
        ) == 0
        return root

    def test_submit_reports_job_and_key(self, service_dir, capsys):
        code = main(
            ["submit", "--service-dir", str(service_dir),
             "--workload", "cos", "--n-inputs", "6", *FAST]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "submitted job-" in captured.out
        assert "artifact cached" in captured.out  # duplicate of drained job
        # drain the extra submission so later assertions see a quiet queue
        assert main(["serve", "--service-dir", str(service_dir)]) == 0

    def test_status_table_and_summary(self, service_dir, capsys):
        assert main(["status", "--service-dir", str(service_dir)]) == 0
        out = capsys.readouterr().out
        assert "done" in out
        assert "cache hit rate:" in out

    def test_status_json_summary(self, service_dir, capsys):
        assert main(
            ["status", "--service-dir", str(service_dir), "--json"]
        ) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["jobs"]["failed"] == 0
        assert summary["jobs"]["done"] >= 2
        assert summary["cache"]["hits"] >= 1  # the duplicate deduped

    def test_fetch_writes_evaluable_design(self, service_dir, tmp_path,
                                           capsys):
        from repro.service import DecompositionService

        job = DecompositionService(service_dir).jobs("done")[0]
        out = tmp_path / "fetched.json"
        code = main(
            ["fetch", "--service-dir", str(service_dir),
             "--job", job.id, "--out", str(out)]
        )
        assert code == 0
        design = load_design(out)
        assert design.n_inputs == 6
        capsys.readouterr()
        assert main(
            ["evaluate", "--design", str(out),
             "--workload", "cos", "--n-inputs", "6"]
        ) == 0
        assert "MED:" in capsys.readouterr().out
