"""The public API surface: imports, __all__, and the examples."""

import importlib
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"

PACKAGES = [
    "repro",
    "repro.analysis",
    "repro.baselines",
    "repro.boolean",
    "repro.core",
    "repro.ilp",
    "repro.ising",
    "repro.ising.solvers",
    "repro.lut",
    "repro.workloads",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_all_exports_resolve(name):
    module = importlib.import_module(name)
    assert hasattr(module, "__all__")
    for symbol in module.__all__:
        assert hasattr(module, symbol), f"{name}.{symbol} missing"


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2


def test_top_level_docstring_mentions_paper():
    import repro

    assert "Ising" in repro.__doc__
    assert "DAC 2024" in repro.__doc__


@pytest.mark.slow
@pytest.mark.parametrize(
    "script",
    ["quickstart.py", "custom_function.py", "approximate_lut_design.py",
     "solver_comparison.py", "hardware_export.py"],
)
def test_examples_run_clean(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=900,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()
