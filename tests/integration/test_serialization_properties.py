"""Property-style round-trip tests for :mod:`repro.serialization`.

The artifact store's content-addressed caching rests on serialization
being *lossless*: the document written for a design must reconstruct a
bit-identical evaluable cascade (bits, partitions, settings, MED).
These tests drive the round trip with hypothesis-generated partitions
and settings — column- and row-based — and with real solver results in
both separate and joint mode.
"""

import json
from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolean.decomposition import ColumnSetting, RowSetting
from repro.boolean.partition import InputPartition
from repro.core import CoreSolverConfig, FrameworkConfig, IsingDecomposer
from repro.lut import build_cascade_design
from repro.serialization import (
    design_from_dict,
    load_design,
    result_to_dict,
    save_design,
)
from repro.workloads import build_workload

# -- strategies --------------------------------------------------------


@st.composite
def partitions(draw, min_inputs=2, max_inputs=6):
    """A random disjoint free/bound split of ``n`` inputs."""
    n = draw(st.integers(min_inputs, max_inputs))
    free_count = draw(st.integers(1, n - 1))
    variables = draw(st.permutations(list(range(n))))
    return InputPartition(
        sorted(variables[:free_count]), sorted(variables[free_count:]), n
    )


def bits(length):
    return st.lists(
        st.integers(0, 1), min_size=length, max_size=length
    ).map(lambda values: np.asarray(values, dtype=np.uint8))


@st.composite
def column_components(draw):
    """(partition, ColumnSetting) with matching shapes."""
    partition = draw(partitions())
    return partition, ColumnSetting(
        draw(bits(partition.n_rows)),
        draw(bits(partition.n_rows)),
        draw(bits(partition.n_cols)),
    )


@st.composite
def row_components(draw):
    """(partition, RowSetting) with matching shapes."""
    partition = draw(partitions())
    row_types = draw(
        st.lists(
            st.integers(0, 3),
            min_size=partition.n_rows,
            max_size=partition.n_rows,
        )
    )
    return partition, RowSetting(
        draw(bits(partition.n_cols)), np.asarray(row_types, dtype=np.int8)
    )


def synthetic_result(parts_and_settings, n_inputs):
    """A duck-typed result: one component per (partition, setting)."""
    components = {
        index: SimpleNamespace(
            partition=partition, setting=setting, objective=float(index)
        )
        for index, (partition, setting) in enumerate(parts_and_settings)
    }
    return SimpleNamespace(
        exact=SimpleNamespace(
            n_inputs=n_inputs, n_outputs=len(components)
        ),
        components=components,
        med=1.25,
    )


# -- properties --------------------------------------------------------


class TestSettingRoundTripProperties:
    @given(column_components())
    @settings(max_examples=60, deadline=None)
    def test_column_design_survives_json(self, part_and_setting):
        partition, setting = part_and_setting
        result = synthetic_result([(partition, setting)],
                                  partition.n_inputs)
        document = json.loads(json.dumps(result_to_dict(result)))
        loaded = design_from_dict(document)
        original = build_cascade_design(result)
        indices = np.arange(1 << partition.n_inputs)
        assert np.array_equal(
            loaded.evaluate(indices), original.evaluate(indices)
        )
        assert loaded.total_bits == original.total_bits
        component = loaded.components[0]
        assert list(component.partition.free) == list(partition.free)
        assert list(component.partition.bound) == list(partition.bound)

    @given(row_components())
    @settings(max_examples=60, deadline=None)
    def test_row_design_survives_json(self, part_and_setting):
        partition, setting = part_and_setting
        result = synthetic_result([(partition, setting)],
                                  partition.n_inputs)
        document = json.loads(json.dumps(result_to_dict(result)))
        loaded = design_from_dict(document)
        original = build_cascade_design(result)
        indices = np.arange(1 << partition.n_inputs)
        assert np.array_equal(
            loaded.evaluate(indices), original.evaluate(indices)
        )

    @given(column_components())
    @settings(max_examples=60, deadline=None)
    def test_document_round_trip_is_stable(self, part_and_setting):
        # serializing is deterministic and idempotent at the dict level:
        # the same result always yields the identical document (this is
        # what makes artifact-store writes idempotent across workers)
        partition, setting = part_and_setting
        result = synthetic_result([(partition, setting)],
                                  partition.n_inputs)
        first = json.dumps(result_to_dict(result), sort_keys=True)
        second = json.dumps(result_to_dict(result), sort_keys=True)
        assert first == second

    @given(st.lists(column_components(), min_size=1, max_size=3))
    @settings(max_examples=25, deadline=None)
    def test_multi_component_documents(self, parts_and_settings):
        # normalize all components to one input width (partitions of
        # differing n would describe inconsistent designs)
        n_inputs = parts_and_settings[0][0].n_inputs
        same_width = [
            (partition, setting)
            for partition, setting in parts_and_settings
            if partition.n_inputs == n_inputs
        ]
        result = synthetic_result(same_width, n_inputs)
        loaded = design_from_dict(result_to_dict(result))
        assert loaded.n_outputs == len(same_width)
        assert loaded.total_bits == build_cascade_design(result).total_bits


@pytest.mark.parametrize("mode", ["separate", "joint"])
def test_solver_result_file_round_trip(mode, tmp_path):
    """End-to-end: a real solver run in each mode survives the file."""
    workload = build_workload("tan", n_inputs=6)
    config = FrameworkConfig(
        mode=mode,
        free_size=workload.free_size,
        n_partitions=2,
        n_rounds=1,
        seed=11,
        solver=CoreSolverConfig(max_iterations=200, n_replicas=2),
    )
    result = IsingDecomposer(config).decompose(workload.table)
    path = tmp_path / f"{mode}.json"
    save_design(result, path)
    loaded = load_design(path)
    original = build_cascade_design(result)
    indices = np.arange(64)
    assert np.array_equal(
        loaded.evaluate(indices), original.evaluate(indices)
    )
    document = json.loads(path.read_text())
    assert np.isclose(document["med"], result.med)
    for index, accepted in result.components.items():
        entry = document["components"][str(index)]
        assert entry["partition"]["free"] == list(
            accepted.partition.free
        )
        assert entry["pattern1"] == "".join(
            str(b) for b in accepted.setting.pattern1
        )
