"""``repro status --remote`` surfaces gateway backpressure hints.

A shedding gateway answers 429/503 with a ``Retry-After`` header; the
CLI used to swallow it into a bare error line.  The operator-facing
contract now: the message names the HTTP status and the exact wait.
"""

import pytest

from repro.cli import main
from repro.errors import GatewayError
from repro.gateway.client import GatewayClient


def _raise_backpressure(self):
    raise GatewayError(
        "gateway busy", status=503, retry_after=7.0
    )


def test_status_surfaces_retry_after(monkeypatch, capsys):
    monkeypatch.setattr(GatewayClient, "jobs", _raise_backpressure)
    code = main(["status", "--remote", "http://gateway.invalid"])
    err = capsys.readouterr().err
    assert code == 1
    assert "gateway is shedding load (HTTP 503)" in err
    assert "retry after 7s (Retry-After)" in err


def test_status_without_hint_stays_plain(monkeypatch, capsys):
    def _raise_not_found(self):
        raise GatewayError("job store unreachable", status=404)

    monkeypatch.setattr(GatewayClient, "jobs", _raise_not_found)
    code = main(["status", "--remote", "http://gateway.invalid"])
    err = capsys.readouterr().err
    assert code == 1
    assert "error: job store unreachable" in err
    assert "Retry-After" not in err
