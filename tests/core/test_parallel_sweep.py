"""Tests for the parallel candidate sweep and the weight-term cache.

The sweep's contract is that process-level parallelism is a pure
scheduling choice: chunking and per-chunk RNG spawning are part of the
seeded search definition, so any ``n_workers`` value must reproduce the
``n_workers=1`` run bit for bit.
"""

import numpy as np
import pytest

from repro.boolean.truth_table import TruthTable
from repro.core.batch import BatchedCoreCOPSolver
from repro.core.config import (
    SWEEP_AUTO_CHUNKS,
    CoreSolverConfig,
    FrameworkConfig,
)
from repro.core.framework import IsingDecomposer, _split_chunks
from repro.core.ising_formulation import (
    WeightCache,
    build_core_cop_model,
    linear_error_terms,
)
from repro.errors import ConfigurationError
from repro.ising.structured import BipartiteDecompositionModel


@pytest.fixture
def table():
    return TruthTable.from_integer_function(
        lambda x: (x * 5 + 3) % 16, n_inputs=5, n_outputs=4
    )


def _base_config(**updates):
    cfg = FrameworkConfig(
        mode="joint",
        free_size=2,
        n_partitions=6,
        n_rounds=2,
        seed=123,
        solver=CoreSolverConfig(max_iterations=200),
    )
    return cfg.with_updates(**updates) if updates else cfg


def _assert_identical_results(a, b):
    assert a.med == b.med
    assert sorted(a.components) == sorted(b.components)
    for key in a.components:
        ca, cb = a.components[key], b.components[key]
        assert ca.partition == cb.partition
        assert ca.objective == cb.objective
        assert np.array_equal(ca.setting.pattern1, cb.setting.pattern1)
        assert np.array_equal(ca.setting.pattern2, cb.setting.pattern2)
        assert np.array_equal(
            ca.setting.column_types, cb.setting.column_types
        )


class TestWorkerCountInvariance:
    def test_sequential_vs_four_workers(self, table):
        result1 = IsingDecomposer(_base_config()).decompose(table)
        result4 = IsingDecomposer(
            _base_config(n_workers=4)
        ).decompose(table)
        _assert_identical_results(result1, result4)

    def test_batched_vs_four_workers(self, table):
        result1 = IsingDecomposer(
            _base_config(batched=True)
        ).decompose(table)
        result4 = IsingDecomposer(
            _base_config(batched=True, n_workers=4)
        ).decompose(table)
        _assert_identical_results(result1, result4)

    def test_chunk_size_changes_search_but_stays_deterministic(self, table):
        """chunking is part of the seeded search definition..."""
        small = IsingDecomposer(
            _base_config(sweep_chunk_size=2)
        ).decompose(table)
        again = IsingDecomposer(
            _base_config(sweep_chunk_size=2, n_workers=3)
        ).decompose(table)
        _assert_identical_results(small, again)

    def test_repeat_run_is_deterministic(self, table):
        config = _base_config(n_workers=2)
        first = IsingDecomposer(config).decompose(table)
        second = IsingDecomposer(config).decompose(table)
        _assert_identical_results(first, second)


class TestChunking:
    def test_split_is_a_partition_of_the_input(self):
        items = list(range(17))
        chunks = _split_chunks(items, 5)
        assert len(chunks) == 5
        flattened = [item for chunk in chunks for item in chunk]
        assert flattened == items
        sizes = [len(chunk) for chunk in chunks]
        assert max(sizes) - min(sizes) <= 1

    def test_never_more_chunks_than_items(self):
        assert len(_split_chunks([1, 2], 8)) == 2

    def test_resolved_chunk_count(self):
        cfg = FrameworkConfig()
        assert cfg.resolved_chunk_count(100) == SWEEP_AUTO_CHUNKS
        assert cfg.resolved_chunk_count(3) == 3
        assert cfg.resolved_chunk_count(0) == 0
        sized = FrameworkConfig(sweep_chunk_size=7)
        assert sized.resolved_chunk_count(100) == 15

    def test_invalid_worker_and_chunk_settings_rejected(self):
        with pytest.raises(ConfigurationError):
            FrameworkConfig(n_workers=0)
        with pytest.raises(ConfigurationError):
            FrameworkConfig(sweep_chunk_size=0)


class TestWeightCache:
    def test_cached_terms_bitwise_equal_uncached(self, small_table,
                                                 small_partition):
        cache = WeightCache()
        for mode in ("separate", "joint"):
            weights, constant = cache.terms(
                small_table, small_table, 1, small_partition, mode
            )
            ref_w, ref_c = linear_error_terms(
                small_table, small_table, 1, small_partition, mode
            )
            assert np.array_equal(weights, ref_w)
            assert constant == ref_c
            model = cache.model(
                small_table, small_table, 1, small_partition, mode
            )
            ref_model = build_core_cop_model(
                small_table, small_table, 1, small_partition, mode
            )
            assert np.array_equal(model.weights, ref_model.weights)
            assert model.offset == ref_model.offset

    def test_hit_and_miss_accounting(self, small_table, small_partition):
        cache = WeightCache()
        cache.model(small_table, small_table, 0, small_partition, "joint")
        assert (cache.hits, cache.misses) == (0, 1)
        cache.terms(small_table, small_table, 0, small_partition, "joint")
        assert (cache.hits, cache.misses) == (1, 1)
        cache.model(small_table, small_table, 1, small_partition, "joint")
        assert (cache.hits, cache.misses) == (1, 2)

    def test_invalidate_joint_keeps_separate_entries(
        self, small_table, small_partition
    ):
        cache = WeightCache()
        cache.terms(small_table, small_table, 0, small_partition, "joint")
        cache.terms(
            small_table, small_table, 0, small_partition, "separate"
        )
        assert len(cache) == 2
        cache.invalidate_joint()
        assert len(cache) == 1
        cache.terms(
            small_table, small_table, 0, small_partition, "separate"
        )
        assert (cache.hits, cache.misses) == (1, 2)

    def test_batched_solver_results_unchanged_by_cache(
        self, small_table, small_partition
    ):
        config = CoreSolverConfig(max_iterations=120)
        solver = BatchedCoreCOPSolver(config)
        partitions = [small_partition]
        cold = solver.solve_candidates(
            small_table, small_table, 0, partitions, "joint",
            np.random.default_rng(3),
        )
        cache = WeightCache()
        warm = solver.solve_candidates(
            small_table, small_table, 0, partitions, "joint",
            np.random.default_rng(3), cache=cache,
        )
        assert cache.misses == 1
        assert cold[0].objective == warm[0].objective
        assert np.array_equal(
            cold[0].setting.pattern1, warm[0].setting.pattern1
        )

    def test_framework_cache_is_exercised(self, table):
        decomposer = IsingDecomposer(
            _base_config(prescreen_keep=3)
        )
        decomposer.decompose(table)
        # prescreen builds every model, the sweep re-requests the kept
        # ones — those must be hits, not rebuilds
        assert decomposer._cache.hits > 0


class TestNoDenseMaterialization:
    def test_sweep_never_densifies_structured_models(
        self, table, monkeypatch
    ):
        """The O(2^n * 2^n) dense J must stay out of the solve paths."""

        def _forbidden(self):
            raise AssertionError(
                "BipartiteDecompositionModel.to_dense() reached from a "
                "solve path"
            )

        monkeypatch.setattr(
            BipartiteDecompositionModel, "to_dense", _forbidden
        )
        for updates in ({}, {"batched": True}, {"prescreen_keep": 3}):
            result = IsingDecomposer(
                _base_config(n_rounds=1, **updates)
            ).decompose(table)
            assert sorted(result.components) == [0, 1, 2, 3]
