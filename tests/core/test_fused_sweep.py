"""Fusion-layer tests: prepared sweeps, fused runs, and the gate.

The load-bearing guarantee: advancing several independent float64
sweeps through one :func:`run_prepared_sweeps` call (the fused path the
service batch scheduler uses) is **bit-identical** to advancing each
sweep through its own call.  The :class:`SweepFusionGate` barrier must
preserve that identity under concurrency and degrade gracefully —
early leavers, timeouts, and leader failures never corrupt a sweep.
"""

import threading

import numpy as np
import pytest

from repro.boolean.random_functions import random_function
from repro.core import fusion as fusion_mod
from repro.core.batch import prepare_sweep, run_prepared_sweeps
from repro.core.config import CoreSolverConfig
from repro.core.fusion import SweepFusionGate
from repro.core.partitions import sample_partitions
from repro.obs.probe import RecordingSolverProbe, set_probe_factory

FAST = CoreSolverConfig(max_iterations=300, n_replicas=2)


@pytest.fixture
def rng():
    return np.random.default_rng(19)


def _sweeps(config_seeds, n_inputs=6, free=3, n_partitions=3):
    """Prepare one sweep per (config, seed) pair over a fixed problem."""
    table_rng = np.random.default_rng(2)
    table = random_function(n_inputs, 2, table_rng)
    partitions = sample_partitions(
        n_inputs, free, n_partitions, np.random.default_rng(3)
    )
    return [
        prepare_sweep(
            config, table, table, 0, partitions, "joint",
            rng=np.random.default_rng(seed),
        )
        for config, seed in config_seeds
    ]


def _results(sweep):
    return [
        (
            solution.objective,
            solution.setting.pattern1.tolist(),
            solution.setting.pattern2.tolist(),
            solution.setting.column_types.tolist(),
        )
        for solution in sweep.finalize()
    ]


class TestFusedBitIdentity:
    def test_fused_run_matches_solo_runs_float64(self):
        pairs = [(FAST, 5), (FAST, 6), (FAST, 7)]
        fused = _sweeps(pairs)
        run_prepared_sweeps(fused)

        solo = _sweeps(pairs)
        for sweep in solo:
            run_prepared_sweeps([sweep])

        for f, s in zip(fused, solo):
            assert _results(f) == _results(s)

    def test_fused_run_matches_solo_runs_float32_stack(self):
        cfg = CoreSolverConfig(
            max_iterations=300, n_replicas=2, backend="numpy32"
        )
        pairs = [(cfg, 5), (cfg, 6)]
        fused = _sweeps(pairs)
        run_prepared_sweeps(fused)

        solo = _sweeps(pairs)
        for sweep in solo:
            run_prepared_sweeps([sweep])

        # stacked float32 slices perform the same per-slice IEEE ops,
        # so the end-to-end results are identical here too
        for f, s in zip(fused, solo):
            assert _results(f) == _results(s)

    def test_incompatible_schedules_grouped_separately(self):
        slow = CoreSolverConfig(max_iterations=400, n_replicas=2)
        pairs = [(FAST, 5), (slow, 6)]
        fused = _sweeps(pairs)
        run_prepared_sweeps(fused)
        solo = _sweeps(pairs)
        for sweep in solo:
            run_prepared_sweeps([sweep])
        for f, s in zip(fused, solo):
            assert f.schedule_key == s.schedule_key
            assert _results(f) == _results(s)

    def test_probes_never_change_results(self):
        pairs = [(FAST, 5), (FAST, 6)]
        bare = _sweeps(pairs)
        run_prepared_sweeps(bare)
        set_probe_factory(RecordingSolverProbe)
        try:
            probed = _sweeps(pairs)
            assert all(s.probe is not None for s in probed)
            run_prepared_sweeps(probed)
        finally:
            set_probe_factory(None)
        for b, p in zip(bare, probed):
            assert _results(b) == _results(p)
        # the probe actually observed the schedule
        probe = probed[0].probe
        assert probe.energy_trace
        assert probe.kernel_steps > 0
        assert probe.n_iterations == FAST.max_iterations


class TestSweepFusionGate:
    def test_two_jobs_fuse_and_match_solo(self):
        pairs = [(FAST, 5), (FAST, 6)]
        fused = _sweeps(pairs)
        gate = SweepFusionGate()
        outcomes = {}

        def job(token, sweep):
            with gate.participant(token) as participant:
                participant.submit([sweep])
            outcomes[token] = _results(sweep)

        threads = [
            threading.Thread(target=job, args=(f"job-{i}", sweep))
            for i, sweep in enumerate(fused)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not any(t.is_alive() for t in threads)

        solo = _sweeps(pairs)
        for i, sweep in enumerate(solo):
            run_prepared_sweeps([sweep])
            assert outcomes[f"job-{i}"] == _results(sweep)

    def test_leaver_releases_waiters(self):
        [sweep] = _sweeps([(FAST, 5)])
        gate = SweepFusionGate(wait_timeout=60.0)
        quitter = gate.participant("quitter")
        worker = gate.participant("worker")
        quitter.leave()  # e.g. artifact-cache hit: no sweep to run
        worker.submit([sweep])  # must not block on the leaver
        [solo] = _sweeps([(FAST, 5)])
        run_prepared_sweeps([solo])
        assert _results(sweep) == _results(solo)

    def test_timeout_detaches_and_runs_solo(self):
        [sweep] = _sweeps([(FAST, 5)])
        gate = SweepFusionGate(wait_timeout=0.1)
        gate.participant("stalled")  # registered, never submits
        beats = []
        worker = gate.participant(
            "worker", heartbeat=lambda: beats.append(1)
        )
        worker.submit([sweep])
        assert worker.detached
        assert beats  # the wait loop kept the lease alive
        [solo] = _sweeps([(FAST, 5)])
        run_prepared_sweeps([solo])
        assert _results(sweep) == _results(solo)
        # detached is permanent: later submits run solo immediately
        [again] = _sweeps([(FAST, 6)])
        worker.submit([again])
        [again_solo] = _sweeps([(FAST, 6)])
        run_prepared_sweeps([again_solo])
        assert _results(again) == _results(again_solo)

    def test_leader_failure_propagates_to_followers(self, monkeypatch):
        def boom(*args, **kwargs):
            raise RuntimeError("kernel exploded")

        monkeypatch.setattr(fusion_mod, "run_prepared_sweeps", boom)
        sweeps = _sweeps([(FAST, 5), (FAST, 6)])
        gate = SweepFusionGate()
        errors = {}

        def job(token, sweep):
            participant = gate.participant(token)
            try:
                participant.submit([sweep])
            except RuntimeError as exc:
                errors[token] = str(exc)
            finally:
                participant.leave()

        threads = [
            threading.Thread(target=job, args=(f"job-{i}", sweep))
            for i, sweep in enumerate(sweeps)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert errors == {
            "job-0": "kernel exploded",
            "job-1": "kernel exploded",
        }
        # the gate survives a failed round
        assert gate._leader is None
        assert not gate._pending
