"""Unit tests for :mod:`repro.core.partitions`."""

from math import comb

import numpy as np
import pytest

from repro.core.partitions import all_partitions, sample_partitions
from repro.errors import PartitionError


class TestAllPartitions:
    def test_count_matches_binomial(self):
        partitions = list(all_partitions(6, 2))
        assert len(partitions) == comb(6, 2)

    def test_all_canonical_and_distinct(self):
        partitions = list(all_partitions(5, 2))
        frees = [p.free for p in partitions]
        assert all(tuple(sorted(f)) == f for f in frees)
        assert len(set(frees)) == len(frees)

    def test_bad_free_size(self):
        with pytest.raises(PartitionError):
            list(all_partitions(4, 0))
        with pytest.raises(PartitionError):
            list(all_partitions(4, 4))


class TestSamplePartitions:
    def test_requested_count(self, rng):
        partitions = sample_partitions(8, 3, 10, rng)
        assert len(partitions) == 10

    def test_distinct(self, rng):
        partitions = sample_partitions(8, 3, 20, rng)
        assert len({p.free for p in partitions}) == 20

    def test_exhaustive_when_count_exceeds_total(self, rng):
        partitions = sample_partitions(5, 2, 1000, rng)
        assert len(partitions) == comb(5, 2)

    def test_deterministic_with_seed(self):
        a = sample_partitions(8, 3, 5, np.random.default_rng(1))
        b = sample_partitions(8, 3, 5, np.random.default_rng(1))
        assert [p.free for p in a] == [p.free for p in b]

    def test_valid_partitions(self, rng):
        for p in sample_partitions(7, 4, 8, rng):
            assert sorted(p.free + p.bound) == list(range(7))
            assert len(p.free) == 4

    def test_count_validation(self, rng):
        with pytest.raises(PartitionError):
            sample_partitions(5, 2, 0, rng)
        with pytest.raises(PartitionError):
            sample_partitions(5, 5, 3, rng)
