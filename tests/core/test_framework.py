"""Tests for :class:`repro.core.framework.IsingDecomposer`."""

import numpy as np
import pytest

from repro.boolean.boolean_matrix import BooleanMatrix
from repro.boolean.decomposition import has_column_decomposition
from repro.boolean.metrics import mean_error_distance
from repro.boolean.random_functions import (
    flip_cells,
    random_decomposable_function,
)
from repro.boolean.truth_table import TruthTable
from repro.core.config import CoreSolverConfig, FrameworkConfig
from repro.core.framework import IsingDecomposer
from repro.errors import DimensionError

FAST_SOLVER = CoreSolverConfig(max_iterations=400, n_replicas=2)


def fast_config(**overrides):
    base = dict(
        mode="joint",
        free_size=2,
        n_partitions=4,
        n_rounds=2,
        seed=0,
        solver=FAST_SOLVER,
    )
    base.update(overrides)
    return FrameworkConfig(**base)


@pytest.fixture(scope="module")
def square_result():
    table = TruthTable.from_integer_function(
        lambda x: (x * x) % 32, n_inputs=5, n_outputs=5
    )
    return table, IsingDecomposer(fast_config()).decompose(table)


class TestDecompose:
    def test_every_component_has_a_setting(self, square_result):
        table, result = square_result
        assert sorted(result.components) == list(range(5))

    def test_every_component_is_decomposable(self, square_result):
        _, result = square_result
        for k, accepted in result.components.items():
            matrix = BooleanMatrix.from_function(
                result.approx, k, accepted.partition
            )
            assert has_column_decomposition(matrix)

    def test_med_matches_tables(self, square_result):
        table, result = square_result
        assert np.isclose(
            result.med, mean_error_distance(table, result.approx)
        )

    def test_med_trace_monotone_in_joint_mode(self, square_result):
        _, result = square_result
        trace = result.med_trace
        assert all(
            trace[i + 1] <= trace[i] + 1e-12 for i in range(len(trace) - 1)
        )

    def test_lut_accounting(self, square_result):
        _, result = square_result
        assert result.flat_lut_bits == 5 * 32
        # each component cascade: c + 2r with r=4, c=8 -> 16 bits
        assert result.total_lut_bits == 5 * 16
        assert np.isclose(result.compression_ratio, 2.0)

    def test_free_size_bound_checked(self):
        table = TruthTable.random(3, 2, np.random.default_rng(0))
        with pytest.raises(DimensionError):
            IsingDecomposer(fast_config(free_size=3)).decompose(table)

    def test_deterministic_given_seed(self):
        table = TruthTable.from_integer_function(
            lambda x: (x * 3) % 16, n_inputs=4, n_outputs=4
        )
        a = IsingDecomposer(fast_config(n_partitions=2)).decompose(table)
        b = IsingDecomposer(fast_config(n_partitions=2)).decompose(table)
        assert np.isclose(a.med, b.med)
        assert np.array_equal(a.approx.outputs, b.approx.outputs)


class TestKnownOptima:
    def test_exactly_decomposable_function_gets_zero_med(self, rng):
        """All components decomposable -> the framework should find MED 0
        when the true partitions are in the candidate pool (exhaustive P).
        """
        table, _ = random_decomposable_function(5, 3, 2, rng)
        config = fast_config(
            n_partitions=10,  # C(5,2) = 10 -> exhaustive
            n_rounds=1,
            solver=CoreSolverConfig(max_iterations=800, n_replicas=4),
        )
        result = IsingDecomposer(config).decompose(table)
        assert np.isclose(result.med, 0.0, atol=1e-12)

    def test_near_decomposable_error_bounded_by_flips(self, rng):
        """Flipping f cells bounds the best ER by the flipped mass."""
        table, partitions = random_decomposable_function(5, 1, 2, rng)
        noisy = flip_cells(table, 0, 2, rng)
        config = fast_config(
            mode="separate",
            n_partitions=10,
            n_rounds=1,
            solver=CoreSolverConfig(max_iterations=800, n_replicas=4),
        )
        result = IsingDecomposer(config).decompose(noisy)
        # flipped mass = 2 / 32
        assert result.error_rates[0] <= 2 / 32 + 1e-12


class TestModes:
    def test_separate_mode_runs(self):
        table = TruthTable.from_integer_function(
            lambda x: (x + 7) % 16, n_inputs=4, n_outputs=4
        )
        result = IsingDecomposer(
            fast_config(mode="separate", n_rounds=1)
        ).decompose(table)
        assert sorted(result.components) == list(range(4))

    def test_joint_beats_separate_on_med_typically(self):
        """Joint mode optimizes MED directly, so it should not lose badly."""
        table = TruthTable.from_integer_function(
            lambda x: (x * 5 + 3) % 32, n_inputs=5, n_outputs=5
        )
        joint = IsingDecomposer(fast_config(seed=3)).decompose(table)
        separate = IsingDecomposer(
            fast_config(mode="separate", seed=3)
        ).decompose(table)
        assert joint.med <= separate.med * 1.5 + 1e-9


class TestExtensions:
    def test_prescreen_runs_and_returns_valid_result(self):
        table = TruthTable.from_integer_function(
            lambda x: (x * x + 1) % 16, n_inputs=4, n_outputs=4
        )
        config = fast_config(n_partitions=4, prescreen_keep=2, n_rounds=1)
        result = IsingDecomposer(config).decompose(table)
        assert sorted(result.components) == list(range(4))

    def test_stall_stops_early(self):
        """A function solved exactly in round 1 stalls in round 2."""
        rng = np.random.default_rng(0)
        table, _ = random_decomposable_function(5, 2, 2, rng)
        config = fast_config(
            n_partitions=10, n_rounds=5,
            solver=CoreSolverConfig(max_iterations=800, n_replicas=4),
        )
        result = IsingDecomposer(config).decompose(table)
        if np.isclose(result.med, 0.0):
            assert result.rounds_used < 5


class TestHooks:
    """Progress/cancellation hooks (service-layer integration points)."""

    def _table(self):
        return TruthTable.from_integer_function(
            lambda x: (x * 7 + 1) % 16, n_inputs=4, n_outputs=4
        )

    def test_progress_events_cover_components_and_rounds(self):
        events = []
        config = fast_config(n_rounds=1, stop_when_stalled=False)
        IsingDecomposer(config).decompose(
            self._table(), progress=events.append
        )
        kinds = [event["event"] for event in events]
        assert kinds.count("component") == 4
        assert kinds.count("round") == 1
        assert all(event["round"] == 1 for event in events)
        round_event = [e for e in events if e["event"] == "round"][0]
        assert round_event["med"] >= 0.0
        # round one must accept every component
        component_events = [e for e in events if e["event"] == "component"]
        assert all(e["accepted"] for e in component_events)

    def test_hooks_do_not_perturb_results(self):
        table = self._table()
        observed = IsingDecomposer(fast_config()).decompose(
            table, progress=lambda event: None, should_cancel=lambda: False
        )
        plain = IsingDecomposer(fast_config()).decompose(table)
        assert np.array_equal(observed.approx.outputs, plain.approx.outputs)
        assert observed.med == plain.med
        for k in plain.components:
            assert np.array_equal(
                observed.components[k].setting.pattern1,
                plain.components[k].setting.pattern1,
            )
            assert observed.components[k].partition.free == (
                plain.components[k].partition.free
            )

    def test_cancellation_raises_operation_cancelled(self):
        from repro.errors import OperationCancelled

        with pytest.raises(OperationCancelled, match="cancelled"):
            IsingDecomposer(fast_config()).decompose(
                self._table(), should_cancel=lambda: True
            )

    def test_cancellation_mid_run(self):
        from repro.errors import OperationCancelled

        calls = {"n": 0}

        def cancel_after_two():
            calls["n"] += 1
            return calls["n"] > 2

        with pytest.raises(OperationCancelled):
            IsingDecomposer(
                fast_config(n_rounds=3, stop_when_stalled=False)
            ).decompose(self._table(), should_cancel=cancel_after_two)
