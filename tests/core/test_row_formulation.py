"""Tests for the third-order row-based formulation (Sec. 3.1's claim)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.row_core_cop import exhaustive_row_cop, row_cop_cost
from repro.boolean.decomposition import RowSetting
from repro.core.row_ising_formulation import (
    build_row_cop_polynomial_model,
    row_setting_from_spins,
    spins_from_row_setting,
)
from repro.errors import DimensionError
from repro.ising.solvers import BallisticSBSolver, BruteForceSolver
from repro.ising.stop_criteria import FixedIterations


class TestFormulation:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_objective_equals_row_cost(self, seed):
        """model.objective(spins(setting)) == constant + sum W O_hat."""
        rng = np.random.default_rng(seed)
        r, c = int(rng.integers(1, 4)), int(rng.integers(1, 5))
        weights = rng.normal(size=(r, c))
        constant = float(rng.normal())
        model = build_row_cop_polynomial_model(weights, constant)
        for _ in range(6):
            setting = RowSetting(
                rng.integers(0, 2, c, dtype=np.uint8),
                rng.integers(0, 4, r).astype(np.int8),
            )
            objective = model.objective(spins_from_row_setting(setting))
            direct = row_cop_cost(weights, setting) + constant
            assert np.isclose(objective, direct)

    def test_model_is_genuinely_third_order(self, rng):
        """The cubic terms are present — the paper's Sec. 3.1 claim."""
        weights = rng.normal(size=(2, 3))
        model = build_row_cop_polynomial_model(weights)
        assert model.order == 3
        # the cubic coefficient of (a_0, b_0, V_0) is -W[0,0]/4
        assert np.isclose(
            model.coefficient((0, 2, 4)), -weights[0, 0] / 4.0
        )

    def test_spin_count_matches_column_route(self, rng):
        """Both formulations use 2r + c spins."""
        weights = rng.normal(size=(4, 8))
        model = build_row_cop_polynomial_model(weights)
        assert model.n_spins == 2 * 4 + 8

    def test_bad_weights_rejected(self):
        with pytest.raises(DimensionError):
            build_row_cop_polynomial_model(np.zeros(3))


class TestEncoding:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_round_trip(self, seed):
        rng = np.random.default_rng(seed)
        r, c = int(rng.integers(1, 5)), int(rng.integers(1, 6))
        setting = RowSetting(
            rng.integers(0, 2, c, dtype=np.uint8),
            rng.integers(0, 4, r).astype(np.int8),
        )
        decoded = row_setting_from_spins(
            spins_from_row_setting(setting), r, c
        )
        assert np.array_equal(decoded.pattern, setting.pattern)
        assert np.array_equal(decoded.row_types, setting.row_types)

    def test_shape_check(self):
        with pytest.raises(DimensionError):
            row_setting_from_spins(np.ones(4), 2, 2)


class TestSolvingTheCubicModel:
    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_brute_force_ground_state_is_exhaustive_optimum(self, seed):
        """The cubic model's global optimum equals the exhaustive
        row-COP optimum — the formulation is not just consistent but
        *complete* (every spin state decodes to a valid setting)."""
        rng = np.random.default_rng(seed)
        weights = rng.normal(size=(2, 4))
        model = build_row_cop_polynomial_model(weights)
        _, best_cost = exhaustive_row_cop(weights)
        exact = BruteForceSolver().solve(model)
        assert np.isclose(exact.objective, best_cost, atol=1e-9)

    def test_higher_order_bsb_close_to_optimum(self, rng):
        weights = rng.normal(size=(3, 5))
        model = build_row_cop_polynomial_model(weights)
        _, best_cost = exhaustive_row_cop(weights)
        result = BallisticSBSolver(
            stop=FixedIterations(3000), n_replicas=8
        ).solve(model, np.random.default_rng(0))
        span = abs(best_cost) + 1.0
        assert result.objective <= best_cost + 0.1 * span
        # the decoded setting is valid and matches the objective
        setting = row_setting_from_spins(result.spins, 3, 5)
        assert np.isclose(
            row_cop_cost(weights, setting), result.objective
        )
