"""Tests for the batched multi-partition core-COP solver."""

import numpy as np
import pytest

from repro.boolean.metrics import mean_error_distance
from repro.boolean.random_functions import random_function
from repro.boolean.synthesis import apply_column_setting
from repro.core.batch import BatchedCoreCOPSolver, _StackedBipartiteDynamics
from repro.core.config import CoreSolverConfig, FrameworkConfig
from repro.core.framework import IsingDecomposer
from repro.core.partitions import sample_partitions
from repro.core.solver import CoreCOPSolver
from repro.errors import DimensionError
from repro.ising.structured import BipartiteDecompositionModel

FAST = CoreSolverConfig(max_iterations=600, n_replicas=3)


class TestStackedDynamics:
    """The stacked einsum kernels must agree with the per-model ones."""

    def test_energy_matches_single_models(self, rng):
        stack = rng.normal(size=(3, 4, 6))
        dynamics = _StackedBipartiteDynamics(stack, np.zeros(3))
        spins = rng.choice([-1.0, 1.0], size=(3, 2, dynamics.n_spins))
        energies = dynamics.energy(spins)
        for p in range(3):
            model = BipartiteDecompositionModel(stack[p])
            for replica in range(2):
                assert np.isclose(
                    energies[p, replica], model.energy(spins[p, replica])
                )

    def test_fields_match_single_models(self, rng):
        stack = rng.normal(size=(3, 4, 6))
        dynamics = _StackedBipartiteDynamics(stack, np.zeros(3))
        x = rng.normal(size=(3, 2, dynamics.n_spins))
        fields = dynamics.fields(x)
        for p in range(3):
            model = BipartiteDecompositionModel(stack[p])
            for replica in range(2):
                assert np.allclose(
                    fields[p, replica], model.fields(x[p, replica])
                )

    def test_optimal_types_match_theorem3(self, rng):
        from repro.core.theorem3 import optimal_column_types

        stack = rng.normal(size=(2, 3, 5))
        dynamics = _StackedBipartiteDynamics(stack, np.zeros(2))
        v1 = rng.integers(0, 2, (2, 4, 3)).astype(np.uint8)
        v2 = rng.integers(0, 2, (2, 4, 3)).astype(np.uint8)
        types = dynamics.optimal_types(v1, v2)
        for p in range(2):
            for replica in range(4):
                expected = optimal_column_types(
                    4.0 * dynamics.k[p], v1[p, replica], v2[p, replica]
                )
                assert np.array_equal(types[p, replica], expected)

    def test_bad_stack_shape(self):
        with pytest.raises(DimensionError):
            _StackedBipartiteDynamics(np.zeros((2, 3)), np.zeros(2))


class TestSolveCandidates:
    def test_objectives_are_exact(self, rng):
        """Every returned objective equals the true error of its setting."""
        table = random_function(6, 2, rng, random_distribution=True)
        partitions = sample_partitions(6, 3, 4, rng)
        solutions = BatchedCoreCOPSolver(FAST).solve_candidates(
            table, table, 1, partitions, "joint", rng
        )
        assert len(solutions) == 4
        for solution in solutions:
            approx = apply_column_setting(
                table, 1, solution.partition, solution.setting
            )
            assert np.isclose(
                solution.objective, mean_error_distance(table, approx)
            )

    def test_quality_comparable_to_sequential(self, rng):
        table = random_function(7, 2, rng)
        partitions = sample_partitions(7, 3, 4, rng)
        batched = BatchedCoreCOPSolver(FAST).solve_candidates(
            table, table, 1, partitions, "separate",
            np.random.default_rng(0),
        )
        sequential = CoreCOPSolver(FAST)
        for solution in batched:
            reference = sequential.solve(
                table, table, 1, solution.partition, "separate",
                np.random.default_rng(0),
            )
            # batched and sequential explore differently; demand parity
            # within a generous factor on each instance
            assert solution.objective <= reference.objective * 2 + 0.05

    def test_empty_partitions_rejected(self, rng):
        table = random_function(5, 2, rng)
        with pytest.raises(DimensionError):
            BatchedCoreCOPSolver(FAST).solve_candidates(
                table, table, 0, [], "separate", rng
            )

    def test_mixed_free_sizes_rejected(self, rng):
        table = random_function(6, 2, rng)
        mixed = (
            sample_partitions(6, 2, 1, rng)
            + sample_partitions(6, 3, 1, rng)
        )
        with pytest.raises(DimensionError):
            BatchedCoreCOPSolver(FAST).solve_candidates(
                table, table, 0, mixed, "separate", rng
            )

    def test_deterministic_given_seed(self, rng):
        table = random_function(6, 2, rng)
        partitions = sample_partitions(6, 3, 3, rng)
        a = BatchedCoreCOPSolver(FAST).solve_candidates(
            table, table, 0, partitions, "joint", np.random.default_rng(5)
        )
        b = BatchedCoreCOPSolver(FAST).solve_candidates(
            table, table, 0, partitions, "joint", np.random.default_rng(5)
        )
        assert [s.objective for s in a] == [s.objective for s in b]


class TestFrameworkIntegration:
    def test_batched_framework_end_to_end(self):
        from repro.boolean.truth_table import TruthTable

        table = TruthTable.from_integer_function(
            lambda x: (x * x) % 32, n_inputs=5, n_outputs=5
        )
        config = FrameworkConfig(
            mode="joint", free_size=2, n_partitions=4, n_rounds=1,
            seed=0, solver=FAST, batched=True,
        )
        result = IsingDecomposer(config).decompose(table)
        assert sorted(result.components) == list(range(5))
        assert np.isclose(
            result.med, mean_error_distance(table, result.approx)
        )

    def test_batched_matches_sequential_quality(self):
        from repro.workloads import build_workload

        workload = build_workload("exp", n_inputs=8)
        base = dict(
            mode="joint", free_size=workload.free_size, n_partitions=4,
            n_rounds=1, seed=0, solver=FAST,
        )
        sequential = IsingDecomposer(
            FrameworkConfig(**base, batched=False)
        ).decompose(workload.table)
        batched = IsingDecomposer(
            FrameworkConfig(**base, batched=True)
        ).decompose(workload.table)
        # same partitions explored (seeded), comparable accuracy
        assert batched.med <= sequential.med * 1.5 + 0.5
