"""Tests for :class:`repro.core.solver.CoreCOPSolver`."""

import numpy as np
import pytest

from repro.boolean.boolean_matrix import BooleanMatrix
from repro.boolean.decomposition import has_column_decomposition
from repro.boolean.random_functions import (
    random_decomposable_function,
    random_function,
    random_partition,
)
from repro.boolean.synthesis import apply_column_setting
from repro.boolean.metrics import error_rate_per_output
from repro.core.config import CoreSolverConfig
from repro.core.ising_formulation import build_core_cop_model
from repro.core.solver import CoreCOPSolver

FAST = CoreSolverConfig(max_iterations=600, n_replicas=4)


class TestSolve:
    def test_returns_true_objective(self, rng):
        table = random_function(6, 3, rng)
        partition = random_partition(6, 3, rng)
        solution = CoreCOPSolver(FAST).solve(
            table, table, 1, partition, "separate", rng
        )
        approx = apply_column_setting(
            table, 1, partition, solution.setting
        )
        true_er = error_rate_per_output(table, approx)[1]
        assert np.isclose(solution.objective, true_er)

    def test_decomposable_instance_solved_exactly(self, rng):
        """On an exactly decomposable component the solver finds ER = 0."""
        table, partitions = random_decomposable_function(6, 2, 3, rng)
        solution = CoreCOPSolver(FAST).solve(
            table, table, 0, partitions[0], "separate", rng
        )
        assert np.isclose(solution.objective, 0.0, atol=1e-12)

    def test_setting_shape_matches_partition(self, rng):
        table = random_function(5, 2, rng)
        partition = random_partition(5, 2, rng)
        solution = CoreCOPSolver(FAST).solve(
            table, table, 0, partition, "joint", rng
        )
        assert solution.setting.n_rows == partition.n_rows
        assert solution.setting.n_cols == partition.n_cols
        assert solution.partition == partition

    def test_reconstruction_is_decomposable(self, rng):
        table = random_function(5, 2, rng)
        partition = random_partition(5, 2, rng)
        solution = CoreCOPSolver(FAST).solve(
            table, table, 0, partition, "separate", rng
        )
        approx = apply_column_setting(table, 0, partition, solution.setting)
        matrix = BooleanMatrix.from_function(approx, 0, partition)
        assert has_column_decomposition(matrix)

    def test_deterministic_given_seed(self, rng):
        table = random_function(5, 2, rng)
        partition = random_partition(5, 2, rng)
        a = CoreCOPSolver(FAST).solve(
            table, table, 0, partition, "separate",
            np.random.default_rng(3),
        )
        b = CoreCOPSolver(FAST).solve(
            table, table, 0, partition, "separate",
            np.random.default_rng(3),
        )
        assert np.isclose(a.objective, b.objective)


class TestConfigurationEffects:
    def test_dynamic_stop_converges_before_cap(self, rng):
        table = random_function(6, 2, rng)
        partition = random_partition(6, 3, rng)
        config = CoreSolverConfig(
            sample_every=10, window=10, max_iterations=50_000,
            n_replicas=2,
        )
        solution = CoreCOPSolver(config).solve(
            table, table, 0, partition, "separate", rng
        )
        assert solution.solve_result.stop_reason == "variance_converged"
        assert solution.solve_result.n_iterations < 50_000

    def test_fixed_stop_runs_to_cap(self, rng):
        table = random_function(5, 2, rng)
        partition = random_partition(5, 2, rng)
        config = CoreSolverConfig(
            use_dynamic_stop=False, max_iterations=200, n_replicas=2
        )
        solution = CoreCOPSolver(config).solve(
            table, table, 0, partition, "separate", rng
        )
        assert solution.solve_result.n_iterations == 200

    def test_polish_never_worse(self, rng):
        """Alternating polish cannot increase the objective."""
        table = random_function(6, 2, rng)
        partition = random_partition(6, 3, rng)
        model = build_core_cop_model(table, table, 0, partition, "separate")
        plain = CoreCOPSolver(
            FAST.with_updates(polish=False)
        ).solve_model(model, np.random.default_rng(0))
        polished = CoreCOPSolver(
            FAST.with_updates(polish=True)
        ).solve_model(model, np.random.default_rng(0))
        assert polished.objective <= plain.objective + 1e-12

    def test_intervention_improves_or_matches_types(self, rng):
        """With the Theorem-3 hook, the returned T is optimal for V1/V2."""
        from repro.core.theorem3 import optimal_column_types, setting_cost
        from repro.boolean.decomposition import ColumnSetting

        table = random_function(6, 2, rng)
        partition = random_partition(6, 3, rng)
        model = build_core_cop_model(table, table, 0, partition, "separate")
        solution = CoreCOPSolver(
            FAST.with_updates(use_intervention=True)
        ).solve_model(model, rng)
        setting = solution.setting
        best_t = optimal_column_types(
            model.weights, setting.pattern1, setting.pattern2
        )
        optimal = ColumnSetting(setting.pattern1, setting.pattern2, best_t)
        assert setting_cost(model.weights, setting) <= setting_cost(
            model.weights, optimal
        ) + 1e-12
