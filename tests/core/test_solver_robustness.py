"""Robustness tests: ramp/stop interplay, symmetry breaking, edge cases.

These pin down the two implementation findings documented in DESIGN.md
(pump-ramp vs dynamic-stop interaction; V1/V2 exchange symmetry) plus
solver edge cases like degenerate weight matrices.
"""

import numpy as np
import pytest

from repro.boolean.random_functions import random_partition
from repro.core.config import CoreSolverConfig
from repro.core.ising_formulation import build_core_cop_model
from repro.core.solver import CoreCOPSolver
from repro.errors import ConfigurationError, SolverError
from repro.ising.solvers import BallisticSBSolver
from repro.ising.stop_criteria import FixedIterations
from repro.ising.structured import BipartiteDecompositionModel
from repro.workloads import build_workload


class TestRampConfig:
    def test_default_ramp_is_quarter_of_cap(self):
        config = CoreSolverConfig(max_iterations=2000)
        assert config.resolved_ramp_iterations == 500

    def test_minimum_ramp_floor(self):
        config = CoreSolverConfig(max_iterations=200)
        assert config.resolved_ramp_iterations == 100

    def test_tiny_cap_clamps_ramp(self):
        config = CoreSolverConfig(max_iterations=50)
        assert config.resolved_ramp_iterations == 50

    def test_explicit_ramp_respected(self):
        config = CoreSolverConfig(max_iterations=1000,
                                  pump_ramp_iterations=300)
        assert config.resolved_ramp_iterations == 300

    def test_ramp_exceeding_cap_rejected(self):
        with pytest.raises(ConfigurationError):
            CoreSolverConfig(max_iterations=100, pump_ramp_iterations=200)
        with pytest.raises(ConfigurationError):
            CoreSolverConfig(pump_ramp_iterations=0)

    def test_dynamic_stop_waits_for_ramp(self):
        """The solver must not stop during the pump ramp."""
        workload = build_workload("cos", n_inputs=8)
        partition = random_partition(8, 3, np.random.default_rng(0))
        model = build_core_cop_model(
            workload.table, workload.table, 7, partition, "joint"
        )
        config = CoreSolverConfig(
            max_iterations=4000, pump_ramp_iterations=600, n_replicas=2
        )
        solution = CoreCOPSolver(config).solve_model(
            model, np.random.default_rng(0)
        )
        assert solution.solve_result.n_iterations >= 600


class TestSymmetryBreaking:
    def test_regression_cos_msb_instance(self):
        """The documented hard instance: must reach the 0.5 optimum."""
        rng = np.random.default_rng(3)
        workload = build_workload("cos", n_inputs=9)
        partition = random_partition(9, 4, rng)
        model = build_core_cop_model(
            workload.table, workload.table, 8, partition, "joint"
        )
        config = CoreSolverConfig.paper_small_scale().with_updates(
            max_iterations=2000, n_replicas=4
        )
        solution = CoreCOPSolver(config).solve_model(
            model, np.random.default_rng(0)
        )
        assert solution.objective <= 0.5 + 1e-9

    def test_initializer_mirrors_v2(self):
        initializer = CoreCOPSolver._antisymmetric_initializer(4)
        x, y = initializer(np.random.default_rng(0), 3, 12, 0.1)
        assert x.shape == (3, 12) and y.shape == (3, 12)
        assert np.allclose(x[:, 4:8], -x[:, :4])

    def test_flag_off_uses_default_init(self):
        """With the flag off the solver still runs and returns validly."""
        rng = np.random.default_rng(1)
        model = BipartiteDecompositionModel(rng.normal(size=(4, 8)))
        config = CoreSolverConfig(
            max_iterations=300, n_replicas=2, symmetry_breaking_init=False
        )
        solution = CoreCOPSolver(config).solve_model(model, rng)
        assert np.isfinite(solution.objective)


class TestBsbInitializer:
    def test_wrong_shape_rejected(self):
        rng = np.random.default_rng(0)
        model = BipartiteDecompositionModel(rng.normal(size=(2, 3)))

        def bad_initializer(rng_, n_replicas, n_spins, amplitude):
            return np.zeros((1, n_spins)), np.zeros((1, n_spins))

        solver = BallisticSBSolver(
            stop=FixedIterations(10), n_replicas=2,
            initializer=bad_initializer,
        )
        with pytest.raises(SolverError):
            solver.solve(model, rng)


class TestDegenerateModels:
    def test_all_zero_weights(self):
        """A zero weight matrix: every setting is optimal (cost 0)."""
        model = BipartiteDecompositionModel(np.zeros((3, 4)), offset=0.0)
        config = CoreSolverConfig(max_iterations=200, n_replicas=2)
        solution = CoreCOPSolver(config).solve_model(
            model, np.random.default_rng(0)
        )
        assert np.isclose(solution.objective, 0.0)

    def test_single_row_single_column(self):
        model = BipartiteDecompositionModel(np.array([[1.0]]), offset=0.5)
        config = CoreSolverConfig(max_iterations=200, n_replicas=2)
        solution = CoreCOPSolver(config).solve_model(
            model, np.random.default_rng(0)
        )
        # best O_hat = 0 -> cost = offset - W/2 ... objective is exact:
        assert np.isfinite(solution.objective)
        assert solution.setting.n_rows == 1
        assert solution.setting.n_cols == 1

    def test_constant_component_zero_error(self):
        """A constant output decomposes with zero error trivially."""
        from repro.boolean.truth_table import TruthTable

        table = TruthTable(np.zeros((32, 2), dtype=int))
        partition = random_partition(5, 2, np.random.default_rng(0))
        model = build_core_cop_model(table, table, 0, partition, "separate")
        config = CoreSolverConfig(max_iterations=300, n_replicas=2)
        solution = CoreCOPSolver(config).solve_model(
            model, np.random.default_rng(0)
        )
        assert np.isclose(solution.objective, 0.0)
