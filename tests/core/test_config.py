"""Unit tests for the configuration dataclasses."""

import pytest

from repro.core.config import CoreSolverConfig, FrameworkConfig
from repro.errors import ConfigurationError


class TestCoreSolverConfig:
    def test_paper_presets(self):
        small = CoreSolverConfig.paper_small_scale()
        assert small.sample_every == 20 and small.window == 20
        large = CoreSolverConfig.paper_large_scale()
        assert large.sample_every == 10 and large.window == 10
        assert small.variance_threshold == 1e-8

    def test_with_updates_is_functional(self):
        base = CoreSolverConfig()
        updated = base.with_updates(n_replicas=9)
        assert updated.n_replicas == 9
        assert base.n_replicas != 9 or base is not updated

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"sample_every": 0},
            {"window": 1},
            {"variance_threshold": -1.0},
            {"max_iterations": 0},
            {"n_replicas": 0},
            {"dt": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            CoreSolverConfig(**kwargs)


class TestFrameworkConfig:
    def test_paper_presets(self):
        small = FrameworkConfig.paper_small_scale()
        assert small.free_size == 4
        assert small.n_partitions == 1000
        assert small.n_rounds == 5
        large = FrameworkConfig.paper_large_scale("separate")
        assert large.free_size == 7
        assert large.mode == "separate"

    def test_with_updates(self):
        config = FrameworkConfig().with_updates(n_partitions=3)
        assert config.n_partitions == 3

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mode": "both"},
            {"free_size": 0},
            {"n_partitions": 0},
            {"n_rounds": 0},
            {"prescreen_keep": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            FrameworkConfig(**kwargs)
