"""Tests for the non-disjoint decomposition extension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolean.metrics import error_rate_per_output, mean_error_distance
from repro.boolean.overlapping import OverlappingPartition
from repro.boolean.random_functions import (
    random_column_setting,
    random_function,
)
from repro.core.config import CoreSolverConfig, FrameworkConfig
from repro.core.framework import IsingDecomposer
from repro.core.ising_formulation import spins_from_setting
from repro.core.nondisjoint import (
    NonDisjointDecomposer,
    apply_overlapping_setting,
    build_overlapping_core_cop_model,
    overlapping_component,
    sample_overlapping_partitions,
)
from repro.errors import DimensionError, PartitionError

FAST = CoreSolverConfig(max_iterations=400, n_replicas=2)


class TestOverlappingPartition:
    def test_disjoint_special_case(self):
        w = OverlappingPartition(free=(0, 1), bound=(2, 3), n_inputs=4)
        assert w.is_disjoint
        assert w.consistent_mask.all()

    def test_shared_variables(self):
        w = OverlappingPartition(free=(0, 1), bound=(1, 2), n_inputs=3)
        assert w.shared == (1,)
        # half the 4x4 cells are reachable (must agree on x2)
        assert w.consistent_mask.sum() == 8

    def test_consistency_agrees_on_shared_bits(self):
        w = OverlappingPartition(free=(0, 1), bound=(1, 2), n_inputs=3)
        # free order (0,1): x2 is the LSB of the row index
        # bound order (1,2): x2 is the MSB of the column index
        rows, cols = np.nonzero(w.consistent_mask)
        for row, col in zip(rows, cols):
            assert (row & 1) == (col >> 1)

    def test_cell_bijection_with_inputs(self):
        w = OverlappingPartition(free=(0, 2, 3), bound=(1, 2, 3),
                                 n_inputs=4)
        cells = w.index_of_cell[w.consistent_mask]
        assert np.array_equal(np.sort(cells), np.arange(16))

    def test_cover_required(self):
        with pytest.raises(PartitionError):
            OverlappingPartition(free=(0,), bound=(1,), n_inputs=3)

    def test_repeats_within_set_rejected(self):
        with pytest.raises(PartitionError):
            OverlappingPartition(free=(0, 0, 1), bound=(2,), n_inputs=3)

    def test_lut_bits(self):
        w = OverlappingPartition(free=(0, 1), bound=(1, 2), n_inputs=3)
        assert w.lut_bits() == 4 + 2 * 4


class TestMaskedFormulation:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_objective_equals_true_error(self, seed):
        """The core identity survives the masking, both modes."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(3, 6))
        table = random_function(n, 2, rng, random_distribution=True)
        # free = first ceil(n/2)+1 vars with one shared variable
        shared = int(rng.integers(0, n))
        free = tuple(sorted({shared} | set(
            int(v) for v in rng.choice(n, size=max(1, n // 2),
                                       replace=False)
        )))
        bound = tuple(sorted(set(range(n)) - set(free) | {shared}))
        w = OverlappingPartition(free, bound, n)
        for mode in ("separate", "joint"):
            model = build_overlapping_core_cop_model(
                table, table, 1, w, mode
            )
            setting = random_column_setting(w.n_rows, w.n_cols, rng)
            objective = model.objective(spins_from_setting(setting))
            approx = apply_overlapping_setting(table, 1, w, setting)
            if mode == "separate":
                truth = error_rate_per_output(table, approx)[1]
            else:
                truth = mean_error_distance(table, approx)
            assert np.isclose(objective, truth)

    def test_inconsistent_cells_have_zero_weight(self, rng):
        table = random_function(4, 2, rng)
        w = OverlappingPartition(free=(0, 1), bound=(1, 2, 3), n_inputs=4)
        from repro.core.nondisjoint import overlapping_error_terms

        weights, _ = overlapping_error_terms(table, table, 0, w,
                                             "separate")
        assert np.allclose(weights[~w.consistent_mask], 0.0)

    def test_cascade_matches_table_route(self, rng):
        w = OverlappingPartition(free=(0, 1, 2), bound=(2, 3), n_inputs=4)
        table = random_function(4, 1, rng)
        setting = random_column_setting(w.n_rows, w.n_cols, rng)
        cascade = overlapping_component(w, setting)
        applied = apply_overlapping_setting(table, 0, w, setting)
        assert np.array_equal(
            cascade.to_truth_vector(), applied.component(0)
        )


class TestSampling:
    def test_zero_overlap_is_disjoint(self, rng):
        partitions = sample_overlapping_partitions(6, 3, 0, 5, rng)
        assert all(p.is_disjoint for p in partitions)

    def test_overlap_size_respected(self, rng):
        partitions = sample_overlapping_partitions(6, 3, 2, 5, rng)
        assert all(len(p.shared) == 2 for p in partitions)
        assert all(len(p.free) == 3 for p in partitions)

    def test_validation(self, rng):
        with pytest.raises(PartitionError):
            sample_overlapping_partitions(5, 0, 0, 3, rng)
        with pytest.raises(PartitionError):
            sample_overlapping_partitions(5, 3, 3, 3, rng)
        with pytest.raises(PartitionError):
            sample_overlapping_partitions(5, 2, 1, 0, rng)


class TestNonDisjointDecomposer:
    def test_end_to_end(self):
        from repro.boolean.truth_table import TruthTable

        table = TruthTable.from_integer_function(
            lambda x: (x * x + 3) % 32, n_inputs=5, n_outputs=5
        )
        config = FrameworkConfig(
            mode="joint", free_size=3, n_partitions=4, n_rounds=1,
            seed=0, solver=FAST,
        )
        result = NonDisjointDecomposer(config, overlap=1).decompose(table)
        assert sorted(result.components) == list(range(5))
        assert np.isclose(
            result.med, mean_error_distance(table, result.approx)
        )
        # overlap of 1 on a 3-of-5 free set: phi LUT 2^3, F LUT 2^4
        for accepted in result.components.values():
            assert accepted.lut_bits == 8 + 16

    def test_overlap_beats_or_matches_disjoint_accuracy(self):
        """Extra representational freedom must not hurt (same budget)."""
        from repro.workloads import build_workload

        workload = build_workload("tan", n_inputs=7)
        config = FrameworkConfig(
            mode="joint", free_size=workload.free_size + 1,
            n_partitions=6, n_rounds=1, seed=0,
            solver=CoreSolverConfig(max_iterations=800, n_replicas=4),
        )
        overlapping = NonDisjointDecomposer(config, overlap=1).decompose(
            workload.table
        )
        disjoint_config = config.with_updates(
            free_size=workload.free_size
        )
        disjoint = IsingDecomposer(disjoint_config).decompose(
            workload.table
        )
        # non-disjoint spends more LUT bits to buy accuracy
        assert overlapping.med <= disjoint.med * 1.2 + 0.2
        assert overlapping.total_lut_bits >= disjoint.total_lut_bits

    def test_negative_overlap_rejected(self):
        with pytest.raises(Exception):
            NonDisjointDecomposer(overlap=-1)
