"""Tests for Theorem 3 and the alternating refinement / intervention."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolean.decomposition import ColumnSetting
from repro.boolean.random_functions import random_column_setting
from repro.core.theorem3 import (
    alternating_refinement,
    optimal_column_types,
    optimal_patterns,
    setting_cost,
    theorem3_intervention,
)
from repro.errors import DimensionError
from repro.ising.structured import BipartiteDecompositionModel


class TestOptimalColumnTypes:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_theorem3_is_optimal_per_column(self, seed):
        """No other T achieves lower cost for the same patterns."""
        rng = np.random.default_rng(seed)
        r, c = int(rng.integers(1, 5)), int(rng.integers(1, 5))
        weights = rng.normal(size=(r, c))
        v1 = rng.integers(0, 2, r, dtype=np.uint8)
        v2 = rng.integers(0, 2, r, dtype=np.uint8)
        best_t = optimal_column_types(weights, v1, v2)
        best_cost = setting_cost(weights, ColumnSetting(v1, v2, best_t))
        for bits in itertools.product((0, 1), repeat=c):
            other = ColumnSetting(v1, v2, np.array(bits, dtype=np.uint8))
            assert best_cost <= setting_cost(weights, other) + 1e-12

    def test_tie_selects_pattern1(self):
        weights = np.zeros((2, 3))
        v1 = np.array([1, 0], dtype=np.uint8)
        v2 = np.array([0, 1], dtype=np.uint8)
        assert np.array_equal(
            optimal_column_types(weights, v1, v2), [0, 0, 0]
        )

    def test_shape_mismatch(self):
        with pytest.raises(DimensionError):
            optimal_column_types(
                np.zeros((2, 3)), np.zeros(3), np.zeros(2)
            )


class TestOptimalPatterns:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_dual_step_is_optimal_per_bit(self, seed):
        rng = np.random.default_rng(seed)
        r, c = int(rng.integers(1, 4)), int(rng.integers(1, 5))
        weights = rng.normal(size=(r, c))
        t = rng.integers(0, 2, c, dtype=np.uint8)
        v1, v2 = optimal_patterns(weights, t)
        best_cost = setting_cost(weights, ColumnSetting(v1, v2, t))
        for bits1 in itertools.product((0, 1), repeat=r):
            for bits2 in itertools.product((0, 1), repeat=r):
                other = ColumnSetting(
                    np.array(bits1, dtype=np.uint8),
                    np.array(bits2, dtype=np.uint8),
                    t,
                )
                assert best_cost <= setting_cost(weights, other) + 1e-12

    def test_shape_mismatch(self):
        with pytest.raises(DimensionError):
            optimal_patterns(np.zeros((2, 3)), np.zeros(2))


class TestAlternatingRefinement:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_never_increases_cost(self, seed):
        rng = np.random.default_rng(seed)
        r, c = int(rng.integers(1, 6)), int(rng.integers(1, 7))
        weights = rng.normal(size=(r, c))
        start = random_column_setting(r, c, rng)
        refined, cost, rounds = alternating_refinement(weights, start)
        assert cost <= setting_cost(weights, start) + 1e-12
        assert rounds >= 1

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_fixpoint_is_stable(self, seed):
        """Refining a refined setting changes nothing further."""
        rng = np.random.default_rng(seed)
        weights = rng.normal(size=(3, 4))
        start = random_column_setting(3, 4, rng)
        refined, cost, _ = alternating_refinement(weights, start)
        again, cost2, _ = alternating_refinement(weights, refined)
        assert np.isclose(cost, cost2)

    def test_reaches_exact_optimum_sometimes(self):
        """On a separable instance the fixpoint is the global optimum."""
        # all-negative weights: optimum is all-ones O_hat
        weights = -np.ones((3, 4))
        start = ColumnSetting(
            np.zeros(3, dtype=np.uint8),
            np.zeros(3, dtype=np.uint8),
            np.zeros(4, dtype=np.uint8),
        )
        refined, cost, _ = alternating_refinement(weights, start)
        assert np.isclose(cost, -12.0)


class TestIntervention:
    def test_hook_resets_type_spins_to_optimal(self, rng):
        weights = rng.normal(size=(3, 5))
        model = BipartiteDecompositionModel(weights)
        hook = theorem3_intervention(model)

        x = rng.uniform(-1, 1, size=(2, model.n_spins))
        y = rng.uniform(-1, 1, size=(2, model.n_spins))
        from repro.ising.solvers.bsb import SBState

        state = SBState(
            model=model, positions=x, momenta=y, iteration=10,
            best_energy=np.inf, best_spins=np.sign(x[0]),
        )
        hook(state)
        for replica in range(2):
            v1 = (x[replica, :3] >= 0).astype(np.uint8)
            v2 = (x[replica, 3:6] >= 0).astype(np.uint8)
            expected = optimal_column_types(weights, v1, v2)
            assert np.array_equal(
                (x[replica, 6:] > 0).astype(np.uint8), expected
            )
            assert np.allclose(y[replica, 6:], 0.0)

    def test_intervention_never_hurts_type_assignment(self, rng):
        """Post-hook energy is <= pre-hook energy for the same patterns."""
        weights = rng.normal(size=(4, 6))
        model = BipartiteDecompositionModel(weights)
        hook = theorem3_intervention(model)
        from repro.ising.solvers.bsb import SBState

        for _ in range(10):
            x = rng.uniform(-1, 1, size=(1, model.n_spins))
            y = np.zeros_like(x)
            spins_before = np.where(x >= 0, 1.0, -1.0)[0]
            energy_before = model.energy(spins_before)
            state = SBState(
                model=model, positions=x, momenta=y, iteration=1,
                best_energy=np.inf, best_spins=spins_before,
            )
            hook(state)
            spins_after = np.where(x >= 0, 1.0, -1.0)[0]
            assert model.energy(spins_after) <= energy_before + 1e-12
