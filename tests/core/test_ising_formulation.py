"""Tests for Eqs. 3-16: the Ising formulations of the core COP.

The central invariants (property-tested):

* the separate-mode model's objective equals the true per-component
  error rate of the decoded setting;
* the joint-mode model's objective equals the true whole-word MED with
  the other components frozen;
* spins <-> setting encode/decode is a bijection.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolean.metrics import error_rate_per_output, mean_error_distance
from repro.boolean.random_functions import (
    random_column_setting,
    random_function,
    random_partition,
)
from repro.boolean.synthesis import apply_column_setting
from repro.core.ising_formulation import (
    build_core_cop_model,
    joint_mode_weights,
    linear_error_terms,
    separate_mode_weights,
    setting_from_spins,
    spins_from_setting,
)
from repro.errors import ConfigurationError, DimensionError


def random_instance(seed, n_max=6, m_max=4):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(3, n_max + 1))
    m = int(rng.integers(2, m_max + 1))
    table = random_function(n, m, rng, random_distribution=True)
    partition = random_partition(n, int(rng.integers(1, n)), rng)
    component = int(rng.integers(0, m))
    return rng, table, partition, component


class TestSeparateMode:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_objective_equals_component_error_rate(self, seed):
        rng, table, partition, k = random_instance(seed)
        model = build_core_cop_model(table, table, k, partition, "separate")
        for _ in range(5):
            setting = random_column_setting(
                model.n_rows, model.n_cols, rng
            )
            objective = model.objective(spins_from_setting(setting))
            approx = apply_column_setting(table, k, partition, setting)
            true_er = error_rate_per_output(table, approx)[k]
            assert np.isclose(objective, true_er)

    def test_perfect_setting_gives_zero(self, rng):
        """Encoding the exact matrix as a setting yields ER = 0."""
        from repro.boolean.boolean_matrix import BooleanMatrix
        from repro.boolean.decomposition import column_setting_from_matrix
        from repro.boolean.random_functions import (
            random_decomposable_function,
        )

        table, partitions = random_decomposable_function(5, 2, 2, rng)
        k = 0
        matrix = BooleanMatrix.from_function(table, k, partitions[k])
        setting = column_setting_from_matrix(matrix)
        model = build_core_cop_model(
            table, table, k, partitions[k], "separate"
        )
        assert np.isclose(
            model.objective(spins_from_setting(setting)), 0.0
        )

    def test_weights_shape(self, small_table, small_partition):
        from repro.boolean.boolean_matrix import BooleanMatrix

        matrix = BooleanMatrix.from_function(small_table, 0, small_partition)
        weights, offset = separate_mode_weights(matrix)
        assert weights.shape == (4, 8)
        assert np.isfinite(offset)


class TestJointMode:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_objective_equals_whole_word_med(self, seed):
        rng, table, partition, k = random_instance(seed)
        # perturb other components to simulate mid-framework state
        approx = table
        for other in range(table.n_outputs):
            if other == k:
                continue
            other_partition = random_partition(
                table.n_inputs, len(partition.free), rng
            )
            approx = apply_column_setting(
                approx, other, other_partition,
                random_column_setting(
                    other_partition.n_rows, other_partition.n_cols, rng
                ),
            )
        model = build_core_cop_model(table, approx, k, partition, "joint")
        for _ in range(5):
            setting = random_column_setting(model.n_rows, model.n_cols, rng)
            objective = model.objective(spins_from_setting(setting))
            candidate = apply_column_setting(approx, k, partition, setting)
            assert np.isclose(
                objective, mean_error_distance(table, candidate)
            )

    def test_first_round_uses_exact_others(self, rng):
        """With approx == exact, joint objective is MED of replacing k."""
        table = random_function(5, 3, rng)
        partition = random_partition(5, 2, rng)
        model = build_core_cop_model(table, table, 2, partition, "joint")
        setting = random_column_setting(model.n_rows, model.n_cols, rng)
        candidate = apply_column_setting(table, 2, partition, setting)
        assert np.isclose(
            model.objective(spins_from_setting(setting)),
            mean_error_distance(table, candidate),
        )

    def test_msb_weighting(self, rng):
        """An error on component k costs 2^k in the joint objective."""
        table = random_function(4, 3, rng)
        partition = random_partition(4, 2, rng)
        for k in range(3):
            weights, _ = joint_mode_weights(table, table, k, partition)
            # all deviations D are 0 at the exact state, so q = +-2^k
            assert np.allclose(
                np.abs(weights / table.probabilities[partition.index_of_cell]),
                float(1 << k),
            )

    def test_shape_mismatch_rejected(self, rng):
        a = random_function(4, 3, rng)
        b = random_function(4, 2, rng)
        partition = random_partition(4, 2, rng)
        with pytest.raises(DimensionError):
            joint_mode_weights(a, b, 0, partition)

    def test_component_range_checked(self, rng):
        table = random_function(4, 2, rng)
        partition = random_partition(4, 2, rng)
        with pytest.raises(DimensionError):
            joint_mode_weights(table, table, 5, partition)


class TestLinearErrorTerms:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_linear_form_matches_model(self, seed):
        """constant + sum(W * O_hat) == model objective for any setting."""
        rng, table, partition, k = random_instance(seed)
        for mode in ("separate", "joint"):
            weights, constant = linear_error_terms(
                table, table, k, partition, mode
            )
            model = build_core_cop_model(table, table, k, partition, mode)
            setting = random_column_setting(model.n_rows, model.n_cols, rng)
            direct = constant + float(
                (weights * setting.reconstruct()).sum()
            )
            assert np.isclose(
                direct, model.objective(spins_from_setting(setting))
            )

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_constant_is_partition_independent(self, seed):
        """The constant (and total weight) do not depend on the partition."""
        rng, table, _, k = random_instance(seed)
        n = table.n_inputs
        w1 = random_partition(n, 1, rng)
        w2 = random_partition(n, n - 1, rng)
        for mode in ("separate", "joint"):
            _, c1 = linear_error_terms(table, table, k, w1, mode)
            _, c2 = linear_error_terms(table, table, k, w2, mode)
            assert np.isclose(c1, c2)

    def test_unknown_mode_rejected(self, rng):
        table = random_function(4, 2, rng)
        partition = random_partition(4, 2, rng)
        with pytest.raises(ConfigurationError):
            linear_error_terms(table, table, 0, partition, "fused")
        with pytest.raises(ConfigurationError):
            build_core_cop_model(table, table, 0, partition, "fused")


class TestSpinEncoding:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_round_trip(self, seed):
        rng = np.random.default_rng(seed)
        r, c = int(rng.integers(1, 6)), int(rng.integers(1, 6))
        setting = random_column_setting(r, c, rng)
        decoded = setting_from_spins(spins_from_setting(setting), r, c)
        assert np.array_equal(decoded.pattern1, setting.pattern1)
        assert np.array_equal(decoded.pattern2, setting.pattern2)
        assert np.array_equal(decoded.column_types, setting.column_types)

    def test_shape_check(self):
        with pytest.raises(DimensionError):
            setting_from_spins(np.ones(5), 2, 2)
