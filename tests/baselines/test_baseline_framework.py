"""Tests for the baseline outer loop (:mod:`repro.baselines.framework`)."""

import numpy as np
import pytest

from repro.baselines.ba import BASolver
from repro.baselines.dalta import DaltaHeuristicSolver
from repro.baselines.framework import BaselineDecomposer
from repro.boolean.boolean_matrix import BooleanMatrix
from repro.boolean.decomposition import has_row_decomposition
from repro.boolean.metrics import mean_error_distance
from repro.boolean.random_functions import random_decomposable_function
from repro.boolean.truth_table import TruthTable
from repro.core.config import FrameworkConfig
from repro.errors import DimensionError


def fast_config(**overrides):
    base = dict(
        mode="joint", free_size=2, n_partitions=4, n_rounds=2, seed=0
    )
    base.update(overrides)
    return FrameworkConfig(**base)


@pytest.fixture(scope="module")
def dalta_result():
    table = TruthTable.from_integer_function(
        lambda x: (x * x) % 32, n_inputs=5, n_outputs=5
    )
    decomposer = BaselineDecomposer(DaltaHeuristicSolver(), fast_config())
    return table, decomposer.decompose(table)


class TestBaselineDecomposer:
    def test_all_components_decomposed(self, dalta_result):
        _, result = dalta_result
        assert sorted(result.components) == list(range(5))

    def test_all_components_satisfy_theorem1(self, dalta_result):
        _, result = dalta_result
        for k, accepted in result.components.items():
            matrix = BooleanMatrix.from_function(
                result.approx, k, accepted.partition
            )
            assert has_row_decomposition(matrix)

    def test_med_consistent(self, dalta_result):
        table, result = dalta_result
        assert np.isclose(
            result.med, mean_error_distance(table, result.approx)
        )

    def test_med_trace_monotone(self, dalta_result):
        _, result = dalta_result
        trace = result.med_trace
        assert all(
            trace[i + 1] <= trace[i] + 1e-12 for i in range(len(trace) - 1)
        )

    def test_lut_accounting(self, dalta_result):
        _, result = dalta_result
        # row-based cascade cost is also c + 2r per component
        assert result.total_lut_bits == 5 * (8 + 2 * 4)
        assert result.flat_lut_bits == 5 * 32
        assert result.compression_ratio == 2.0

    def test_free_size_checked(self):
        table = TruthTable.random(3, 2, np.random.default_rng(0))
        decomposer = BaselineDecomposer(
            DaltaHeuristicSolver(), fast_config(free_size=3)
        )
        with pytest.raises(DimensionError):
            decomposer.decompose(table)

    def test_ba_solver_plugs_in(self):
        table = TruthTable.from_integer_function(
            lambda x: (x + 3) % 16, n_inputs=4, n_outputs=4
        )
        decomposer = BaselineDecomposer(
            BASolver(n_moves=100), fast_config(n_partitions=2, n_rounds=1)
        )
        result = decomposer.decompose(table)
        assert sorted(result.components) == list(range(4))

    def test_exactly_decomposable_solved(self, rng):
        table, _ = random_decomposable_function(5, 2, 2, rng)
        decomposer = BaselineDecomposer(
            DaltaHeuristicSolver(),
            fast_config(n_partitions=10, n_rounds=1),
        )
        result = decomposer.decompose(table)
        assert np.isclose(result.med, 0.0, atol=1e-12)

    def test_deterministic_given_seed(self):
        table = TruthTable.from_integer_function(
            lambda x: (x * 3 + 1) % 16, n_inputs=4, n_outputs=4
        )
        a = BaselineDecomposer(
            DaltaHeuristicSolver(), fast_config()
        ).decompose(table)
        b = BaselineDecomposer(
            DaltaHeuristicSolver(), fast_config()
        ).decompose(table)
        assert np.isclose(a.med, b.med)

    def test_separate_mode(self):
        table = TruthTable.from_integer_function(
            lambda x: (x * 7) % 16, n_inputs=4, n_outputs=4
        )
        decomposer = BaselineDecomposer(
            DaltaHeuristicSolver(), fast_config(mode="separate", n_rounds=1)
        )
        result = decomposer.decompose(table)
        assert sorted(result.components) == list(range(4))
