"""Tests for the three row-COP inner solvers: DALTA, DALTA-ILP, BA."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.ba import BASolver
from repro.baselines.dalta import DaltaHeuristicSolver
from repro.baselines.dalta_ilp import DaltaIlpSolver, build_row_cop_ilp
from repro.baselines.row_core_cop import exhaustive_row_cop, row_cop_cost
from repro.errors import SolverError


@pytest.fixture
def tiny_weights(rng):
    return rng.normal(size=(4, 6))


class TestDaltaHeuristic:
    def test_objective_includes_constant(self, tiny_weights, rng):
        base = DaltaHeuristicSolver().solve_weights(tiny_weights, 0.0, rng)
        shifted = DaltaHeuristicSolver().solve_weights(
            tiny_weights, 2.5, rng
        )
        assert np.isclose(shifted.objective - base.objective, 2.5)

    def test_objective_matches_setting(self, tiny_weights, rng):
        sol = DaltaHeuristicSolver().solve_weights(tiny_weights, 1.0, rng)
        assert np.isclose(
            sol.objective, row_cop_cost(tiny_weights, sol.setting) + 1.0
        )

    def test_exact_on_decomposable_instances(self, rng):
        """Separate-mode weights of a decomposable matrix: optimum 0."""
        from repro.boolean.random_functions import (
            random_column_decomposable_matrix,
        )

        matrix, _ = random_column_decomposable_matrix(4, 8, rng)
        probs = np.full(matrix.values.shape, 1 / 32)
        weights = probs * (1 - 2 * matrix.values.astype(float))
        constant = float((probs * matrix.values).sum())
        sol = DaltaHeuristicSolver().solve_weights(weights, constant, rng)
        assert np.isclose(sol.objective, 0.0, atol=1e-12)

    def test_candidate_cap_respected(self, rng):
        solver = DaltaHeuristicSolver(max_row_candidates=2)
        sol = solver.solve_weights(rng.normal(size=(8, 5)), 0.0, rng)
        # 2 row candidates + majority + zeros
        assert sol.n_evaluations <= 4

    def test_validation(self):
        with pytest.raises(SolverError):
            DaltaHeuristicSolver(max_row_candidates=0)


class TestBA:
    def test_never_worse_than_exhaustive(self, rng):
        weights = rng.normal(size=(3, 5))
        _, best = exhaustive_row_cop(weights)
        sol = BASolver(n_moves=300).solve_weights(weights, 0.0, rng)
        assert sol.objective >= best - 1e-12

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_usually_finds_optimum_on_tiny_instances(self, seed):
        rng = np.random.default_rng(seed)
        weights = rng.normal(size=(3, 4))
        _, best = exhaustive_row_cop(weights)
        sol = BASolver(n_moves=500, restarts=2).solve_weights(
            weights, 0.0, np.random.default_rng(seed)
        )
        assert np.isclose(sol.objective, best, atol=1e-9)

    def test_deterministic_given_seed(self, tiny_weights):
        a = BASolver(n_moves=100).solve_weights(
            tiny_weights, 0.0, np.random.default_rng(1)
        )
        b = BASolver(n_moves=100).solve_weights(
            tiny_weights, 0.0, np.random.default_rng(1)
        )
        assert np.isclose(a.objective, b.objective)

    def test_validation(self):
        with pytest.raises(SolverError):
            BASolver(n_moves=0)
        with pytest.raises(SolverError):
            BASolver(restarts=0)


class TestDaltaIlp:
    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_matches_exhaustive_optimum(self, seed):
        rng = np.random.default_rng(seed)
        weights = rng.normal(size=(3, 5))
        _, best = exhaustive_row_cop(weights)
        sol = DaltaIlpSolver(time_limit=60).solve_weights(weights, 0.0, rng)
        assert np.isclose(sol.objective, best, atol=1e-8)

    def test_ilp_sizes(self):
        problem = build_row_cop_ilp(np.zeros((2, 3)))
        # c + 4r binaries + 2rc continuous
        assert problem.n_variables == 3 + 8 + 12
        assert problem.integrality.sum() == 3 + 8

    def test_time_budget_still_returns_solution(self, rng):
        weights = rng.normal(size=(8, 12))
        sol = DaltaIlpSolver(time_limit=0.2).solve_weights(
            weights, 0.0, rng
        )
        assert sol.setting is not None
        assert np.isclose(
            sol.objective, row_cop_cost(weights, sol.setting), atol=1e-9
        )

    def test_rejects_bad_weights(self):
        with pytest.raises(SolverError):
            build_row_cop_ilp(np.zeros(3))
