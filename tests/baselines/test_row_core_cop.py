"""Tests for the shared row-based core-COP machinery."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.row_core_cop import (
    exhaustive_row_cop,
    majority_pattern,
    optimal_row_types,
    row_cop_cost,
    row_type_costs,
)
from repro.boolean.decomposition import RowSetting, RowType
from repro.errors import DimensionError, SolverError


class TestRowTypeCosts:
    def test_zeros_type_costs_nothing(self, rng):
        weights = rng.normal(size=(3, 4))
        costs = row_type_costs(weights, np.zeros(4, dtype=np.uint8))
        assert np.allclose(costs[:, RowType.ZEROS], 0.0)

    def test_ones_type_is_row_sum(self, rng):
        weights = rng.normal(size=(3, 4))
        costs = row_type_costs(weights, np.zeros(4, dtype=np.uint8))
        assert np.allclose(costs[:, RowType.ONES], weights.sum(axis=1))

    def test_pattern_and_complement_sum_to_ones(self, rng):
        weights = rng.normal(size=(3, 4))
        pattern = rng.integers(0, 2, 4)
        costs = row_type_costs(weights, pattern)
        assert np.allclose(
            costs[:, RowType.PATTERN] + costs[:, RowType.COMPLEMENT],
            costs[:, RowType.ONES],
        )

    def test_shape_mismatch(self):
        with pytest.raises(DimensionError):
            row_type_costs(np.zeros((2, 3)), np.zeros(2))


class TestOptimalRowTypes:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_per_row_optimality(self, seed):
        """No other S achieves a lower cost for the same V."""
        rng = np.random.default_rng(seed)
        r, c = int(rng.integers(1, 4)), int(rng.integers(1, 5))
        weights = rng.normal(size=(r, c))
        pattern = rng.integers(0, 2, c, dtype=np.uint8)
        types, cost = optimal_row_types(weights, pattern)
        for other in itertools.product(range(4), repeat=r):
            setting = RowSetting(pattern, np.array(other, dtype=np.int8))
            assert cost <= row_cop_cost(weights, setting) + 1e-12

    def test_cost_matches_reconstruction(self, rng):
        weights = rng.normal(size=(3, 5))
        pattern = rng.integers(0, 2, 5, dtype=np.uint8)
        types, cost = optimal_row_types(weights, pattern)
        assert np.isclose(
            cost, row_cop_cost(weights, RowSetting(pattern, types))
        )


class TestExhaustive:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_no_pattern_beats_exhaustive(self, seed):
        rng = np.random.default_rng(seed)
        weights = rng.normal(size=(3, 5))
        _, best = exhaustive_row_cop(weights)
        for _ in range(20):
            pattern = rng.integers(0, 2, 5, dtype=np.uint8)
            _, cost = optimal_row_types(weights, pattern)
            assert best <= cost + 1e-12

    def test_refuses_wide_matrices(self):
        with pytest.raises(SolverError):
            exhaustive_row_cop(np.zeros((2, 25)))


class TestMajorityPattern:
    def test_unweighted_majority(self):
        values = np.array([[1, 0], [1, 0], [0, 1]])
        probs = np.ones((3, 2))
        assert np.array_equal(majority_pattern(values, probs), [1, 0])

    def test_weighting_flips_result(self):
        values = np.array([[1], [0], [0]])
        probs = np.array([[10.0], [1.0], [1.0]])
        assert np.array_equal(majority_pattern(values, probs), [1])

    def test_shape_mismatch(self):
        with pytest.raises(DimensionError):
            majority_pattern(np.zeros((2, 2)), np.zeros((2, 3)))
