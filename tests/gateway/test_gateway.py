"""Gateway end-to-end and robustness tests (live ThreadingHTTPServer).

The acceptance scenario: ``GatewayClient`` submit→poll→fetch against a
real HTTP server must yield a design *bit-identical* (same artifact
key, same design document) to a direct ``IsingDecomposer.decompose``
with the same seed.  Around it: idempotent resubmission, queue-depth
backpressure with ``Retry-After`` and zero job loss, bearer auth, the
per-client rate limit, strict JobSpecV1 validation, size limits, and
client retry/backoff behavior.
"""

import dataclasses
import json
import urllib.error
import urllib.request

import pytest

from repro.core import IsingDecomposer
from repro.errors import GatewayError
from repro.gateway import (
    DecompositionGateway,
    GatewayClient,
    GatewayConfig,
    RetryPolicy,
)
from repro.serialization import result_to_dict
from repro.service import (
    DecompositionService,
    JobSpec,
    SchedulerPolicy,
    artifact_key,
)
from repro.workloads import build_workload

FAST_POLICY = SchedulerPolicy(
    lease_seconds=30.0,
    retry_backoff_seconds=0.01,
    poll_interval_seconds=0.01,
)

NO_RETRY = RetryPolicy(max_retries=0)


def make_service(tmp_path, n_workers=2):
    return DecompositionService(
        tmp_path / "svc", n_workers=n_workers, policy=FAST_POLICY
    )


def spec_for(fast_config, seed=None, workload="cos"):
    config = (
        fast_config
        if seed is None
        else dataclasses.replace(fast_config, seed=seed)
    )
    return JobSpec(workload=workload, n_inputs=6, config=config)


class TestEndToEnd:
    def test_submit_poll_fetch_matches_direct_decompose(
        self, tmp_path, fast_config
    ):
        """The ISSUE acceptance criterion: remote round trip is
        bit-identical to the in-process framework call."""
        service = make_service(tmp_path)
        spec = spec_for(fast_config)
        with DecompositionGateway(service, GatewayConfig(port=0)) as gw:
            client = GatewayClient(gw.url)
            job, deduplicated = client.submit(spec)
            assert not deduplicated
            assert job.state == "queued"

            # same content address as a local submission would get
            table = build_workload("cos", n_inputs=6).table
            assert job.artifact_key == artifact_key(table, fast_config)

            pool = service.serve_forever()
            try:
                record = client.wait(job.id, timeout_seconds=120)
            finally:
                pool.stop()
            assert record.state == "done"

            remote_design = client.fetch_design_dict(job.id)
            direct = IsingDecomposer(fast_config).decompose(table)
            assert remote_design == result_to_dict(direct)

            # the envelope carries the provenance the service wrote
            envelope = client.result(job.id)
            assert envelope["design"] == remote_design

    def test_resubmission_is_idempotent(self, tmp_path, fast_config):
        service = make_service(tmp_path)
        spec = spec_for(fast_config)
        with DecompositionGateway(service, GatewayConfig(port=0)) as gw:
            client = GatewayClient(gw.url)
            first, dedup_first = client.submit(spec)
            second, dedup_second = client.submit(spec)
            assert not dedup_first
            assert dedup_second
            assert first.id == second.id
            # a different seed is new work, not a duplicate
            third, dedup_third = client.submit(
                spec_for(fast_config, seed=99)
            )
            assert not dedup_third
            assert third.id != first.id

    def test_status_and_jobs_and_healthz(self, tmp_path, fast_config):
        service = make_service(tmp_path)
        with DecompositionGateway(service, GatewayConfig(port=0)) as gw:
            client = GatewayClient(gw.url)
            health = client.healthz()
            assert health["status"] == "ok"
            assert health["pending"] == 0
            client.submit(spec_for(fast_config))
            assert client.status()["jobs"]["queued"] == 1
            jobs = client.jobs()
            assert len(jobs) == 1
            assert jobs[0].spec.workload == "cos"
            assert client.jobs(state="done") == []

    def test_metrics_exposition(self, tmp_path, fast_config):
        service = make_service(tmp_path)
        with DecompositionGateway(service, GatewayConfig(port=0)) as gw:
            client = GatewayClient(gw.url)
            client.healthz()
            text = client.metrics_text()
            assert "repro_service_jobs_queued" in text
            assert "repro_gateway_requests" in text

    def test_unknown_job_is_404_and_unfinished_result_is_409(
        self, tmp_path, fast_config
    ):
        service = make_service(tmp_path)
        with DecompositionGateway(service, GatewayConfig(port=0)) as gw:
            client = GatewayClient(gw.url, retry=NO_RETRY)
            with pytest.raises(GatewayError) as excinfo:
                client.job("job-does-not-exist")
            assert excinfo.value.status == 404
            job, _ = client.submit(spec_for(fast_config))
            with pytest.raises(GatewayError) as excinfo:
                client.result(job.id)
            assert excinfo.value.status == 409
            assert "queued" in str(excinfo.value)

    def test_graceful_stop_releases_the_port(self, tmp_path, fast_config):
        service = make_service(tmp_path)
        gw = DecompositionGateway(service, GatewayConfig(port=0))
        gw.start()
        client = GatewayClient(gw.url, retry=NO_RETRY)
        assert client.healthz()["status"] == "ok"
        gw.stop()
        with pytest.raises(GatewayError) as excinfo:
            client.healthz()
        assert excinfo.value.status == 0


class TestBackpressure:
    def test_full_queue_returns_503_with_retry_after_and_no_job_loss(
        self, tmp_path, fast_config
    ):
        """Saturate the queue (no workers running): accepted jobs get
        201, overflow gets 503 + Retry-After, dedup still works, and
        once the queue drains everything completes — nothing is lost."""
        service = make_service(tmp_path)
        config = GatewayConfig(
            port=0, max_queue_depth=2, retry_after_seconds=7.5
        )
        with DecompositionGateway(service, config) as gw:
            client = GatewayClient(gw.url, retry=NO_RETRY)
            accepted = [
                client.submit(spec_for(fast_config, seed=seed))[0]
                for seed in (1, 2)
            ]
            with pytest.raises(GatewayError) as excinfo:
                client.submit(spec_for(fast_config, seed=3))
            assert excinfo.value.status == 503
            assert excinfo.value.retry_after == pytest.approx(7.5)

            # resubmitting *queued* work still succeeds on a full queue
            twin, deduplicated = client.submit(
                spec_for(fast_config, seed=1)
            )
            assert deduplicated
            assert twin.id == accepted[0].id

            # the rejection lost nothing: both accepted jobs are intact
            assert service.store.pending() == 2
            service.run_until_drained(timeout=120)
            for job in accepted:
                assert client.job(job.id).state == "done"

            # ... and the rejected spec submits cleanly afterwards
            retried, deduplicated = client.submit(
                spec_for(fast_config, seed=3)
            )
            assert not deduplicated
            service.run_until_drained(timeout=120)
            assert client.job(retried.id).state == "done"

    def test_client_backoff_honors_retry_after(self, tmp_path,
                                               fast_config):
        """With retries enabled, a 503 is retried after at least the
        server's Retry-After hint, and the retry can succeed."""
        service = make_service(tmp_path)
        config = GatewayConfig(
            port=0, max_queue_depth=1, retry_after_seconds=0.05
        )
        sleeps = []
        with DecompositionGateway(service, config) as gw:
            blocker, _ = GatewayClient(gw.url, retry=NO_RETRY).submit(
                spec_for(fast_config, seed=1)
            )

            def sleep_and_drain(seconds):
                sleeps.append(seconds)
                service.run_until_drained(timeout=120)  # queue frees up

            client = GatewayClient(
                gw.url,
                retry=RetryPolicy(
                    max_retries=2, backoff_base_seconds=0.001
                ),
                sleep=sleep_and_drain,
            )
            job, _ = client.submit(spec_for(fast_config, seed=2))
            assert job.state == "queued"
        assert sleeps, "the 503 should have triggered a backoff sleep"
        assert sleeps[0] >= 0.05  # Retry-After wins over the tiny base
        assert service.store.get(blocker.id).state == "done"


class TestAuthAndRateLimit:
    def test_bearer_auth(self, tmp_path, fast_config):
        service = make_service(tmp_path)
        config = GatewayConfig(port=0, auth_token="sesame")
        with DecompositionGateway(service, config) as gw:
            anonymous = GatewayClient(gw.url, retry=NO_RETRY)
            # healthz stays open for probes
            assert anonymous.healthz()["status"] == "ok"
            with pytest.raises(GatewayError) as excinfo:
                anonymous.jobs()
            assert excinfo.value.status == 401
            wrong = GatewayClient(gw.url, token="friend", retry=NO_RETRY)
            with pytest.raises(GatewayError) as excinfo:
                wrong.jobs()
            assert excinfo.value.status == 401
            right = GatewayClient(gw.url, token="sesame", retry=NO_RETRY)
            assert right.jobs() == []
            job, _ = right.submit(spec_for(fast_config))
            assert job.state == "queued"

    def test_rate_limit_returns_429_with_retry_after(self, tmp_path):
        service = make_service(tmp_path)
        config = GatewayConfig(
            port=0, rate_limit_per_second=0.001, rate_limit_burst=2
        )
        with DecompositionGateway(service, config) as gw:
            client = GatewayClient(gw.url, retry=NO_RETRY)
            client.jobs()
            client.jobs()  # burst exhausted
            with pytest.raises(GatewayError) as excinfo:
                client.jobs()
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after is not None
            assert excinfo.value.retry_after > 0


class TestValidation:
    def _post(self, url, payload):
        data = json.dumps(payload).encode()
        request = urllib.request.Request(
            f"{url}/v1/jobs",
            data=data,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())

    def test_strict_jobspec_rejections(self, tmp_path, fast_config):
        service = make_service(tmp_path)
        wire = spec_for(fast_config).to_wire()
        with DecompositionGateway(service, GatewayConfig(port=0)) as gw:
            status, body = self._post(gw.url, {**wire, "surprise": 1})
            assert status == 400
            assert "surprise" in body["error"]["message"]
            assert body["error"]["code"] == "invalid_request"

            status, body = self._post(
                gw.url, {**wire, "schema_version": 999}
            )
            assert status == 400
            assert "schema_version" in body["error"]["message"]

            status, body = self._post(gw.url, {"hello": "world"})
            assert status == 400
            assert "repro-jobspec" in body["error"]["message"]

            # nothing slipped into the queue
            assert service.store.pending() == 0

    def test_invalid_json_and_oversized_bodies(self, tmp_path,
                                               fast_config):
        service = make_service(tmp_path)
        config = GatewayConfig(port=0, max_request_bytes=256)
        with DecompositionGateway(service, config) as gw:
            request = urllib.request.Request(
                f"{gw.url}/v1/jobs", data=b"{not json", method="POST"
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request)
            assert excinfo.value.code == 400

            big = json.dumps(spec_for(fast_config).to_wire()).encode()
            assert len(big) > 256
            request = urllib.request.Request(
                f"{gw.url}/v1/jobs", data=big, method="POST"
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request)
            assert excinfo.value.code == 413

    def test_unknown_endpoint_is_404(self, tmp_path):
        service = make_service(tmp_path)
        with DecompositionGateway(service, GatewayConfig(port=0)) as gw:
            client = GatewayClient(gw.url, retry=NO_RETRY)
            with pytest.raises(GatewayError) as excinfo:
                client._request_json("GET", "/v2/everything")
            assert excinfo.value.status == 404


class TestAccessLog:
    def test_jsonl_access_log_records_requests(self, tmp_path,
                                               fast_config):
        service = make_service(tmp_path)
        log_path = tmp_path / "access.jsonl"
        config = GatewayConfig(port=0, access_log_path=log_path)
        with DecompositionGateway(service, config) as gw:
            client = GatewayClient(gw.url)
            client.healthz()
            client.submit(spec_for(fast_config))
        lines = [
            json.loads(line)
            for line in log_path.read_text().splitlines()
        ]
        assert len(lines) == 2
        assert lines[0]["path"] == "/v1/healthz"
        assert lines[0]["status"] == 200
        assert lines[1]["method"] == "POST"
        assert lines[1]["status"] == 201
        assert all(
            entry["duration_ms"] >= 0 and entry["bytes_out"] > 0
            for entry in lines
        )
