"""Client backoff under sustained throttling, against a scripted server.

The server here is a plain stdlib HTTP server that replays a scripted
sequence of responses (then repeats the last one forever) and records
every request it saw — so the tests can assert *bounded* request
counts, honored ``Retry-After`` hints, and capped jittered delays
without any real sleeping (the transport's ``sleep`` is injected).
"""

import contextlib
import json
import socket
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.errors import GatewayError
from repro.gateway import GatewayClient, HttpTransport, RetryPolicy
from repro.gateway.transport import parse_error_body


def _envelope(status, code, message, retry_after=None):
    error = {"code": code, "message": message}
    if retry_after is not None:
        error["retry_after"] = retry_after
    return json.dumps({"error": error, "status": status}).encode()


class _ScriptedHandler(BaseHTTPRequestHandler):
    def log_message(self, *args):  # keep test output clean
        pass

    def _serve(self):
        length = int(self.headers.get("Content-Length") or 0)
        if length:
            self.rfile.read(length)
        with self.server.lock:
            self.server.requests.append((self.command, self.path))
            if self.server.script:
                action = self.server.script.pop(0)
            else:
                action = self.server.fallback
        body = action.get("body", b"{}")
        self.send_response(action["status"])
        for key, value in action.get("headers", {}).items():
            self.send_header(key, value)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    do_GET = _serve
    do_POST = _serve


@contextlib.contextmanager
def scripted_server(script, fallback=None):
    """Yield ``(server, url)``; replays ``script`` then ``fallback``."""
    server = ThreadingHTTPServer(("127.0.0.1", 0), _ScriptedHandler)
    server.lock = threading.Lock()
    server.requests = []
    server.script = list(script)
    server.fallback = fallback or (script and script[-1]) or {
        "status": 200
    }
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server, f"http://127.0.0.1:{server.server_address[1]}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


class SleepRecorder:
    def __init__(self):
        self.delays = []

    def __call__(self, seconds):
        self.delays.append(seconds)


class TestBoundedRetries:
    def test_sustained_429_stops_at_the_budget(self):
        throttle = {
            "status": 429,
            "headers": {"Retry-After": "0"},
            "body": _envelope(429, "rate_limited", "submission queue full"),
        }
        sleeps = SleepRecorder()
        with scripted_server([], fallback=throttle) as (server, url):
            client = GatewayClient(
                url,
                retry=RetryPolicy(
                    max_retries=3, backoff_base_seconds=0.001
                ),
                sleep=sleeps,
            )
            with pytest.raises(GatewayError) as excinfo:
                client.healthz()
        # max_retries+1 requests, then give up — no retry storm
        assert len(server.requests) == 4
        assert len(sleeps.delays) == 3
        exc = excinfo.value
        assert exc.status == 429
        assert exc.code == "rate_limited"
        assert "submission queue full" in str(exc)

    def test_no_retry_policy_is_single_shot(self):
        shed = {
            "status": 503,
            "body": _envelope(503, "overloaded", "too many in flight"),
        }
        sleeps = SleepRecorder()
        with scripted_server([], fallback=shed) as (server, url):
            client = GatewayClient(
                url, retry=RetryPolicy(max_retries=0), sleep=sleeps
            )
            with pytest.raises(GatewayError) as excinfo:
                client.healthz()
        assert len(server.requests) == 1
        assert sleeps.delays == []
        assert excinfo.value.code == "overloaded"

    def test_non_retryable_status_never_retries(self):
        bad = {
            "status": 400,
            "body": _envelope(400, "invalid_request", "schema_version"),
        }
        with scripted_server([], fallback=bad) as (server, url):
            client = GatewayClient(url, sleep=SleepRecorder())
            with pytest.raises(GatewayError) as excinfo:
                client.healthz()
        assert len(server.requests) == 1
        assert excinfo.value.status == 400
        assert excinfo.value.code == "invalid_request"

    def test_connection_failures_surface_as_status_zero(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = probe.getsockname()[1]
        client = GatewayClient(
            f"http://127.0.0.1:{free_port}",
            retry=RetryPolicy(max_retries=1, backoff_base_seconds=0.001),
        )
        with pytest.raises(GatewayError) as excinfo:
            client.healthz()
        assert excinfo.value.status == 0
        assert excinfo.value.code is None


class TestRetryAfter:
    def test_header_hint_stretches_the_computed_delay(self):
        sleeps = SleepRecorder()
        script = [
            {
                "status": 503,
                "headers": {"Retry-After": "0.5"},
                "body": _envelope(503, "unavailable", "warming up"),
            },
            {"status": 200, "body": b'{"status": "ok"}'},
        ]
        with scripted_server(script) as (server, url):
            client = GatewayClient(
                url,
                retry=RetryPolicy(
                    max_retries=2, backoff_base_seconds=0.001
                ),
                sleep=sleeps,
            )
            assert client.healthz() == {"status": "ok"}
        assert len(server.requests) == 2
        assert sleeps.delays == [0.5]  # hint wins over 1ms backoff

    def test_body_hint_used_when_header_absent(self):
        sleeps = SleepRecorder()
        script = [
            {
                "status": 429,
                "body": _envelope(
                    429, "rate_limited", "slow down", retry_after=0.75
                ),
            },
            {"status": 200, "body": b'{"status": "ok"}'},
        ]
        with scripted_server(script) as (_, url):
            client = GatewayClient(
                url,
                retry=RetryPolicy(
                    max_retries=2, backoff_base_seconds=0.001
                ),
                sleep=sleeps,
            )
            client.healthz()
        assert sleeps.delays == [0.75]


class TestBackoffSchedule:
    def test_deterministic_exponential_with_cap(self):
        transport = HttpTransport(
            "http://x",
            retry=RetryPolicy(
                backoff_base_seconds=0.25, backoff_max_seconds=2.0
            ),
        )
        delays = [transport._backoff_delay(a, None) for a in range(5)]
        assert delays == [0.25, 0.5, 1.0, 2.0, 2.0]

    def test_jitter_varies_but_respects_the_cap(self):
        transport = HttpTransport(
            "http://x",
            retry=RetryPolicy(
                backoff_base_seconds=1.0,
                backoff_max_seconds=1.5,
                jitter_ratio=0.5,
            ),
        )
        transport._jitter_rng.seed(42)
        delays = [transport._backoff_delay(3, None) for _ in range(50)]
        assert all(0.0 <= d <= 1.5 for d in delays)
        assert len(set(delays)) > 1  # actually jittered
        # a 0.5 ratio around a capped 1.5s delay must dip below the cap
        assert min(delays) < 1.5

    def test_hint_wins_even_over_the_cap(self):
        transport = HttpTransport(
            "http://x",
            retry=RetryPolicy(
                backoff_max_seconds=1.0, jitter_ratio=0.25
            ),
        )
        assert transport._backoff_delay(9, 4.0) == 4.0


class TestErrorBodyParsing:
    def test_canonical_envelope(self):
        message, code, hint = parse_error_body(
            _envelope(429, "rate_limited", "busy", retry_after=2), 429
        )
        assert (message, code, hint) == ("busy", "rate_limited", 2.0)

    def test_legacy_string_error(self):
        message, code, hint = parse_error_body(
            json.dumps({"error": "boom", "status": 400}).encode(), 400
        )
        assert (message, code, hint) == ("boom", None, None)

    def test_non_json_body(self):
        message, code, hint = parse_error_body(b"<html>502</html>", 502)
        assert (message, code, hint) == ("HTTP 502", None, None)

    def test_bad_retry_after_ignored(self):
        body = json.dumps(
            {"error": {"code": "x", "message": "m", "retry_after": "soon"}}
        ).encode()
        assert parse_error_body(body, 503) == ("m", "x", None)
