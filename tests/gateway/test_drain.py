"""Graceful drain: SIGTERM must wake parked claim long-polls at once.

A remote worker parks in ``POST /v1/workers/claim`` for up to
``claim_wait_seconds`` when the queue is empty.  ``request_drain()`` —
what the CLI's SIGTERM handler calls — has to wake every parked poll
immediately (they answer 204 + Retry-After) instead of leaving the
shutdown to wait out the longest poll, and it must be safe to call
from a signal handler (no locks, no joins).
"""

import json
import threading
import time
import urllib.request

from repro.gateway import DecompositionGateway, GatewayConfig
from repro.service import DecompositionService, SchedulerPolicy

POLICY = SchedulerPolicy(
    lease_seconds=30.0,
    retry_backoff_seconds=0.01,
    poll_interval_seconds=0.01,
)


def _claim(url, wait_seconds):
    request = urllib.request.Request(
        f"{url}/v1/workers/claim",
        data=json.dumps(
            {"worker": "w-drain", "wait": wait_seconds}
        ).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    return urllib.request.urlopen(request, timeout=30)


class TestDrainWakesLongPoll:
    def test_request_drain_wakes_parked_claim(self, tmp_path):
        service = DecompositionService(
            tmp_path / "svc", n_workers=1, policy=POLICY
        )
        config = GatewayConfig(
            port=0, claim_wait_seconds=20.0, claim_poll_seconds=0.05
        )
        with DecompositionGateway(service, config) as gateway:
            result = {}

            def park():
                started = time.monotonic()
                response = _claim(gateway.url, 20.0)
                result["elapsed"] = time.monotonic() - started
                result["status"] = response.status
                result["retry_after"] = response.headers["Retry-After"]

            thread = threading.Thread(target=park)
            thread.start()
            time.sleep(0.3)  # let the poll park on the empty queue
            gateway.request_drain()
            thread.join(timeout=5.0)
            assert not thread.is_alive(), "claim long-poll never woke"

        # woke on the drain signal, not the 20s poll deadline
        assert result["elapsed"] < 5.0
        assert result["status"] == 204
        assert float(result["retry_after"]) > 0

    def test_stop_also_wakes_parked_claim(self, tmp_path):
        # the non-signal path: plain stop() must drain identically
        service = DecompositionService(
            tmp_path / "svc", n_workers=1, policy=POLICY
        )
        gateway = DecompositionGateway(
            service,
            GatewayConfig(
                port=0, claim_wait_seconds=20.0, claim_poll_seconds=0.05
            ),
        )
        gateway.start()
        result = {}

        def park():
            started = time.monotonic()
            response = _claim(gateway.url, 20.0)
            result["elapsed"] = time.monotonic() - started
            result["status"] = response.status

        thread = threading.Thread(target=park)
        thread.start()
        time.sleep(0.3)
        started_stop = time.monotonic()
        gateway.stop()
        stop_elapsed = time.monotonic() - started_stop
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert result["status"] == 204
        assert stop_elapsed < 5.0  # stop never waits out the poll
