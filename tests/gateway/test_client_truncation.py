"""Client behavior when the connection dies mid-response body.

``urllib`` raises raw ``http.client`` errors (``IncompleteRead``) from
``response.read()`` — these are *not* ``OSError`` subclasses, so a
naive handler misses them and the exception escapes as an unretried
crash.  The client must map them to a retryable connection-level
``GatewayError`` and retry idempotent requests.

Exercised two ways: a real socket server that advertises a
``Content-Length`` it never delivers, and the deterministic
``client.connection_drop`` fault seam against a live gateway.
"""

import socket
import threading

import pytest

from repro.errors import GatewayError
from repro.gateway import (
    DecompositionGateway,
    GatewayClient,
    GatewayConfig,
    RetryPolicy,
)
from repro.resilience import FaultPlan, FaultRule, fault_injection
from repro.service import DecompositionService, JobSpec, SchedulerPolicy


GOOD_BODY = b'{"status": "ok"}'


class TruncatingServer:
    """Serve ``n_truncated`` short-bodied responses, then honest ones.

    Each truncated response carries a ``Content-Length`` far larger
    than the bytes actually sent before the connection is closed —
    exactly what a gateway dying mid-write looks like on the wire.
    """

    def __init__(self, n_truncated=1):
        self.n_truncated = n_truncated
        self.requests_served = 0
        self._lock = threading.Lock()
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.url = f"http://127.0.0.1:{self._sock.getsockname()[1]}"
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        while True:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return  # listener closed
            with conn:
                # drain the request head; the client sends no body here
                data = b""
                while b"\r\n\r\n" not in data:
                    chunk = conn.recv(4096)
                    if not chunk:
                        break
                    data += chunk
                with self._lock:
                    truncate = self.requests_served < self.n_truncated
                    self.requests_served += 1
                if truncate:
                    head = (
                        b"HTTP/1.1 200 OK\r\n"
                        b"Content-Type: application/json\r\n"
                        b"Content-Length: 4096\r\n\r\n"
                    )
                    conn.sendall(head + GOOD_BODY[:5])
                    # close with 4091 promised bytes never sent
                else:
                    head = (
                        b"HTTP/1.1 200 OK\r\n"
                        b"Content-Type: application/json\r\n"
                        + f"Content-Length: {len(GOOD_BODY)}\r\n\r\n".encode()
                    )
                    conn.sendall(head + GOOD_BODY)

    def close(self):
        self._sock.close()


@pytest.fixture
def truncating_server():
    server = TruncatingServer(n_truncated=1)
    yield server
    server.close()


class TestTruncatedResponses:
    def test_get_is_retried_after_midbody_reset(self, truncating_server):
        client = GatewayClient(
            truncating_server.url,
            retry=RetryPolicy(max_retries=2, backoff_base_seconds=0.01),
        )
        assert client.healthz() == {"status": "ok"}
        assert truncating_server.requests_served == 2  # torn + clean

    def test_without_retries_the_error_is_typed_and_marked(self):
        server = TruncatingServer(n_truncated=10)
        try:
            client = GatewayClient(
                server.url, retry=RetryPolicy(max_retries=0)
            )
            with pytest.raises(
                GatewayError, match="dropped mid-response"
            ) as excinfo:
                client.healthz()
            # status 0 is the connection-level marker retries key on
            assert excinfo.value.status == 0
        finally:
            server.close()

    def test_drop_every_attempt_exhausts_the_budget(self):
        server = TruncatingServer(n_truncated=10)
        try:
            client = GatewayClient(
                server.url,
                retry=RetryPolicy(
                    max_retries=2, backoff_base_seconds=0.01
                ),
            )
            with pytest.raises(GatewayError, match="dropped"):
                client.healthz()
            assert server.requests_served == 3  # initial + 2 retries
        finally:
            server.close()


class TestConnectionDropSeam:
    def test_injected_drop_against_live_gateway(
        self, tmp_path, fast_config
    ):
        service = DecompositionService(
            tmp_path / "svc",
            policy=SchedulerPolicy(
                retry_backoff_seconds=0.01, poll_interval_seconds=0.01
            ),
        )
        spec = JobSpec(workload="cos", n_inputs=6, config=fast_config)
        job = service.submit(spec)
        plan = FaultPlan(
            [FaultRule(site="client.connection_drop", at_calls=(1,))],
            seed=1234,
        )
        with DecompositionGateway(service, GatewayConfig(port=0)) as gw:
            client = GatewayClient(
                gw.url,
                retry=RetryPolicy(
                    max_retries=2, backoff_base_seconds=0.01
                ),
            )
            with fault_injection(plan):
                record = client.job(job.id)
        assert record.id == job.id
        assert record.state == "queued"
        assert len(plan.events()) == 1
