"""Pagination + state filtering on job listing (store, server, client)."""

import dataclasses

import pytest

from repro.errors import GatewayError, ServiceError
from repro.gateway import (
    DecompositionGateway,
    GatewayClient,
    GatewayConfig,
    RetryPolicy,
)
from repro.service import DecompositionService, JobSpec, SchedulerPolicy

FAST_POLICY = SchedulerPolicy(
    lease_seconds=30.0,
    retry_backoff_seconds=0.01,
    poll_interval_seconds=0.01,
)

NO_RETRY = RetryPolicy(max_retries=0)


def make_service(tmp_path):
    # no worker pool: jobs stay queued, which keeps listing stable
    return DecompositionService(
        tmp_path / "svc", n_workers=1, policy=FAST_POLICY
    )


def submit_batch(service, fast_config, count, start=0):
    return [
        service.submit(
            JobSpec(
                workload="cos",
                n_inputs=6,
                config=dataclasses.replace(
                    fast_config, seed=1000 + start + i
                ),
            )
        ).id
        for i in range(count)
    ]


class TestStorePagination:
    def test_pages_partition_the_full_listing(
        self, tmp_path, fast_config
    ):
        service = make_service(tmp_path)
        submit_batch(service, fast_config, 7)
        full = [r.id for r in service.jobs_page()[0]]
        assert len(full) == 7

        walked, cursor = [], None
        pages = 0
        while True:
            records, cursor = service.jobs_page(limit=3, cursor=cursor)
            walked.extend(r.id for r in records)
            pages += 1
            if cursor is None:
                break
        assert pages == 3  # 3 + 3 + 1
        assert walked == full  # same order, no skips, no repeats

    def test_cursor_is_stable_under_mid_pagination_submissions(
        self, tmp_path, fast_config
    ):
        service = make_service(tmp_path)
        submit_batch(service, fast_config, 4)
        first, cursor = service.jobs_page(limit=2)
        assert cursor is not None

        # new work lands while a reader is mid-walk
        late = submit_batch(service, fast_config, 3, start=50)

        rest, cursor = [], cursor
        while cursor is not None:
            records, cursor = service.jobs_page(limit=2, cursor=cursor)
            rest.extend(r.id for r in records)
        walked = [r.id for r in first] + rest
        # nothing repeated, nothing lost; late arrivals sort after the
        # anchor so they appear exactly once in the continuation
        assert len(walked) == len(set(walked))
        assert set(walked) == set(
            r.id for r in service.jobs_page()[0]
        )
        assert all(job_id in walked for job_id in late)

    def test_state_filter_composes_with_limit(
        self, tmp_path, fast_config
    ):
        service = make_service(tmp_path)
        submit_batch(service, fast_config, 3)
        ordered = [r.id for r in service.jobs_page()[0]]
        queued, cursor = service.jobs_page(state="queued", limit=2)
        assert [r.id for r in queued] == ordered[:2]
        assert cursor == ordered[1]
        done, _ = service.jobs_page(state="done")
        assert done == []

    def test_invalid_arguments_raise(self, tmp_path, fast_config):
        service = make_service(tmp_path)
        submit_batch(service, fast_config, 1)
        with pytest.raises(ServiceError, match="unknown job state"):
            service.jobs_page(state="sleeping")
        with pytest.raises(ServiceError, match="limit must be"):
            service.jobs_page(limit=0)
        with pytest.raises(
            ServiceError, match="unknown pagination cursor"
        ):
            service.jobs_page(limit=2, cursor="job-never-existed")

    def test_no_limit_is_the_legacy_single_page(
        self, tmp_path, fast_config
    ):
        service = make_service(tmp_path)
        submit_batch(service, fast_config, 2)
        records, cursor = service.jobs_page()
        assert len(records) == 2
        assert cursor is None
        assert [r.id for r in service.store.list_jobs()] == [
            r.id for r in records
        ]


class TestHttpPagination:
    def test_client_pages_and_iterates(self, tmp_path, fast_config):
        service = make_service(tmp_path)
        submit_batch(service, fast_config, 5)
        ids = [r.id for r in service.jobs_page()[0]]
        with DecompositionGateway(service, GatewayConfig(port=0)) as gw:
            client = GatewayClient(gw.url, retry=NO_RETRY)
            page, cursor = client.jobs_page(limit=2)
            assert [r.id for r in page] == ids[:2]
            assert cursor == ids[1]
            assert [
                r.id for r in client.iter_jobs(page_size=2)
            ] == ids
            # unpaginated convenience walks the cursor internally
            assert [r.id for r in client.jobs()] == ids
            queued, _ = client.jobs_page(state="queued", limit=10)
            assert len(queued) == 5

    def test_bad_query_parameters_are_400_envelopes(
        self, tmp_path, fast_config
    ):
        service = make_service(tmp_path)
        submit_batch(service, fast_config, 1)
        with DecompositionGateway(service, GatewayConfig(port=0)) as gw:
            client = GatewayClient(gw.url, retry=NO_RETRY)
            for kwargs, fragment in [
                ({"limit": 0}, "limit must be"),
                ({"limit": 2, "cursor": "job-nope"}, "cursor"),
                ({"state": "sleeping"}, "unknown job state"),
            ]:
                with pytest.raises(GatewayError) as excinfo:
                    client.jobs_page(**kwargs)
                assert excinfo.value.status == 400
                assert excinfo.value.code == "invalid_request"
                assert fragment in str(excinfo.value)

    def test_non_numeric_limit_rejected_at_the_server(
        self, tmp_path, fast_config
    ):
        import json
        import urllib.error
        import urllib.request

        service = make_service(tmp_path)
        with DecompositionGateway(service, GatewayConfig(port=0)) as gw:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(gw.url + "/v1/jobs?limit=lots")
            assert excinfo.value.code == 400
            body = json.loads(excinfo.value.read())
            assert body["error"]["code"] == "invalid_request"
            assert "limit" in body["error"]["message"]
