"""Shared fixtures for the gateway tests."""

import pytest

from repro.core import CoreSolverConfig, FrameworkConfig


@pytest.fixture
def fast_config():
    """A laptop-fast but real framework configuration."""
    return FrameworkConfig(
        mode="joint",
        free_size=2,
        n_partitions=2,
        n_rounds=1,
        seed=3,
        solver=CoreSolverConfig(max_iterations=200, n_replicas=2),
    )
