"""Tests for the six continuous workloads."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.continuous import (
    CONTINUOUS_FUNCTIONS,
    continuous_table,
)
from repro.workloads.quantization import QuantizationScheme

SCHEME = QuantizationScheme(8, 8)


class TestCatalog:
    def test_all_six_present(self):
        assert sorted(CONTINUOUS_FUNCTIONS) == [
            "cos", "denoise", "erf", "exp", "ln", "tan",
        ]

    def test_paper_domains(self):
        assert CONTINUOUS_FUNCTIONS["cos"].domain == (0.0, np.pi / 2)
        assert CONTINUOUS_FUNCTIONS["ln"].domain == (1.0, 10.0)
        assert CONTINUOUS_FUNCTIONS["exp"].output_range == (0.0, 20.09)

    def test_ranges_cover_function_images(self):
        """Each declared range contains the function's image, up to the
        paper's two-decimal rounding of the endpoints (ln(10) = 2.3026
        is printed as 2.30, tan(2 pi / 5) = 3.0777 as 3.08)."""
        for name, bench in CONTINUOUS_FUNCTIONS.items():
            xs = np.linspace(bench.domain[0], bench.domain[1], 2001)
            values = bench.func(xs)
            lo, hi = bench.output_range
            assert values.min() >= lo - 5e-3, name
            assert values.max() <= hi + 5e-3, name


class TestTables:
    @pytest.mark.parametrize("name", sorted(CONTINUOUS_FUNCTIONS))
    def test_builds_and_shapes(self, name):
        table = continuous_table(name, SCHEME)
        assert table.n_inputs == 8 and table.n_outputs == 8

    def test_cos_values_spot_check(self):
        table = continuous_table("cos", SCHEME)
        # cos(0) = 1 -> full scale; cos(pi/2) = 0 -> zero
        assert table.words[0] == 255
        assert table.words[-1] == 0

    def test_exp_monotone_increasing(self):
        table = continuous_table("exp", SCHEME)
        assert (np.diff(table.words.astype(int)) >= 0).all()

    def test_denoise_matches_range(self):
        table = continuous_table("denoise", SCHEME)
        # 0.81 * exp(0) = 0.81 = range max -> full scale at x = 0
        assert table.words[0] == 255

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            continuous_table("sinh", SCHEME)
