"""Tests for :mod:`repro.workloads.quantization`."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.quantization import (
    QuantizationScheme,
    quantize_real_function,
)


class TestQuantizationScheme:
    def test_paper_schemes(self):
        small = QuantizationScheme.paper_small()
        assert (small.n_inputs, small.n_outputs) == (9, 9)
        assert small.free_size == 4 and small.bound_size == 5
        large = QuantizationScheme.paper_large()
        assert (large.n_inputs, large.n_outputs) == (16, 16)
        assert large.free_size == 7 and large.bound_size == 9

    def test_scaled_free_size_valid(self):
        for n in range(2, 20):
            scheme = QuantizationScheme(n, 4)
            assert 0 < scheme.free_size < n

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            QuantizationScheme(1, 4)
        with pytest.raises(ConfigurationError):
            QuantizationScheme(4, 0)


class TestQuantizeRealFunction:
    def test_identity_line_hits_all_levels(self):
        scheme = QuantizationScheme(4, 4)
        table = quantize_real_function(
            lambda x: x, scheme, (0.0, 1.0), (0.0, 1.0)
        )
        assert np.array_equal(table.words, np.arange(16))

    def test_endpoints_included(self):
        scheme = QuantizationScheme(3, 8)
        table = quantize_real_function(
            lambda x: x, scheme, (0.0, 7.0), (0.0, 7.0)
        )
        assert table.words[0] == 0
        assert table.words[-1] == 255

    def test_values_clipped_into_range(self):
        scheme = QuantizationScheme(3, 4)
        table = quantize_real_function(
            lambda x: 10.0 * x, scheme, (0.0, 1.0), (0.0, 1.0)
        )
        assert table.words.max() == 15

    def test_monotone_function_yields_monotone_words(self):
        scheme = QuantizationScheme(6, 6)
        table = quantize_real_function(
            np.exp, scheme, (0.0, 3.0), (0.0, 21.0)
        )
        assert (np.diff(table.words) >= 0).all()

    def test_probabilities_forwarded(self, rng):
        scheme = QuantizationScheme(3, 3)
        probs = rng.random(8)
        table = quantize_real_function(
            lambda x: x, scheme, (0.0, 1.0), (0.0, 1.0),
            probabilities=probs,
        )
        assert np.allclose(table.probabilities, probs / probs.sum())

    def test_empty_ranges_rejected(self):
        scheme = QuantizationScheme(3, 3)
        with pytest.raises(ConfigurationError):
            quantize_real_function(
                lambda x: x, scheme, (1.0, 1.0), (0.0, 1.0)
            )
        with pytest.raises(ConfigurationError):
            quantize_real_function(
                lambda x: x, scheme, (0.0, 1.0), (2.0, 1.0)
            )
