"""Tests for the extended workload kernels."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.extended import EXTENDED_FUNCTIONS, extended_table
from repro.workloads.quantization import QuantizationScheme

SCHEME = QuantizationScheme(8, 8)


class TestCatalog:
    def test_expected_kernels_present(self):
        assert {"sigmoid", "tanh", "gelu", "sqrt", "reciprocal",
                "rsqrt", "sin", "log2"} <= set(EXTENDED_FUNCTIONS)

    def test_ranges_cover_images(self):
        for name, bench in EXTENDED_FUNCTIONS.items():
            xs = np.linspace(bench.domain[0], bench.domain[1], 1001)
            values = bench.func(xs)
            lo, hi = bench.output_range
            assert values.min() >= lo - 1e-6, name
            assert values.max() <= hi + 1e-6, name


class TestTables:
    @pytest.mark.parametrize("name", sorted(EXTENDED_FUNCTIONS))
    def test_builds(self, name):
        table = extended_table(name, SCHEME)
        assert table.n_inputs == 8 and table.n_outputs == 8

    def test_sigmoid_midpoint(self):
        table = extended_table("sigmoid", SCHEME)
        # sigmoid(0) = 0.5 -> mid-scale near the middle code (the grid
        # midpoint sits at x = +0.024, not exactly 0)
        mid = table.words[128]
        assert abs(int(mid) - 127) <= 3

    def test_sqrt_monotone(self):
        table = extended_table("sqrt", SCHEME)
        assert (np.diff(table.words.astype(int)) >= 0).all()

    def test_reciprocal_decreasing(self):
        table = extended_table("reciprocal", SCHEME)
        assert (np.diff(table.words.astype(int)) <= 0).all()

    def test_unknown_kernel(self):
        with pytest.raises(ConfigurationError):
            extended_table("softmax", SCHEME)

    def test_decomposes_end_to_end(self):
        """An extended kernel flows through the full pipeline."""
        from repro.core import (
            CoreSolverConfig,
            FrameworkConfig,
            IsingDecomposer,
        )

        table = extended_table("sigmoid", QuantizationScheme(6, 6))
        config = FrameworkConfig(
            mode="joint", free_size=3, n_partitions=2, n_rounds=1,
            seed=0,
            solver=CoreSolverConfig(max_iterations=300, n_replicas=2),
        )
        result = IsingDecomposer(config).decompose(table)
        assert sorted(result.components) == list(range(6))
