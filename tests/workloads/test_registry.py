"""Tests for the workload registry."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.registry import (
    build_workload,
    large_scale_suite,
    small_scale_suite,
    workload_names,
)


class TestRegistry:
    def test_ten_names(self):
        names = workload_names()
        assert len(names) == 10
        assert names[:6] == ["cos", "tan", "exp", "ln", "erf", "denoise"]
        assert set(names[6:]) == {
            "brent-kung", "forwardk2j", "inversek2j", "multiplier",
        }

    def test_small_suite_paper_shape(self):
        suite = small_scale_suite()
        assert len(suite) == 6
        for workload in suite.values():
            assert workload.table.n_inputs == 9
            assert workload.table.n_outputs == 9
            assert workload.free_size == 4
            assert workload.bound_size == 5

    def test_large_suite_paper_shape_reduced(self):
        suite = large_scale_suite(8)
        assert len(suite) == 10
        assert suite["brent-kung"].table.n_outputs == 5  # n/2 + 1
        assert suite["multiplier"].table.n_outputs == 8

    @pytest.mark.slow
    def test_large_suite_paper_scale(self):
        suite = large_scale_suite(16)
        assert suite["cos"].table.n_inputs == 16
        assert suite["cos"].table.n_outputs == 16
        assert suite["brent-kung"].table.n_outputs == 9  # as in the paper
        assert suite["cos"].free_size == 7

    def test_build_workload_defaults(self):
        workload = build_workload("erf", n_inputs=8)
        assert workload.table.n_outputs == 8

    def test_unknown_workload(self):
        with pytest.raises(ConfigurationError):
            build_workload("fft", 8)
