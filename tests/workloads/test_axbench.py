"""Tests for the AxBench-style circuits."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.workloads.axbench import (
    brent_kung_adder,
    brent_kung_table,
    forwardk2j_table,
    inversek2j_table,
    multiplier_table,
)


class TestBrentKungAdder:
    @settings(max_examples=60, deadline=None)
    @given(
        width=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_prefix_network_equals_addition(self, width, seed):
        rng = np.random.default_rng(seed)
        a = int(rng.integers(0, 1 << width))
        b = int(rng.integers(0, 1 << width))
        assert brent_kung_adder(a, b, width) == a + b

    def test_carry_chain_worst_case(self):
        # all-propagate: 0b1111 + 1 ripples through every prefix level
        assert brent_kung_adder(0b1111, 1, 4) == 16

    def test_operand_range_checked(self):
        with pytest.raises(ConfigurationError):
            brent_kung_adder(4, 0, 2)
        with pytest.raises(ConfigurationError):
            brent_kung_adder(0, 0, 0)

    def test_table_words(self):
        table = brent_kung_table(6)
        assert table.n_outputs == 4  # 3 + 3 -> 4 bits
        for idx in (0, 5, 37, 63):
            a, b = idx >> 3, idx & 7
            assert table.words[idx] == a + b

    def test_odd_width_rejected(self):
        with pytest.raises(ConfigurationError):
            brent_kung_table(7)


class TestMultiplier:
    def test_words_are_products(self):
        table = multiplier_table(8)
        assert table.n_outputs == 8
        for idx in (0, 17, 100, 255):
            a, b = idx >> 4, idx & 15
            assert table.words[idx] == a * b

    def test_paper_width(self):
        table = multiplier_table(10)
        assert table.n_outputs == 10


class TestKinematics:
    def test_forward_shapes(self):
        table = forwardk2j_table(8, 8)
        assert table.n_inputs == 8 and table.n_outputs == 8

    def test_forward_known_poses(self):
        table = forwardk2j_table(8, 8)
        # theta1 = theta2 = 0: x = l1 + l2 = 1.0 = range max
        assert table.words[0] == 255
        # theta1 = theta2 = pi/2: x = 0 - l2 = -0.5 = range min
        assert table.words[-1] == 0

    def test_inverse_shapes(self):
        table = inversek2j_table(8, 8)
        assert table.n_inputs == 8 and table.n_outputs == 8

    def test_inverse_known_poses(self):
        table = inversek2j_table(8, 8)
        # (x, y) = (1, 1): distance^2 = 2 > (l1+l2)^2 -> clamp, theta2 = 0
        assert table.words[-1] == 0
        # (x, y) = (0, 0): cos = (0 - 0.5)/0.5 = -1 -> theta2 = pi (max)
        assert table.words[0] == 255

    def test_inverse_forward_consistency(self):
        """For reachable straight-arm poses the inverse recovers theta2=0."""
        table = inversek2j_table(10, 10)
        # x = l1 + l2, y = 0 -> packed index: x code max, y code 0
        idx = ((1 << 5) - 1) << 5
        assert table.words[idx] == 0
