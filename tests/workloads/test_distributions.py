"""Tests for :mod:`repro.workloads.distributions`."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DimensionError
from repro.workloads.distributions import (
    exponential_codes,
    from_trace,
    gaussian_codes,
    mixture,
    uniform,
    zipf_codes,
)

FAMILIES = [
    lambda n: uniform(n),
    lambda n: gaussian_codes(n),
    lambda n: exponential_codes(n),
    lambda n: zipf_codes(n),
]


@pytest.mark.parametrize("family", FAMILIES)
def test_families_are_distributions(family):
    probs = family(6)
    assert probs.shape == (64,)
    assert np.isclose(probs.sum(), 1.0)
    assert (probs >= 0).all()


class TestShapes:
    def test_gaussian_peaks_at_center(self):
        probs = gaussian_codes(6, center=0.25)
        assert np.argmax(probs) == pytest.approx(0.25 * 63, abs=1)

    def test_exponential_is_decreasing(self):
        probs = exponential_codes(6)
        assert (np.diff(probs) <= 0).all()

    def test_zipf_heavy_head(self):
        probs = zipf_codes(8)
        assert probs[0] > 10 * probs[-1]

    def test_validation(self):
        with pytest.raises(DimensionError):
            gaussian_codes(4, sigma=0.0)
        with pytest.raises(DimensionError):
            exponential_codes(4, rate=-1.0)
        with pytest.raises(DimensionError):
            zipf_codes(4, exponent=0.0)
        with pytest.raises(DimensionError):
            uniform(-1)


class TestFromTrace:
    def test_counts(self):
        probs = from_trace([0, 0, 1, 3], n_inputs=2)
        assert np.allclose(probs, [0.5, 0.25, 0.0, 0.25])

    def test_smoothing_fills_unseen(self):
        probs = from_trace([0], n_inputs=2, smoothing=1.0)
        assert (probs > 0).all()
        assert probs[0] > probs[1]

    def test_out_of_range_rejected(self):
        with pytest.raises(DimensionError):
            from_trace([4], n_inputs=2)

    def test_empty_unsmoothed_rejected(self):
        with pytest.raises(DimensionError):
            from_trace([], n_inputs=2)

    def test_negative_smoothing_rejected(self):
        with pytest.raises(DimensionError):
            from_trace([0], n_inputs=2, smoothing=-0.5)


class TestMixture:
    def test_equal_weights_default(self):
        mixed = mixture([uniform(3), exponential_codes(3)])
        expected = (uniform(3) + exponential_codes(3)) / 2
        assert np.allclose(mixed, expected / expected.sum())

    def test_explicit_weights(self):
        mixed = mixture([uniform(2), uniform(2)], weights=[3.0, 1.0])
        assert np.allclose(mixed, uniform(2))

    def test_shape_mismatch(self):
        with pytest.raises(DimensionError):
            mixture([uniform(2), uniform(3)])

    def test_empty_rejected(self):
        with pytest.raises(DimensionError):
            mixture([])

    def test_negative_weight_rejected(self):
        with pytest.raises(DimensionError):
            mixture([uniform(2), uniform(2)], weights=[1.0, -1.0])


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_trace_round_trip_property(seed):
    """Sampling from a trace-derived distribution concentrates on it."""
    rng = np.random.default_rng(seed)
    trace = rng.integers(0, 16, size=200)
    probs = from_trace(trace, n_inputs=4)
    counts = np.bincount(trace, minlength=16)
    assert np.allclose(probs, counts / counts.sum())
