"""Remote-claim races: no job is ever lost or duplicated.

Two workers racing one job, a heartbeat-expired remote lease reclaimed
by a local worker, and idempotent double-``complete`` after a retried
request — the satellite scenarios named by the ISSUE.
"""

import concurrent.futures
import dataclasses
import time

import pytest

from repro.errors import GatewayError
from repro.fleet import FleetClient, RemoteWorkerAgent
from repro.gateway import DecompositionGateway, GatewayConfig
from repro.service import JobSpec, SchedulerPolicy

from tests.fleet.conftest import make_service

#: Leases short enough to expire inside a test, retries instant.
EXPIRY_POLICY = SchedulerPolicy(
    lease_seconds=0.2,
    retry_backoff_seconds=0.01,
    poll_interval_seconds=0.01,
)


def spec_for(fast_config, seed=None):
    config = (
        fast_config
        if seed is None
        else dataclasses.replace(fast_config, seed=seed)
    )
    return JobSpec(workload="cos", n_inputs=6, config=config)


def no_wait_config():
    return GatewayConfig(port=0, claim_wait_seconds=0.0)


class TestClaimRace:
    def test_two_workers_one_job_single_winner(
        self, tmp_path, fast_config
    ):
        """N concurrent claims against one queued job: exactly one
        grant, the rest come back empty — the store's ``BEGIN
        IMMEDIATE`` claim is the arbiter, over HTTP too."""
        service = make_service(tmp_path)
        job = service.submit(spec_for(fast_config))
        with DecompositionGateway(service, no_wait_config()) as gw:
            clients = [FleetClient(gw.url) for _ in range(4)]
            with concurrent.futures.ThreadPoolExecutor(4) as pool:
                grants = list(
                    pool.map(
                        lambda pair: pair[1].claim(f"racer-{pair[0]}"),
                        enumerate(clients),
                    )
                )
        winners = [g for g in grants if g is not None]
        assert len(winners) == 1
        assert winners[0].job.id == job.id
        record = service.job(job.id)
        assert record.state == "running"
        assert record.worker == winners[0].job.worker

    def test_race_on_many_jobs_partitions_cleanly(
        self, tmp_path, fast_config
    ):
        """Two agents draining a mixed batch: every job done exactly
        once, the completion split sums to the batch size."""
        service = make_service(tmp_path)
        jobs = [
            service.submit(spec_for(fast_config, seed=seed))
            for seed in range(4)
        ]
        config = GatewayConfig(
            port=0, claim_wait_seconds=0.1, claim_poll_seconds=0.02
        )
        with DecompositionGateway(service, config) as gw:

            def drain(worker_id):
                return RemoteWorkerAgent(
                    gw.url,
                    worker_id=worker_id,
                    drain=True,
                    claim_wait=0.1,
                    poll_seconds=0.02,
                ).run()

            with concurrent.futures.ThreadPoolExecutor(2) as pool:
                stats = list(pool.map(drain, ["race-a", "race-b"]))
        assert sum(s.completed for s in stats) == len(jobs)
        assert sum(s.failed for s in stats) == 0
        for job in jobs:
            assert service.job(job.id).state == "done"
        # both workers are in the registry and their completion
        # counters reconcile with the drained batch
        per_worker = {
            w.id: w.jobs_completed
            for w in service.store.list_workers()
        }
        assert sum(per_worker.values()) == len(jobs)


class TestLeaseExpiry:
    def test_expired_remote_lease_reclaimed_by_local_worker(
        self, tmp_path, fast_config
    ):
        """A remote worker claims, goes silent, and its lease expires:
        a *local* pool recovers the job and lands the same design; the
        zombie's late reports are refused (409) or absorbed."""
        spec = spec_for(fast_config)
        baseline = make_service(tmp_path, name="baseline")
        clean_job = baseline.submit(spec)
        baseline.run_until_drained(timeout=300)
        clean_design = baseline.fetch_design_dict(clean_job.id)

        service = make_service(tmp_path, policy=EXPIRY_POLICY)
        job = service.submit(spec)
        with DecompositionGateway(service, no_wait_config()) as gw:
            zombie = FleetClient(gw.url)
            grant = zombie.claim("zombie")
            assert grant is not None
            time.sleep(0.3)  # no heartbeat: the lease dies

            service.run_until_drained(timeout=300)
            record = service.job(job.id)
            assert record.state == "done"
            assert record.attempts == 2
            assert "zombie" in record.failed_workers
            assert service.fetch_design_dict(job.id) == clean_design

            # the zombie wakes up: heartbeat refused, completion
            # replay absorbed as already_done (identical design)
            with pytest.raises(GatewayError) as excinfo:
                zombie.heartbeat("zombie", job.id)
            assert excinfo.value.status == 409
            receipt = zombie.complete(
                "zombie", job.id, job.artifact_key
            )
            assert receipt.result == "already_done"
            assert receipt.accepted

    def test_stale_completion_while_reclaimed_is_superseded(
        self, tmp_path, fast_config
    ):
        """The zombie reports *while the job runs under a new owner*:
        the completion is answered ``superseded`` and the new owner's
        run is untouched."""
        service = make_service(tmp_path, policy=EXPIRY_POLICY)
        job = service.submit(spec_for(fast_config))
        with DecompositionGateway(service, no_wait_config()) as gw:
            zombie = FleetClient(gw.url)
            assert zombie.claim("zombie") is not None
            time.sleep(0.3)
            heir = FleetClient(gw.url)
            regrant = heir.claim("heir")  # recovers the orphan first
            assert regrant is not None
            assert regrant.job.id == job.id

            receipt = zombie.complete(
                "zombie", job.id, job.artifact_key
            )
            assert receipt.result == "superseded"
            assert not receipt.accepted
            record = service.job(job.id)
            assert record.state == "running"
            assert record.worker == "heir"

            # the heir still owns the finish line
            receipt = heir.complete(
                "heir",
                job.id,
                job.artifact_key,
                design={"n_inputs": 6},
            )
            assert receipt.result == "completed"
            assert service.job(job.id).state == "done"


class TestIdempotentComplete:
    def test_double_complete_is_absorbed(self, tmp_path, fast_config):
        """A client that retries ``complete`` after a lost response
        must not double-count, double-write, or error."""
        service = make_service(tmp_path)
        job = service.submit(spec_for(fast_config))
        design = {"n_inputs": 6, "luts": [[0, 1]]}
        with DecompositionGateway(service, no_wait_config()) as gw:
            client = FleetClient(gw.url)
            client.claim("w1")
            first = client.complete(
                "w1", job.id, job.artifact_key, design=design
            )
            assert first.result == "completed"
            replay = client.complete(
                "w1", job.id, job.artifact_key, design=design
            )
            assert replay.result == "already_done"
            assert replay.accepted

        record = service.job(job.id)
        assert record.state == "done"
        assert record.attempts == 1
        assert service.artifacts.get(job.artifact_key)["design"] == (
            design
        )
        # the worker's completion counter moved exactly once
        (worker,) = service.store.list_workers()
        assert worker.jobs_completed == 1
        assert worker.jobs_failed == 0
