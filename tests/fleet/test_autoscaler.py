"""The queue-depth autoscaler: deterministic ``tick()`` control-loop
tests with an injected pool factory, plus one live elastic drain.
"""

import dataclasses
import time
import types

import pytest

from repro.errors import ServiceError
from repro.fleet import PoolAutoscaler
from repro.service import JobSpec

from tests.fleet.conftest import make_service


class FakePool:
    """A worker-pool stand-in whose liveness the test scripts."""

    def __init__(self, name):
        self.name = name
        self.started = False
        self.stop_requested = False
        self._alive = False

    def start(self):
        self.started = True
        self._alive = True

    def request_stop(self):
        self.stop_requested = True

    def finish(self):
        self._alive = False

    @property
    def alive(self):
        return self._alive


def make_scaler(depths, **kwargs):
    """An autoscaler over a scripted queue-depth sequence."""
    state = {"i": 0}

    def counts():
        i = min(state["i"], len(depths) - 1)
        state["i"] += 1
        depth = depths[i]
        if depth is None:
            raise RuntimeError("store unavailable")
        return {"queued": depth, "running": 0}

    scheduler = types.SimpleNamespace(
        store=types.SimpleNamespace(counts=counts)
    )
    pools = []

    def make_pool(name):
        pool = FakePool(name)
        pools.append(pool)
        return pool

    kwargs.setdefault("make_pool", make_pool)
    scaler = PoolAutoscaler(scheduler, executor=None, **kwargs)
    return scaler, pools


class TestControlLoop:
    def test_scales_up_to_depth_capped_at_max(self):
        scaler, pools = make_scaler([5], max_workers=3)
        scaler.tick(now=0.0)
        assert scaler.n_live == 3
        assert [p.name for p in pools] == [
            "svc-u0", "svc-u1", "svc-u2",
        ]
        assert all(p.started for p in pools)

    def test_min_floor_is_respected_when_idle(self):
        scaler, pools = make_scaler(
            [0, 0], min_workers=1, max_workers=4
        )
        scaler.tick(now=0.0)
        assert scaler.n_live == 1
        scaler.tick(now=100.0)  # idle forever: never below min
        assert scaler.n_live == 1
        assert not pools[0].stop_requested

    def test_scale_down_waits_for_idle_period(self):
        scaler, pools = make_scaler(
            [2, 0, 0, 0],
            max_workers=4,
            scale_down_idle_seconds=2.0,
        )
        scaler.tick(now=0.0)
        assert scaler.n_live == 2
        scaler.tick(now=0.5)  # below target, but not idle long enough
        assert scaler.n_live == 2
        assert not any(p.stop_requested for p in pools)
        scaler.tick(now=2.6)  # idle window elapsed: retire ONE unit
        assert scaler.n_live == 1
        retiring = [p for p in pools if p.stop_requested]
        assert len(retiring) == 1
        # retirement is asynchronous: the unit drains, then is reaped
        assert scaler.snapshot()["retiring"] == 1
        retiring[0].finish()
        scaler.tick(now=4.0)
        assert scaler.snapshot()["retiring"] == 0

    def test_burst_resets_the_idle_clock(self):
        scaler, _ = make_scaler(
            [2, 0, 2, 0],
            max_workers=4,
            scale_down_idle_seconds=2.0,
        )
        scaler.tick(now=0.0)   # depth 2 -> 2 units
        scaler.tick(now=1.0)   # idle starts
        scaler.tick(now=1.5)   # burst: busy again, clock reset
        scaler.tick(now=3.0)   # only 1.5s idle since the burst
        assert scaler.n_live == 2

    def test_unreadable_store_freezes_the_loop(self):
        scaler, _ = make_scaler([2, None, 0], max_workers=4)
        scaler.tick(now=0.0)
        assert scaler.n_live == 2
        scaler.tick(now=1.0)  # store raised: no decision on bad data
        assert scaler.n_live == 2

    def test_bounds_are_validated(self):
        with pytest.raises(ServiceError):
            make_scaler([0], min_workers=-1)
        with pytest.raises(ServiceError):
            make_scaler([0], min_workers=3, max_workers=2)

    def test_stop_retires_every_unit(self):
        scaler, pools = make_scaler([3], max_workers=4)
        scaler.tick(now=0.0)
        for pool in pools:
            pool.finish()  # pretend each drained instantly
        scaler.stop(timeout=1.0)
        assert all(p.stop_requested for p in pools)
        assert scaler.n_live == 0


class TestLiveElasticity:
    def test_elastic_pool_drains_real_queue(
        self, tmp_path, fast_config
    ):
        """min_workers=0: nothing runs while idle, units appear under
        load, the queue drains, everything retires on stop."""
        service = make_service(tmp_path)
        jobs = [
            service.submit(
                JobSpec(
                    workload="cos",
                    n_inputs=6,
                    config=dataclasses.replace(fast_config, seed=seed),
                )
            )
            for seed in range(3)
        ]
        scaler = PoolAutoscaler(
            service.scheduler,
            service.executor,
            min_workers=0,
            max_workers=2,
            interval_seconds=0.02,
            scale_down_idle_seconds=0.1,
        )
        scaler.start()
        try:
            deadline = 300
            start = time.monotonic()
            while service.store.pending() > 0:
                assert time.monotonic() - start < deadline
                time.sleep(0.02)
        finally:
            scaler.stop(timeout=30)
        for job in jobs:
            assert service.job(job.id).state == "done"
        assert scaler.n_live == 0
        snapshot = scaler.snapshot()
        assert snapshot["retiring"] == 0
        assert 1 <= snapshot["spawned_total"] <= 4
