"""Shared fixtures for the fleet (remote worker plane) tests.

Every test here runs a *live* gateway (``ThreadingHTTPServer`` on an
ephemeral port) over a real service directory, then drives it with
:class:`~repro.fleet.FleetClient` / :class:`~repro.fleet.RemoteWorkerAgent`
exactly as ``repro work --remote`` would — no mocked transport.
"""

import pytest

from repro.core import CoreSolverConfig, FrameworkConfig
from repro.resilience import clear_fault_plan
from repro.service import DecompositionService, SchedulerPolicy

#: Laptop-fast retry/lease knobs shared across the suite.
FAST_POLICY = SchedulerPolicy(
    lease_seconds=30.0,
    retry_backoff_seconds=0.01,
    poll_interval_seconds=0.01,
)


def make_service(tmp_path, name="svc", policy=FAST_POLICY):
    """A fresh service directory with the suite's fast policy."""
    return DecompositionService(tmp_path / name, policy=policy)


@pytest.fixture
def fast_config():
    """A laptop-fast but real framework configuration."""
    return FrameworkConfig(
        mode="joint",
        free_size=2,
        n_partitions=2,
        n_rounds=1,
        seed=3,
        solver=CoreSolverConfig(max_iterations=200, n_replicas=2),
    )


@pytest.fixture(autouse=True)
def _no_leaked_fault_plan():
    """A test that forgets to clear its plan must not poison the next."""
    yield
    clear_fault_plan()
