"""The remote worker agent end to end (the ISSUE acceptance tests).

A gateway with **no local workers** drained by remote agents over
HTTP, with designs byte-identical to a local ``serve`` run; a remote
worker crashing mid-job whose successor resumes from the shipped
checkpoint bit-identically; and ``--isolated`` child-process attempts
surviving hard ``worker.die`` faults.
"""

import dataclasses

from repro.fleet import RemoteWorkerAgent
from repro.gateway import DecompositionGateway, GatewayConfig
from repro.resilience import (
    FaultPlan,
    FaultRule,
    clear_fault_plan,
    fault_injection,
    install_fault_plan,
)
from repro.service import JobSpec

from tests.fleet.conftest import make_service


def spec_for(fast_config, seed=None):
    config = (
        fast_config
        if seed is None
        else dataclasses.replace(fast_config, seed=seed)
    )
    return JobSpec(workload="cos", n_inputs=6, config=config)


def fast_gateway_config():
    return GatewayConfig(
        port=0, claim_wait_seconds=0.1, claim_poll_seconds=0.02
    )


def make_agent(gw, worker_id, **kwargs):
    kwargs.setdefault("drain", True)
    kwargs.setdefault("claim_wait", 0.1)
    kwargs.setdefault("poll_seconds", 0.02)
    kwargs.setdefault("heartbeat_seconds", 0.05)
    return RemoteWorkerAgent(gw.url, worker_id=worker_id, **kwargs)


def baseline_designs(tmp_path, specs):
    """Designs from an uninterrupted local run in a clean directory."""
    baseline = make_service(tmp_path, name="baseline")
    jobs = [baseline.submit(spec) for spec in specs]
    baseline.run_until_drained(timeout=300)
    return [baseline.fetch_design_dict(job.id) for job in jobs]


class TestRemoteDrain:
    def test_remote_agent_drains_queue_bit_identically(
        self, tmp_path, fast_config
    ):
        """The headline criterion: no local workers anywhere, a remote
        agent drains the queue, artifacts match local execution."""
        specs = [spec_for(fast_config), spec_for(fast_config, seed=17)]
        clean = baseline_designs(tmp_path, specs)

        service = make_service(tmp_path)  # dispatch-only: no pool
        jobs = [service.submit(spec) for spec in specs]
        with DecompositionGateway(service, fast_gateway_config()) as gw:
            stats = make_agent(gw, "remote-a").run()
        assert stats.completed == 2
        assert stats.failed == 0
        assert stats.abandoned == 0
        for job, clean_design in zip(jobs, clean):
            assert service.job(job.id).state == "done"
            assert service.fetch_design_dict(job.id) == clean_design

    def test_duplicate_spec_is_cache_hit(self, tmp_path, fast_config):
        """Submitting a spec whose artifact already exists: the remote
        attempt short-circuits through ``GET /v1/artifacts``."""
        service = make_service(tmp_path)
        spec = spec_for(fast_config)
        service.submit(spec)
        with DecompositionGateway(service, fast_gateway_config()) as gw:
            assert make_agent(gw, "r1").run().completed == 1
            # plain submit welcomes duplicates: a twin job with the
            # same content address, resolved without a second solve
            service.submit(spec)
            stats = make_agent(gw, "r2").run()
        assert stats.completed == 1
        assert stats.cache_hits == 1


class TestCrashResume:
    def test_crashed_remote_attempt_resumes_bit_identically(
        self, tmp_path, fast_config
    ):
        """Kill a remote worker mid-job (after a checkpoint shipped):
        the lease routes the job to the next worker, which resumes
        from the gateway-held checkpoint and lands the exact design an
        uninterrupted run produces."""
        spec = spec_for(fast_config)
        (clean_design,) = baseline_designs(tmp_path, [spec])

        service = make_service(tmp_path)
        job = service.submit(spec)
        # seam call 1 is attempt start; calls 2.. are post-checkpoint
        # probes, so at_calls=(3,) dies right after the second
        # component checkpoint reached the gateway
        plan = FaultPlan(
            [
                FaultRule(
                    site="worker.crash",
                    at_calls=(3,),
                    match="post-checkpoint",
                )
            ],
            seed=1234,
        )
        with DecompositionGateway(service, fast_gateway_config()) as gw:
            victim = make_agent(gw, "victim", checkpoint_every=1)
            with fault_injection(plan):
                stats = victim.run(max_jobs=1)
            assert stats.failed == 1
            assert len(plan.events()) == 1
            # the checkpoint survived the crash, server-side
            assert (
                service.artifacts.get_checkpoint(job.artifact_key)
                is not None
            )

            successor = make_agent(gw, "successor", checkpoint_every=1)
            stats = successor.run()
        assert stats.completed == 1
        assert stats.resumed == 1
        record = service.job(job.id)
        assert record.state == "done"
        assert record.attempts == 2
        assert service.fetch_design_dict(job.id) == clean_design
        # checkpoint reaped once the job landed
        assert (
            service.artifacts.get_checkpoint(job.artifact_key) is None
        )


class TestIsolatedMode:
    def test_isolated_attempt_completes(self, tmp_path, fast_config):
        spec = spec_for(fast_config)
        (clean_design,) = baseline_designs(tmp_path, [spec])
        service = make_service(tmp_path)
        job = service.submit(spec)
        with DecompositionGateway(service, fast_gateway_config()) as gw:
            stats = make_agent(gw, "iso", isolated=True).run()
        # the child process reported the completion itself; the
        # parent only observed a clean exit
        assert stats.claims == 1
        assert service.job(job.id).state == "done"
        assert service.fetch_design_dict(job.id) == clean_design

    def test_hard_death_is_reported_and_retried(
        self, tmp_path, fast_config
    ):
        """``worker.die`` hard-kills the attempt process; the parent
        reports the failure so the scheduler can re-route without
        waiting for lease expiry."""
        spec = spec_for(fast_config)
        service = make_service(tmp_path)
        job = service.submit(spec)
        plan = FaultPlan(
            [FaultRule(site="worker.die", at_calls=(1,))], seed=1234
        )
        with DecompositionGateway(service, fast_gateway_config()) as gw:
            install_fault_plan(plan)
            try:
                stats = make_agent(gw, "doomed", isolated=True).run(
                    max_jobs=1
                )
            finally:
                clear_fault_plan()
            assert stats.failed == 1
            assert service.job(job.id).state == "queued"

            stats = make_agent(gw, "medic", isolated=True).run()
        record = service.job(job.id)
        assert record.state == "done"
        assert record.attempts == 2
        assert "doomed" in record.failed_workers
