"""The worker-plane HTTP protocol, verb by verb.

Claim/heartbeat/checkpoint/complete/fail against a live gateway: lease
semantics, ownership 409s, empty-claim 204 + ``Retry-After``, the fleet
registry view, and the separate worker rate-limit class.
"""

import dataclasses
import threading

import pytest

from repro.errors import GatewayError
from repro.fleet import FleetClient
from repro.gateway import DecompositionGateway, GatewayConfig
from repro.service import JobSpec

from tests.fleet.conftest import make_service


def spec_for(fast_config, seed=None):
    config = (
        fast_config
        if seed is None
        else dataclasses.replace(fast_config, seed=seed)
    )
    return JobSpec(workload="cos", n_inputs=6, config=config)


def no_wait_config(**overrides):
    """A gateway config whose empty claims answer immediately."""
    defaults = dict(port=0, claim_wait_seconds=0.0)
    defaults.update(overrides)
    return GatewayConfig(**defaults)


class TestClaim:
    def test_claim_grants_lease_and_registers_worker(
        self, tmp_path, fast_config
    ):
        service = make_service(tmp_path)
        job = service.submit(spec_for(fast_config))
        with DecompositionGateway(service, no_wait_config()) as gw:
            client = FleetClient(gw.url)
            grant = client.claim("w1")
            assert grant is not None
            assert grant.job.id == job.id
            assert grant.job.state == "running"
            assert grant.job.worker == "w1"
            assert grant.lease_seconds == pytest.approx(30.0)
            assert grant.checkpoint is None

            # the store agrees, and the registry saw the worker
            assert service.job(job.id).state == "running"
            workers = client.workers()
            assert [w.id for w in workers] == ["w1"]
            assert workers[0].kind == "remote"
            assert workers[0].current_job == job.id

    def test_empty_claim_is_204_with_retry_after(
        self, tmp_path, fast_config
    ):
        service = make_service(tmp_path)
        with DecompositionGateway(
            service, no_wait_config(claim_retry_after_seconds=2.5)
        ) as gw:
            client = FleetClient(gw.url)
            status, headers, body = client._request(
                "POST", "/v1/workers/claim", {"worker": "idle"}
            )
            assert status == 204
            assert body == b""
            assert headers.get("Retry-After") == "2.5"
            # the typed accessor maps it to None
            assert client.claim("idle") is None
            # even an empty claim registers the worker (liveness ping)
            assert [w.id for w in client.workers()] == ["idle"]

    def test_long_poll_parks_until_work_arrives(
        self, tmp_path, fast_config
    ):
        service = make_service(tmp_path)
        config = GatewayConfig(
            port=0, claim_wait_seconds=10.0, claim_poll_seconds=0.02
        )
        with DecompositionGateway(service, config) as gw:
            client = FleetClient(gw.url, timeout_seconds=30.0)
            submitted = threading.Timer(
                0.15, lambda: service.submit(spec_for(fast_config))
            )
            submitted.start()
            try:
                grant = client.claim("parked")
            finally:
                submitted.join()
            assert grant is not None
            assert grant.job.state == "running"


class TestOwnership:
    def test_heartbeat_renews_lease(self, tmp_path, fast_config):
        service = make_service(tmp_path)
        job = service.submit(spec_for(fast_config))
        with DecompositionGateway(service, no_wait_config()) as gw:
            client = FleetClient(gw.url)
            client.claim("w1")
            before = service.job(job.id).lease_expires
            reply = client.heartbeat("w1", job.id)
            assert reply["ok"] is True
            assert service.job(job.id).lease_expires >= before

    def test_non_owner_heartbeat_is_409(self, tmp_path, fast_config):
        service = make_service(tmp_path)
        job = service.submit(spec_for(fast_config))
        with DecompositionGateway(service, no_wait_config()) as gw:
            client = FleetClient(gw.url)
            client.claim("owner")
            with pytest.raises(GatewayError) as excinfo:
                client.heartbeat("impostor", job.id)
            assert excinfo.value.status == 409
            # the owner is unaffected
            assert client.heartbeat("owner", job.id)["ok"] is True

    def test_heartbeat_unknown_job_is_404(self, tmp_path):
        service = make_service(tmp_path)
        with DecompositionGateway(service, no_wait_config()) as gw:
            client = FleetClient(gw.url)
            with pytest.raises(GatewayError) as excinfo:
                client.heartbeat("w1", "no-such-job")
            assert excinfo.value.status == 404


class TestCheckpointAndComplete:
    def test_checkpoint_persists_and_reseeds_next_claim(
        self, tmp_path, fast_config
    ):
        service = make_service(tmp_path)
        job = service.submit(spec_for(fast_config))
        payload = {"format": "fleet-test", "version": 1, "step": 7}
        with DecompositionGateway(service, no_wait_config()) as gw:
            client = FleetClient(gw.url)
            client.claim("w1")
            client.checkpoint("w1", job.id, payload)
            assert (
                service.artifacts.get_checkpoint(job.artifact_key)
                == payload
            )
            # the crashed worker's successor gets the checkpoint with
            # its grant — release the lease and claim again
            service.scheduler.release_worker("w1")
            grant = client.claim("w2")
            assert grant is not None
            assert grant.checkpoint == payload

    def test_complete_lands_artifact_and_result(
        self, tmp_path, fast_config
    ):
        service = make_service(tmp_path)
        job = service.submit(spec_for(fast_config))
        design = {"n_inputs": 6, "luts": [[1, 0], [0, 1]]}
        with DecompositionGateway(service, no_wait_config()) as gw:
            client = FleetClient(gw.url)
            client.claim("w1")
            receipt = client.complete(
                "w1",
                job.id,
                job.artifact_key,
                design=design,
                meta={"source": "test"},
                med=0.0,
                runtime_seconds=0.5,
            )
            assert receipt.result == "completed"
            assert receipt.accepted
            record = service.job(job.id)
            assert record.state == "done"
            assert record.med == 0.0
            assert client.artifact(job.artifact_key)["design"] == design
            assert client.result(job.id)["design"] == design

    def test_complete_wrong_artifact_key_rejected(
        self, tmp_path, fast_config
    ):
        service = make_service(tmp_path)
        job = service.submit(spec_for(fast_config))
        with DecompositionGateway(service, no_wait_config()) as gw:
            client = FleetClient(gw.url)
            client.claim("w1")
            with pytest.raises(GatewayError) as excinfo:
                client.complete(
                    "w1", job.id, "0" * 64, design={"n_inputs": 6}
                )
            assert excinfo.value.status == 400
            assert service.job(job.id).state == "running"

    def test_fail_routes_to_retry(self, tmp_path, fast_config):
        service = make_service(tmp_path)
        job = service.submit(spec_for(fast_config))
        with DecompositionGateway(service, no_wait_config()) as gw:
            client = FleetClient(gw.url)
            client.claim("w1")
            reply = client.fail("w1", job.id, "ValueError: boom")
            assert reply["result"] == "failed"
            record = service.job(job.id)
            assert record.state == "queued"
            assert record.attempts == 1
            assert "w1" in record.failed_workers
            assert "boom" in record.error

    def test_artifact_miss_is_none(self, tmp_path):
        service = make_service(tmp_path)
        with DecompositionGateway(service, no_wait_config()) as gw:
            client = FleetClient(gw.url)
            assert client.artifact("f" * 64) is None

    def test_unknown_worker_verb_is_404(self, tmp_path):
        service = make_service(tmp_path)
        with DecompositionGateway(service, no_wait_config()) as gw:
            client = FleetClient(gw.url)
            with pytest.raises(GatewayError) as excinfo:
                client._request_json(
                    "POST", "/v1/workers/launch", {"worker": "w"}
                )
            assert excinfo.value.status == 404


class TestRateLimitClasses:
    def test_submitter_limit_does_not_throttle_workers(
        self, tmp_path, fast_config
    ):
        """A starved submitter bucket must not slow the claim loop."""
        service = make_service(tmp_path)
        config = no_wait_config(
            rate_limit_per_second=0.001, rate_limit_burst=1
        )
        with DecompositionGateway(service, config) as gw:
            from repro.gateway import RetryPolicy

            client = FleetClient(
                gw.url, retry=RetryPolicy(max_retries=0)
            )
            client.submit(spec_for(fast_config))  # burns the only token
            with pytest.raises(GatewayError) as excinfo:
                client.submit(spec_for(fast_config, seed=99))
            assert excinfo.value.status == 429
            # the worker plane draws from its own bucket: still open
            assert client.claim("w1") is not None
            for _ in range(4):
                client.claim("w1")  # empty claims, but never a 429

    def test_worker_limit_does_not_throttle_submitters(
        self, tmp_path, fast_config
    ):
        service = make_service(tmp_path)
        config = no_wait_config(
            worker_rate_limit_per_second=0.001,
            worker_rate_limit_burst=1,
        )
        with DecompositionGateway(service, config) as gw:
            from repro.gateway import RetryPolicy

            client = FleetClient(
                gw.url, retry=RetryPolicy(max_retries=0)
            )
            client.claim("w1")  # burns the worker bucket
            with pytest.raises(GatewayError) as excinfo:
                client.claim("w1")
            assert excinfo.value.status == 429
            # submissions draw from the (unlimited) submitter bucket
            for seed in range(5):
                client.submit(spec_for(fast_config, seed=seed))
