"""Unit tests for :mod:`repro.boolean.synthesis`."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolean.boolean_matrix import BooleanMatrix
from repro.boolean.decomposition import (
    ColumnSetting,
    column_setting_from_matrix,
    row_setting_from_matrix,
)
from repro.boolean.partition import InputPartition
from repro.boolean.random_functions import (
    random_column_setting,
    random_partition,
)
from repro.boolean.synthesis import (
    DecomposedComponent,
    apply_column_setting,
    apply_row_setting,
    component_from_column_setting,
)
from repro.boolean.truth_table import TruthTable
from repro.errors import DecompositionError


class TestDecomposedComponent:
    def test_shape_validation(self, small_partition):
        with pytest.raises(DecompositionError):
            DecomposedComponent(
                small_partition,
                phi=np.zeros(3, dtype=int),  # wrong: needs n_cols = 8
                f_table=np.zeros((2, 4), dtype=int),
            )
        with pytest.raises(DecompositionError):
            DecomposedComponent(
                small_partition,
                phi=np.zeros(8, dtype=int),
                f_table=np.zeros((2, 5), dtype=int),
            )

    def test_lut_bits(self, small_partition):
        component = DecomposedComponent(
            small_partition,
            phi=np.zeros(8, dtype=int),
            f_table=np.zeros((2, 4), dtype=int),
        )
        assert component.lut_bits == 8 + 2 * 4
        assert component.flat_lut_bits == 32

    def test_fig1_economics(self):
        """The paper's Fig. 1: 5-input LUT, 3/2 split -> 32 vs 16 bits."""
        w = InputPartition(free=(3, 4), bound=(0, 1, 2), n_inputs=5)
        component = DecomposedComponent(
            w, phi=np.zeros(8, dtype=int), f_table=np.zeros((2, 4), dtype=int)
        )
        assert component.flat_lut_bits == 32
        assert component.lut_bits == 16


class TestCascadeEvaluation:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_cascade_equals_reconstruction(self, seed):
        """F(phi(B), A) evaluates exactly to the setting's matrix."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(3, 7))
        w = random_partition(n, int(rng.integers(1, n)), rng)
        setting = random_column_setting(w.n_rows, w.n_cols, rng)
        component = component_from_column_setting(w, setting)
        matrix = setting.reconstruct()
        vector = component.to_truth_vector()
        for idx in range(1 << n):
            row, col = w.cell_of_index(idx)
            assert vector[idx] == matrix[row, col]

    def test_shape_mismatch_rejected(self, small_partition):
        setting = ColumnSetting(
            np.zeros(2, dtype=int), np.zeros(2, dtype=int),
            np.zeros(2, dtype=int),
        )
        with pytest.raises(DecompositionError):
            component_from_column_setting(small_partition, setting)


class TestApplySettings:
    def test_apply_column_setting_replaces_component(
        self, small_table, small_partition
    ):
        setting = random_column_setting(
            small_partition.n_rows, small_partition.n_cols,
            np.random.default_rng(0),
        )
        updated = apply_column_setting(small_table, 1, small_partition,
                                       setting)
        # untouched components identical
        assert np.array_equal(updated.component(0), small_table.component(0))
        # replaced component is exactly decomposable with the setting
        matrix = BooleanMatrix.from_function(updated, 1, small_partition)
        assert np.array_equal(matrix.values, setting.reconstruct())

    def test_apply_row_setting_matches_column_route(
        self, small_table, small_partition
    ):
        """Applying equivalent row/column settings gives identical tables."""
        matrix, _ = (
            BooleanMatrix.from_function(small_table, 0, small_partition),
            None,
        )
        col_setting = random_column_setting(
            small_partition.n_rows, small_partition.n_cols,
            np.random.default_rng(3),
        )
        via_column = apply_column_setting(
            small_table, 0, small_partition, col_setting
        )
        row_setting = row_setting_from_matrix(col_setting.reconstruct())
        via_row = apply_row_setting(
            small_table, 0, small_partition, row_setting
        )
        assert np.array_equal(via_column.outputs, via_row.outputs)

    def test_apply_row_setting_shape_check(self, small_table):
        wrong_partition = InputPartition((0, 1, 2), (3, 4), 5)
        setting = row_setting_from_matrix(np.zeros((4, 8), dtype=int))
        with pytest.raises(DecompositionError):
            apply_row_setting(small_table, 0, wrong_partition, setting)

    def test_idempotent_on_decomposable_component(
        self, small_table, small_partition
    ):
        """Applying a component's own exact setting changes nothing."""
        setting = random_column_setting(
            small_partition.n_rows, small_partition.n_cols,
            np.random.default_rng(9),
        )
        once = apply_column_setting(small_table, 2, small_partition, setting)
        matrix = BooleanMatrix.from_function(once, 2, small_partition)
        extracted = column_setting_from_matrix(matrix)
        twice = apply_column_setting(once, 2, small_partition, extracted)
        assert np.array_equal(once.outputs, twice.outputs)
