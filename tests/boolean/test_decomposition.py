"""Unit tests for Theorems 1 and 2 (:mod:`repro.boolean.decomposition`)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolean.decomposition import (
    ColumnSetting,
    RowSetting,
    RowType,
    column_setting_from_matrix,
    column_setting_to_row_setting,
    has_column_decomposition,
    has_row_decomposition,
    row_setting_from_matrix,
    row_setting_to_column_setting,
)
from repro.boolean.random_functions import (
    random_column_decomposable_matrix,
    random_column_setting,
)
from repro.errors import DecompositionError


class TestRowSetting:
    def test_reconstruct_paper_example(self):
        # Fig. 2: V = (1, 1, 0, 0), S = (PATTERN, ZEROS, ONES, COMPLEMENT)
        setting = RowSetting(
            pattern=np.array([1, 1, 0, 0]),
            row_types=np.array(
                [RowType.PATTERN, RowType.ZEROS, RowType.ONES,
                 RowType.COMPLEMENT]
            ),
        )
        expected = np.array(
            [[1, 1, 0, 0], [0, 0, 0, 0], [1, 1, 1, 1], [0, 0, 1, 1]]
        )
        assert np.array_equal(setting.reconstruct(), expected)

    def test_rejects_bad_types(self):
        with pytest.raises(DecompositionError):
            RowSetting(np.array([0, 1]), np.array([0, 7]))

    def test_rejects_non_binary_pattern(self):
        with pytest.raises(DecompositionError):
            RowSetting(np.array([0, 3]), np.array([0, 0]))


class TestColumnSetting:
    def test_reconstruct_eq3(self):
        setting = ColumnSetting(
            pattern1=np.array([1, 0]),
            pattern2=np.array([0, 1]),
            column_types=np.array([0, 1, 0]),
        )
        expected = np.array([[1, 0, 1], [0, 1, 0]])
        assert np.array_equal(setting.reconstruct(), expected)

    def test_error_uniform(self):
        setting = ColumnSetting(
            np.array([0, 0]), np.array([0, 0]), np.array([0, 0])
        )
        exact = np.array([[1, 0], [0, 0]])
        assert np.isclose(setting.error(exact), 0.25)

    def test_error_shape_mismatch(self):
        setting = ColumnSetting(np.array([0]), np.array([0]), np.array([0]))
        with pytest.raises(DecompositionError):
            setting.error(np.zeros((2, 2), dtype=int))

    def test_pattern_length_mismatch_rejected(self):
        with pytest.raises(DecompositionError):
            ColumnSetting(np.array([0, 1]), np.array([0]), np.array([0]))


class TestTheorem1:
    def test_paper_fig2_is_decomposable(self):
        matrix = np.array(
            [[1, 1, 0, 0], [0, 0, 0, 0], [1, 1, 1, 1], [0, 0, 1, 1]]
        )
        assert has_row_decomposition(matrix)
        setting = row_setting_from_matrix(matrix)
        assert np.array_equal(setting.reconstruct(), matrix)

    def test_three_distinct_nonconstant_rows_fail(self):
        matrix = np.array([[0, 0, 1], [0, 1, 0], [1, 0, 0]])
        assert not has_row_decomposition(matrix)
        assert row_setting_from_matrix(matrix) is None

    def test_non_complementary_pair_fails(self):
        matrix = np.array([[0, 0, 1], [0, 1, 1]])
        assert not has_row_decomposition(matrix)

    def test_constant_matrix_decomposable(self):
        assert has_row_decomposition(np.ones((3, 4), dtype=int))
        assert has_row_decomposition(np.zeros((3, 4), dtype=int))

    def test_extraction_reconstructs(self):
        matrix = np.array([[0, 1], [1, 0], [1, 1]])
        setting = row_setting_from_matrix(matrix)
        assert setting is not None
        assert np.array_equal(setting.reconstruct(), matrix)


class TestTheorem2:
    def test_paper_fig2_has_two_column_types(self):
        matrix = np.array(
            [[1, 1, 0, 0], [0, 0, 0, 0], [1, 1, 1, 1], [0, 0, 1, 1]]
        )
        assert has_column_decomposition(matrix)
        setting = column_setting_from_matrix(matrix)
        assert np.array_equal(setting.reconstruct(), matrix)
        # columns of Fig. 2: (1,0,1,0) and (0,0,1,1)
        assert np.array_equal(setting.pattern1, [1, 0, 1, 0])
        assert np.array_equal(setting.pattern2, [0, 0, 1, 1])
        assert np.array_equal(setting.column_types, [0, 0, 1, 1])

    def test_three_column_types_fail(self):
        matrix = np.array([[0, 1, 0], [0, 0, 1]])
        assert not has_column_decomposition(matrix)
        assert column_setting_from_matrix(matrix) is None

    def test_single_column_type(self):
        matrix = np.array([[1, 1], [0, 0]])
        setting = column_setting_from_matrix(matrix)
        assert np.array_equal(setting.column_types, [0, 0])
        assert np.array_equal(setting.reconstruct(), matrix)


class TestEquivalence:
    """Theorem 1 and Theorem 2 characterize the same matrices."""

    @settings(max_examples=100, deadline=None)
    @given(
        n_rows=st.integers(min_value=1, max_value=5),
        n_cols=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_conditions_agree_on_random_matrices(self, n_rows, n_cols, seed):
        rng = np.random.default_rng(seed)
        matrix = rng.integers(0, 2, size=(n_rows, n_cols))
        assert has_row_decomposition(matrix) == has_column_decomposition(
            matrix
        )

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_decomposable_matrices_pass_both(self, seed):
        rng = np.random.default_rng(seed)
        matrix, _ = random_column_decomposable_matrix(4, 6, rng)
        assert has_row_decomposition(matrix)
        assert has_column_decomposition(matrix)

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_conversions_preserve_matrix(self, seed):
        rng = np.random.default_rng(seed)
        setting = random_column_setting(4, 5, rng)
        row = column_setting_to_row_setting(setting)
        assert np.array_equal(row.reconstruct(), setting.reconstruct())
        back = row_setting_to_column_setting(row)
        assert np.array_equal(back.reconstruct(), setting.reconstruct())
