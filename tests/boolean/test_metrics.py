"""Unit tests for :mod:`repro.boolean.metrics`."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolean.metrics import (
    error_distance_profile,
    error_rate,
    error_rate_per_output,
    max_error_distance,
    mean_error_distance,
    mean_relative_error_distance,
)
from repro.boolean.truth_table import TruthTable
from repro.errors import DimensionError


def make_pair():
    exact = TruthTable.from_words([0, 1, 2, 3], n_inputs=2, n_outputs=2)
    approx = TruthTable.from_words([0, 1, 3, 3], n_inputs=2, n_outputs=2)
    return exact, approx


class TestErrorRate:
    def test_identical_tables_zero(self, small_table):
        assert error_rate(small_table, small_table) == 0.0

    def test_known_value(self):
        exact, approx = make_pair()
        assert np.isclose(error_rate(exact, approx), 0.25)

    def test_weighted_by_distribution(self):
        exact, approx = make_pair()
        weighted = exact.with_probabilities([0.7, 0.1, 0.1, 0.1])
        assert np.isclose(error_rate(weighted, approx), 0.1)

    def test_shape_mismatch_rejected(self, small_table):
        other = TruthTable.random(4, 3, np.random.default_rng(0))
        with pytest.raises(DimensionError):
            error_rate(small_table, other)


class TestPerOutput:
    def test_per_output_values(self):
        exact, approx = make_pair()
        # only word 2 -> 3 differs, i.e. component 0 flips on one input
        per = error_rate_per_output(exact, approx)
        assert np.allclose(per, [0.25, 0.0])

    def test_sums_bound_whole_word_rate(self, small_table, rng):
        approx = TruthTable.random(5, 3, rng, small_table.probabilities)
        per = error_rate_per_output(small_table, approx)
        whole = error_rate(small_table, approx)
        assert whole <= per.sum() + 1e-12
        assert whole >= per.max() - 1e-12


class TestMeanErrorDistance:
    def test_known_value(self):
        exact, approx = make_pair()
        # |2 - 3| on one of four inputs
        assert np.isclose(mean_error_distance(exact, approx), 0.25)

    def test_zero_for_identical(self, small_table):
        assert mean_error_distance(small_table, small_table) == 0.0

    def test_distribution_weighting(self):
        exact, approx = make_pair()
        weighted = exact.with_probabilities([0, 0, 1, 0])
        assert np.isclose(mean_error_distance(weighted, approx), 1.0)


class TestMaxAndRelative:
    def test_max_error_distance(self):
        exact, approx = make_pair()
        assert max_error_distance(exact, approx) == 1

    def test_max_ignores_zero_probability_inputs(self):
        exact, approx = make_pair()
        weighted = exact.with_probabilities([1, 1, 0, 1])
        assert max_error_distance(weighted, approx) == 0

    def test_relative_error_distance(self):
        exact, approx = make_pair()
        # only input 2 errs: ED 1, exact word 2 -> 0.5; mean over 4 inputs
        assert np.isclose(
            mean_relative_error_distance(exact, approx), 0.125
        )

    def test_profile_shape(self):
        exact, approx = make_pair()
        assert error_distance_profile(exact, approx).shape == (4,)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_metric_bounds_property(seed):
    """0 <= ER <= 1 and 0 <= MED <= max ED <= 2^m - 1 for any pair."""
    rng = np.random.default_rng(seed)
    n, m = int(rng.integers(1, 6)), int(rng.integers(1, 5))
    probs = rng.random(1 << n)
    exact = TruthTable.random(n, m, rng, probs / probs.sum())
    approx = TruthTable.random(n, m, rng)
    er = error_rate(exact, approx)
    med = mean_error_distance(exact, approx)
    worst = max_error_distance(exact, approx)
    assert 0.0 <= er <= 1.0 + 1e-12
    assert 0.0 <= med <= worst + 1e-12
    assert worst <= (1 << m) - 1


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_med_triangle_inequality_property(seed):
    """MED(A, C) <= MED(A, B) + MED(B, C) under A's distribution."""
    rng = np.random.default_rng(seed)
    n, m = 4, 3
    probs = rng.random(1 << n)
    a = TruthTable.random(n, m, rng, probs / probs.sum())
    b = TruthTable.random(n, m, rng, a.probabilities)
    c = TruthTable.random(n, m, rng, a.probabilities)
    assert mean_error_distance(a, c) <= (
        mean_error_distance(a, b) + mean_error_distance(b, c) + 1e-9
    )
