"""Unit tests for :mod:`repro.boolean.truth_table`."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolean.truth_table import (
    TruthTable,
    bits_to_index,
    index_to_bits,
    uniform_distribution,
)
from repro.errors import DimensionError


class TestConstruction:
    def test_from_outputs_shapes(self):
        table = TruthTable(np.zeros((8, 2), dtype=int))
        assert table.n_inputs == 3
        assert table.n_outputs == 2
        assert table.size == 8

    def test_single_output_vector_promoted(self):
        table = TruthTable(np.array([0, 1, 1, 0]))
        assert table.n_inputs == 2
        assert table.n_outputs == 1

    def test_rejects_non_power_of_two_rows(self):
        with pytest.raises(DimensionError):
            TruthTable(np.zeros((6, 2), dtype=int))

    def test_rejects_non_binary_entries(self):
        with pytest.raises(DimensionError):
            TruthTable(np.full((4, 1), 2))

    def test_rejects_zero_outputs(self):
        with pytest.raises(DimensionError):
            TruthTable(np.zeros((4, 0), dtype=int))

    def test_rejects_bad_probability_shape(self):
        with pytest.raises(DimensionError):
            TruthTable(np.zeros((4, 1), dtype=int), probabilities=[0.5, 0.5])

    def test_rejects_negative_probabilities(self):
        with pytest.raises(DimensionError):
            TruthTable(
                np.zeros((4, 1), dtype=int),
                probabilities=[0.5, 0.5, 0.5, -0.5],
            )

    def test_probabilities_normalized(self):
        table = TruthTable(
            np.zeros((4, 1), dtype=int), probabilities=[1, 1, 1, 1]
        )
        assert np.allclose(table.probabilities, 0.25)

    def test_outputs_are_read_only(self):
        table = TruthTable(np.zeros((4, 1), dtype=int))
        with pytest.raises(ValueError):
            table.outputs[0, 0] = 1


class TestFromWords:
    def test_round_trip_words(self):
        words = np.array([3, 0, 2, 1])
        table = TruthTable.from_words(words, n_inputs=2, n_outputs=2)
        assert np.array_equal(table.words, words)

    def test_bit_order_lsb_is_component_zero(self):
        table = TruthTable.from_words([2], n_inputs=0, n_outputs=2)
        # word 2 = binary 10 -> g_1 (component 0) = 0, g_2 (component 1) = 1
        assert table.outputs[0, 0] == 0
        assert table.outputs[0, 1] == 1

    def test_rejects_word_overflow(self):
        with pytest.raises(DimensionError):
            TruthTable.from_words([4], n_inputs=0, n_outputs=2)

    def test_rejects_wrong_length(self):
        with pytest.raises(DimensionError):
            TruthTable.from_words([0, 1], n_inputs=2, n_outputs=1)


class TestFromIntegerFunction:
    def test_identity(self):
        table = TruthTable.from_integer_function(
            lambda x: x, n_inputs=4, n_outputs=4
        )
        assert np.array_equal(table.words, np.arange(16))

    def test_evaluate_word_matches_function(self):
        table = TruthTable.from_integer_function(
            lambda x: (x * 5) % 8, n_inputs=3, n_outputs=3
        )
        for idx in range(8):
            assert table.evaluate_word(idx) == (idx * 5) % 8


class TestFromVectorFunction:
    def test_msb_convention(self):
        # g(x1, x2) = x1 (the MSB of the index)
        table = TruthTable.from_vector_function(
            lambda bits: [bits[0]], n_inputs=2
        )
        assert np.array_equal(table.component(0), [0, 0, 1, 1])


class TestAccessors:
    def test_component_range_check(self, small_table):
        with pytest.raises(DimensionError):
            small_table.component(3)

    def test_with_component_replaces_only_target(self, small_table):
        new_column = 1 - small_table.component(1)
        updated = small_table.with_component(1, new_column)
        assert np.array_equal(updated.component(1), new_column)
        assert np.array_equal(updated.component(0), small_table.component(0))
        assert np.array_equal(updated.component(2), small_table.component(2))

    def test_with_component_shape_check(self, small_table):
        with pytest.raises(DimensionError):
            small_table.with_component(0, np.zeros(3, dtype=int))

    def test_restrict_keeps_order(self, small_table):
        sub = small_table.restrict([2, 0])
        assert np.array_equal(sub.component(0), small_table.component(2))
        assert np.array_equal(sub.component(1), small_table.component(0))

    def test_restrict_empty_rejected(self, small_table):
        with pytest.raises(DimensionError):
            small_table.restrict([])

    def test_equality_and_hash(self, small_table):
        clone = small_table.copy()
        assert clone == small_table
        assert hash(clone) == hash(small_table)
        changed = small_table.with_component(
            0, 1 - small_table.component(0)
        )
        assert changed != small_table

    def test_words_binary_encoding(self):
        outputs = np.array([[1, 0, 1]])  # g1=1 (w 1), g2=0, g3=1 (w 4)
        table = TruthTable(outputs)
        assert table.words[0] == 5


class TestBitHelpers:
    def test_index_to_bits_msb_first(self):
        assert np.array_equal(index_to_bits(0b101, 3), [1, 0, 1])

    def test_bits_to_index_inverse(self):
        for idx in range(16):
            assert bits_to_index(index_to_bits(idx, 4)) == idx

    def test_index_to_bits_range_check(self):
        with pytest.raises(DimensionError):
            index_to_bits(8, 3)

    def test_bits_to_index_rejects_non_binary(self):
        with pytest.raises(DimensionError):
            bits_to_index([0, 2])

    def test_uniform_distribution_sums_to_one(self):
        assert np.isclose(uniform_distribution(5).sum(), 1.0)

    def test_uniform_distribution_negative_rejected(self):
        with pytest.raises(DimensionError):
            uniform_distribution(-1)


@settings(max_examples=30, deadline=None)
@given(
    n_inputs=st.integers(min_value=1, max_value=6),
    n_outputs=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_words_round_trip_property(n_inputs, n_outputs, seed):
    """from_words(words) recovers exactly the words it was given."""
    rng = np.random.default_rng(seed)
    words = rng.integers(0, 1 << n_outputs, size=1 << n_inputs)
    table = TruthTable.from_words(words, n_inputs, n_outputs)
    assert np.array_equal(table.words, words)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_evaluate_matches_outputs_property(seed):
    rng = np.random.default_rng(seed)
    table = TruthTable.random(4, 3, rng)
    indices = rng.integers(0, 16, size=10)
    assert np.array_equal(table.evaluate(indices), table.outputs[indices])
