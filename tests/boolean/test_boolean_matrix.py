"""Unit tests for :mod:`repro.boolean.boolean_matrix`."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolean.boolean_matrix import BooleanMatrix
from repro.boolean.partition import InputPartition
from repro.boolean.truth_table import TruthTable
from repro.errors import DimensionError


class TestConstruction:
    def test_basic_shape(self):
        m = BooleanMatrix(np.array([[0, 1], [1, 0]]))
        assert m.n_rows == 2 and m.n_cols == 2

    def test_rejects_non_binary(self):
        with pytest.raises(DimensionError):
            BooleanMatrix(np.array([[0, 2]]))

    def test_rejects_1d(self):
        with pytest.raises(DimensionError):
            BooleanMatrix(np.array([0, 1]))

    def test_rejects_probability_shape_mismatch(self):
        with pytest.raises(DimensionError):
            BooleanMatrix(np.zeros((2, 2), dtype=int), np.zeros((2, 3)))

    def test_rejects_negative_probabilities(self):
        with pytest.raises(DimensionError):
            BooleanMatrix(
                np.zeros((2, 2), dtype=int), np.array([[0.5, -0.1], [0, 0]])
            )

    def test_default_probabilities_uniform(self):
        m = BooleanMatrix(np.zeros((2, 4), dtype=int))
        assert np.allclose(m.probabilities, 1 / 8)


class TestFromFunction:
    def test_values_match_truth_table(self, small_table, small_partition):
        m = BooleanMatrix.from_function(small_table, 1, small_partition)
        component = small_table.component(1)
        for idx in range(small_table.size):
            row, col = small_partition.cell_of_index(idx)
            assert m.values[row, col] == component[idx]

    def test_probabilities_match(self, small_table, small_partition):
        m = BooleanMatrix.from_function(small_table, 0, small_partition)
        assert np.isclose(m.probabilities.sum(), 1.0)
        idx = 13
        row, col = small_partition.cell_of_index(idx)
        assert np.isclose(
            m.probabilities[row, col], small_table.probabilities[idx]
        )

    def test_partition_size_mismatch_rejected(self, small_table):
        wrong = InputPartition(free=(0,), bound=(1, 2), n_inputs=3)
        with pytest.raises(DimensionError):
            BooleanMatrix.from_function(small_table, 0, wrong)

    def test_to_component_round_trip(self, small_table, small_partition):
        m = BooleanMatrix.from_function(small_table, 2, small_partition)
        assert np.array_equal(m.to_component(), small_table.component(2))

    def test_to_component_requires_partition(self):
        m = BooleanMatrix(np.zeros((2, 2), dtype=int))
        with pytest.raises(DimensionError):
            m.to_component()


class TestStructureQueries:
    def test_distinct_counts(self):
        m = BooleanMatrix(
            np.array([[0, 0, 1], [0, 0, 1], [1, 1, 0]])
        )
        assert m.distinct_row_count() == 2
        assert m.distinct_column_count() == 2

    def test_weights(self):
        probs = np.array([[0.1, 0.2], [0.3, 0.4]])
        m = BooleanMatrix(np.zeros((2, 2), dtype=int), probs)
        assert np.allclose(m.column_weights(), [0.4, 0.6])
        assert np.allclose(m.row_weights(), [0.3, 0.7])

    def test_with_values(self):
        m = BooleanMatrix(np.zeros((2, 2), dtype=int))
        m2 = m.with_values(np.ones((2, 2), dtype=int))
        assert m2.values.sum() == 4
        assert np.allclose(m2.probabilities, m.probabilities)

    def test_equality(self):
        a = BooleanMatrix(np.eye(2, dtype=int))
        b = BooleanMatrix(np.eye(2, dtype=int))
        assert a == b
        assert hash(a) == hash(b)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_matrix_round_trip_property(seed):
    """from_function -> to_component is the identity for any partition."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 7))
    table = TruthTable.random(n, 2, rng)
    free_size = int(rng.integers(1, n))
    order = rng.permutation(n)
    w = InputPartition(
        sorted(int(v) for v in order[:free_size]),
        sorted(int(v) for v in order[free_size:]),
        n,
    )
    m = BooleanMatrix.from_function(table, 1, w)
    assert np.array_equal(m.to_component(), table.component(1))
