"""Unit tests for :mod:`repro.boolean.partition`."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolean.partition import InputPartition
from repro.errors import PartitionError


class TestValidation:
    def test_overlap_rejected(self):
        with pytest.raises(PartitionError):
            InputPartition(free=(0, 1), bound=(1, 2), n_inputs=3)

    def test_gap_rejected(self):
        with pytest.raises(PartitionError):
            InputPartition(free=(0,), bound=(2,), n_inputs=3)

    def test_empty_side_rejected(self):
        with pytest.raises(PartitionError):
            InputPartition(free=(), bound=(0, 1), n_inputs=2)
        with pytest.raises(PartitionError):
            InputPartition(free=(0, 1), bound=(), n_inputs=2)

    def test_out_of_range_variable_rejected(self):
        with pytest.raises(PartitionError):
            InputPartition(free=(0, 3), bound=(1, 2), n_inputs=3)


class TestIndexMaps:
    def test_shapes(self):
        w = InputPartition(free=(0, 1), bound=(2, 3, 4), n_inputs=5)
        assert w.n_rows == 4
        assert w.n_cols == 8
        assert w.row_of_index.shape == (32,)
        assert w.index_of_cell.shape == (4, 8)

    def test_known_mapping(self):
        # free = (x1, x2): row bits are the two MSBs of the index
        w = InputPartition(free=(0, 1), bound=(2, 3), n_inputs=4)
        assert w.cell_of_index(0b1001) == (0b10, 0b01)

    def test_variable_order_sets_significance(self):
        # listing (1, 0) makes x2 the row MSB
        w = InputPartition(free=(1, 0), bound=(2, 3), n_inputs=4)
        assert w.cell_of_index(0b1000) == (0b01, 0b00)
        assert w.cell_of_index(0b0100) == (0b10, 0b00)

    def test_cell_round_trip(self):
        w = InputPartition(free=(0, 2), bound=(1, 3, 4), n_inputs=5)
        for idx in range(32):
            row, col = w.cell_of_index(idx)
            assert w.index_of_cell[row, col] == idx

    def test_index_of_cell_is_bijection(self):
        w = InputPartition(free=(4, 0), bound=(2, 1, 3), n_inputs=5)
        flattened = np.sort(w.index_of_cell.ravel())
        assert np.array_equal(flattened, np.arange(32))

    def test_maps_read_only(self):
        w = InputPartition(free=(0,), bound=(1,), n_inputs=2)
        with pytest.raises(ValueError):
            w.row_of_index[0] = 5


class TestOperations:
    def test_swapped(self):
        w = InputPartition(free=(0, 1), bound=(2,), n_inputs=3)
        s = w.swapped()
        assert s.free == (2,)
        assert s.bound == (0, 1)

    def test_canonical_sorts(self):
        w = InputPartition(free=(1, 0), bound=(3, 2), n_inputs=4)
        c = w.canonical()
        assert c.free == (0, 1)
        assert c.bound == (2, 3)

    def test_equality_hash(self):
        a = InputPartition(free=(0, 1), bound=(2,), n_inputs=3)
        b = InputPartition(free=(0, 1), bound=(2,), n_inputs=3)
        c = InputPartition(free=(1, 0), bound=(2,), n_inputs=3)
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_iter_unpacks(self):
        free, bound = InputPartition(free=(0,), bound=(1, 2), n_inputs=3)
        assert free == (0,)
        assert bound == (1, 2)


@settings(max_examples=40, deadline=None)
@given(
    n_inputs=st.integers(min_value=2, max_value=8),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_cell_maps_bijective_property(n_inputs, seed):
    """row/col maps always form a bijection with index_of_cell."""
    rng = np.random.default_rng(seed)
    free_size = int(rng.integers(1, n_inputs))
    order = rng.permutation(n_inputs)
    w = InputPartition(
        sorted(int(v) for v in order[:free_size]),
        sorted(int(v) for v in order[free_size:]),
        n_inputs,
    )
    indices = np.arange(1 << n_inputs)
    recovered = w.index_of_cell[w.row_of_index, w.col_of_index]
    assert np.array_equal(recovered, indices)
