"""Unit tests for :mod:`repro.boolean.random_functions`."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolean.boolean_matrix import BooleanMatrix
from repro.boolean.decomposition import (
    has_column_decomposition,
    has_row_decomposition,
)
from repro.boolean.random_functions import (
    flip_cells,
    random_column_decomposable_matrix,
    random_decomposable_function,
    random_function,
    random_partition,
)
from repro.errors import DimensionError


class TestRandomFunction:
    def test_shapes(self, rng):
        table = random_function(4, 3, rng)
        assert table.n_inputs == 4 and table.n_outputs == 3

    def test_random_distribution_normalized(self, rng):
        table = random_function(4, 2, rng, random_distribution=True)
        assert np.isclose(table.probabilities.sum(), 1.0)
        assert not np.allclose(table.probabilities, table.probabilities[0])

    def test_deterministic_given_seed(self):
        a = random_function(4, 2, np.random.default_rng(42))
        b = random_function(4, 2, np.random.default_rng(42))
        assert a == b


class TestRandomPartition:
    def test_sizes(self, rng):
        w = random_partition(6, 2, rng)
        assert len(w.free) == 2 and len(w.bound) == 4

    def test_bad_free_size(self, rng):
        with pytest.raises(DimensionError):
            random_partition(4, 0, rng)
        with pytest.raises(DimensionError):
            random_partition(4, 4, rng)


class TestDecomposableGenerators:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_matrix_generator_certifies(self, seed):
        rng = np.random.default_rng(seed)
        matrix, setting = random_column_decomposable_matrix(4, 8, rng)
        assert has_column_decomposition(matrix)
        assert np.array_equal(setting.reconstruct(), matrix.values)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_function_generator_certifies(self, seed):
        rng = np.random.default_rng(seed)
        table, partitions = random_decomposable_function(5, 3, 2, rng)
        for k, w in enumerate(partitions):
            matrix = BooleanMatrix.from_function(table, k, w)
            assert has_column_decomposition(matrix)
            assert has_row_decomposition(matrix)


class TestFlipCells:
    def test_flip_count(self, small_table, rng):
        flipped = flip_cells(small_table, 0, 5, rng)
        diff = (flipped.component(0) != small_table.component(0)).sum()
        assert diff == 5

    def test_other_components_untouched(self, small_table, rng):
        flipped = flip_cells(small_table, 0, 5, rng)
        assert np.array_equal(flipped.component(1), small_table.component(1))

    def test_zero_flips_identity(self, small_table, rng):
        assert flip_cells(small_table, 1, 0, rng) == small_table

    def test_too_many_flips_rejected(self, small_table, rng):
        with pytest.raises(DimensionError):
            flip_cells(small_table, 0, small_table.size + 1, rng)
