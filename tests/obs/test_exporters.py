"""Unit tests for :mod:`repro.obs.exporters`."""

import json

from repro._version import package_version
from repro.obs.exporters import (
    chrome_trace_dict,
    jsonl_lines,
    prometheus_text,
    trace_header,
    write_chrome_trace,
    write_jsonl,
    write_trace,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer


def traced_run():
    tracer = Tracer(metadata={"command": "test"})
    with tracer.span("decompose", category="framework", n_inputs=4):
        with tracer.span("sb_solve", category="stage", n_spins=16):
            tracer.instant("sb_probe", category="solver", n_iterations=100)
    return tracer


class TestTraceHeader:
    def test_carries_version_and_metadata(self):
        header = trace_header({"workload": "cos"})
        assert header["format"] == "repro-trace"
        assert header["repro_version"] == package_version()
        assert header["time_unit"] == "us"
        assert header["workload"] == "cos"


class TestJsonl:
    def test_header_line_first_then_one_event_per_line(self):
        tracer = traced_run()
        lines = jsonl_lines(tracer.events(), tracer.metadata)
        assert len(lines) == 1 + 3
        header = json.loads(lines[0])
        assert header["type"] == "header"
        assert header["command"] == "test"
        types = [json.loads(line)["type"] for line in lines[1:]]
        assert types.count("span") == 2
        assert types.count("instant") == 1

    def test_write_round_trips(self, tmp_path):
        tracer = traced_run()
        path = write_jsonl(tracer, tmp_path / "trace.jsonl")
        lines = path.read_text().splitlines()
        assert all(json.loads(line) for line in lines)
        assert len(lines) == 4


class TestChromeTrace:
    def test_structural_validity(self):
        tracer = traced_run()
        payload = chrome_trace_dict(tracer.events(), tracer.metadata)
        assert isinstance(payload["traceEvents"], list)
        assert payload["displayTimeUnit"] == "ms"
        assert payload["otherData"]["format"] == "repro-trace"
        for event in payload["traceEvents"]:
            assert event["ph"] in ("X", "i")
            assert {"name", "cat", "ts", "pid", "tid", "args"} <= set(event)
            if event["ph"] == "X":
                assert "dur" in event and event["dur"] >= 0.0
            else:
                assert event["s"] == "t"

    def test_span_linkage_survives_in_args(self):
        tracer = traced_run()
        payload = chrome_trace_dict(tracer.events(), tracer.metadata)
        by_name = {e["name"]: e for e in payload["traceEvents"]}
        outer = by_name["decompose"]["args"]["span_id"]
        assert by_name["sb_solve"]["args"]["parent_id"] == outer
        assert "parent_id" not in by_name["decompose"]["args"]

    def test_write_is_loadable_json(self, tmp_path):
        tracer = traced_run()
        path = write_chrome_trace(tracer, tmp_path / "trace.json")
        payload = json.loads(path.read_text())
        assert len(payload["traceEvents"]) == 3


class TestWriteTrace:
    def test_suffix_selects_format(self, tmp_path):
        tracer = traced_run()
        chrome = write_trace(tracer, tmp_path / "t.json")
        jsonl = write_trace(tracer, tmp_path / "t.jsonl")
        assert "traceEvents" in json.loads(chrome.read_text())
        first = json.loads(jsonl.read_text().splitlines()[0])
        assert first["type"] == "header"


class TestPrometheusText:
    def test_counter_gauge_histogram_exposition(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total", help="all jobs").inc(3)
        registry.gauge("queue_depth").set(2)
        hist = registry.histogram("iters", buckets=(10.0, 100.0))
        hist.observe(5)
        hist.observe(500)
        text = prometheus_text(registry)
        assert "# HELP repro_jobs_total all jobs" in text
        assert "# TYPE repro_jobs_total counter" in text
        assert "repro_jobs_total 3" in text
        assert "repro_queue_depth 2" in text
        assert 'repro_iters_bucket{le="10"} 1' in text
        assert 'repro_iters_bucket{le="100"} 1' in text
        assert 'repro_iters_bucket{le="+Inf"} 2' in text
        assert "repro_iters_sum 505" in text
        assert "repro_iters_count 2" in text
        assert text.endswith("\n")

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""

    def test_prefix_is_configurable(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        assert "svc_x 1" in prometheus_text(registry, prefix="svc_")
