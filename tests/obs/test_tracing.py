"""Unit tests for :mod:`repro.obs.tracing`."""

import threading

from repro.obs.tracing import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    get_tracer,
    set_tracer,
    tracing,
)


class TestNullTracer:
    def test_default_global_is_null(self):
        assert get_tracer() is NULL_TRACER
        assert not get_tracer().enabled

    def test_span_is_shared_noop(self):
        tracer = NullTracer()
        span_a = tracer.span("x", category="stage", foo=1)
        span_b = tracer.span("y")
        assert span_a is span_b  # one shared object, zero allocation
        with span_a as span:
            span.set_args(bar=2)
        assert tracer.events() == []

    def test_instant_is_noop(self):
        tracer = NullTracer()
        tracer.instant("evt", category="service", job_id="j1")
        assert tracer.events() == []


class TestTracer:
    def test_span_records_event(self):
        tracer = Tracer()
        with tracer.span("solve", category="stage", n=8):
            pass
        (event,) = tracer.events()
        assert event["type"] == "span"
        assert event["name"] == "solve"
        assert event["cat"] == "stage"
        assert event["args"] == {"n": 8}
        assert event["dur_us"] >= 0.0
        assert event["parent_id"] is None

    def test_nesting_sets_parent_ids(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                tracer.instant("mark")
        events = {e["name"]: e for e in tracer.events()}
        assert events["inner"]["parent_id"] == outer.span_id
        assert events["mark"]["parent_id"] == inner.span_id
        assert events["outer"]["parent_id"] is None
        # children finalize before their parent (exit order)
        names = [e["name"] for e in tracer.events()]
        assert names.index("inner") < names.index("outer")

    def test_set_args_while_open(self):
        tracer = Tracer()
        with tracer.span("job", outcome="pending") as span:
            span.set_args(outcome="completed", cache_hit=True)
        (event,) = tracer.events()
        assert event["args"] == {"outcome": "completed", "cache_hit": True}

    def test_timestamps_are_monotonic_from_epoch(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        first, second = tracer.events()
        assert 0.0 <= first["ts_us"] <= second["ts_us"]

    def test_metadata_is_copied(self):
        source = {"command": "decompose"}
        tracer = Tracer(metadata=source)
        source["command"] = "mutated"
        assert tracer.metadata == {"command": "decompose"}

    def test_thread_local_span_stacks(self):
        tracer = Tracer()
        barrier = threading.Barrier(2)

        def worker(name):
            barrier.wait()
            with tracer.span(name):
                tracer.instant(f"{name}-mark")

        threads = [
            threading.Thread(target=worker, args=(f"t{i}",))
            for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        events = tracer.events()
        assert len(events) == 4
        by_name = {e["name"]: e for e in events}
        # each instant parents to its own thread's span, never the other
        for i in range(2):
            assert (
                by_name[f"t{i}-mark"]["parent_id"]
                == by_name[f"t{i}"]["span_id"]
            )
        assert by_name["t0"]["tid"] != by_name["t1"]["tid"]


class TestGlobalInstallation:
    def test_tracing_installs_and_restores(self):
        tracer = Tracer()
        assert get_tracer() is NULL_TRACER
        with tracing(tracer):
            assert get_tracer() is tracer
        assert get_tracer() is NULL_TRACER

    def test_tracing_restores_on_error(self):
        tracer = Tracer()
        try:
            with tracing(tracer):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert get_tracer() is NULL_TRACER

    def test_set_tracer_none_restores_null(self):
        tracer = Tracer()
        set_tracer(tracer)
        try:
            assert get_tracer() is tracer
        finally:
            set_tracer(None)
        assert get_tracer() is NULL_TRACER
