"""Unit tests for :mod:`repro.obs.metrics`."""

import threading

import pytest

from repro.errors import ConfigurationError
from repro.obs.metrics import (
    STOP_ITERATION_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
    set_metrics,
)


class TestCounter:
    def test_increments(self):
        counter = Counter("jobs_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative(self):
        counter = Counter("jobs_total")
        with pytest.raises(ConfigurationError):
            counter.inc(-1.0)

    def test_snapshot(self):
        counter = Counter("jobs_total")
        counter.inc()
        assert counter.snapshot() == {"kind": "counter", "value": 1.0}


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("depth")
        gauge.set(5.0)
        gauge.inc(2.0)
        gauge.dec(3.0)
        assert gauge.value == 4.0
        assert gauge.snapshot() == {"kind": "gauge", "value": 4.0}


class TestHistogram:
    def test_cumulative_snapshot(self):
        hist = Histogram("iters", buckets=(10.0, 100.0))
        for value in (5, 7, 50, 5000):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["buckets"] == {"10.0": 2, "100.0": 3, "+Inf": 4}
        assert snap["count"] == 4
        assert snap["sum"] == 5062.0

    def test_value_on_boundary_falls_in_lower_bucket(self):
        hist = Histogram("iters", buckets=(10.0, 100.0))
        hist.observe(10.0)  # le="10.0" is inclusive, Prometheus-style
        assert hist.snapshot()["buckets"]["10.0"] == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Histogram("bad", buckets=())
        with pytest.raises(ConfigurationError):
            Histogram("bad", buckets=(1.0, 1.0))
        with pytest.raises(ConfigurationError):
            Histogram("bad", buckets=(5.0, 1.0))
        with pytest.raises(ConfigurationError):
            Histogram("bad", buckets=(1.0, float("inf")))

    def test_thread_safety(self):
        hist = Histogram("iters", buckets=(0.5,))

        def worker():
            for _ in range(1000):
                hist.observe(1.0)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert hist.count == 4000
        assert hist.snapshot()["buckets"]["+Inf"] == 4000


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_kind_mismatch_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ConfigurationError):
            registry.gauge("a")

    def test_histogram_boundary_mismatch_is_an_error(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        registry.histogram("h", buckets=(1.0, 2.0))  # identical is fine
        with pytest.raises(ConfigurationError):
            registry.histogram("h", buckets=(1.0, 3.0))

    def test_snapshot_is_name_sorted(self):
        registry = MetricsRegistry()
        registry.counter("zeta").inc()
        registry.counter("alpha").inc()
        assert list(registry.snapshot()) == ["alpha", "zeta"]

    def test_clear(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.clear()
        assert registry.snapshot() == {}

    def test_default_buckets_are_stop_iteration_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("solver_stop_iteration")
        assert hist.buckets == STOP_ITERATION_BUCKETS


class TestGlobalRegistry:
    def test_set_metrics_swaps_and_restores(self):
        original = get_metrics()
        fresh = MetricsRegistry()
        try:
            assert set_metrics(fresh) is fresh
            assert get_metrics() is fresh
        finally:
            set_metrics(original)
        assert get_metrics() is original

    def test_set_metrics_none_installs_fresh(self):
        original = get_metrics()
        try:
            replacement = set_metrics(None)
            assert replacement is get_metrics()
            assert replacement is not original
            assert replacement.snapshot() == {}
        finally:
            set_metrics(original)
