"""Unit tests for :mod:`repro.obs.logconfig`."""

import io
import logging

import pytest

from repro.obs.logconfig import (
    ROOT_LOGGER_NAME,
    configure_logging,
    get_logger,
    verbosity_to_level,
)


@pytest.fixture(autouse=True)
def restore_repro_logger():
    """Snapshot/restore the repro logger so tests never leak handlers."""
    logger = logging.getLogger(ROOT_LOGGER_NAME)
    handlers, level = list(logger.handlers), logger.level
    yield
    logger.handlers = handlers
    logger.setLevel(level)


class TestGetLogger:
    def test_unnamed_is_the_root(self):
        assert get_logger().name == "repro"
        assert get_logger("repro").name == "repro"

    def test_names_prefix_into_the_tree(self):
        assert get_logger("ising.kernels").name == "repro.ising.kernels"
        assert get_logger("repro.service").name == "repro.service"

    def test_library_default_has_null_handler(self):
        handlers = logging.getLogger(ROOT_LOGGER_NAME).handlers
        assert any(
            isinstance(h, logging.NullHandler) for h in handlers
        )


class TestVerbosityMap:
    @pytest.mark.parametrize(
        "verbosity,level",
        [
            (-5, logging.ERROR),
            (-1, logging.ERROR),
            (0, logging.WARNING),
            (1, logging.INFO),
            (2, logging.DEBUG),
            (7, logging.DEBUG),
        ],
    )
    def test_mapping(self, verbosity, level):
        assert verbosity_to_level(verbosity) == level


class TestConfigureLogging:
    def test_writes_formatted_records(self):
        stream = io.StringIO()
        logger = configure_logging(verbosity=1, stream=stream)
        get_logger("ising.kernels").info("backend %s", "numba")
        assert logger.level == logging.INFO
        assert (
            "INFO repro.ising.kernels: backend numba" in stream.getvalue()
        )

    def test_quiet_suppresses_warnings(self):
        stream = io.StringIO()
        configure_logging(verbosity=-1, stream=stream)
        get_logger().warning("should be hidden")
        get_logger().error("should appear")
        output = stream.getvalue()
        assert "hidden" not in output
        assert "should appear" in output

    def test_reconfiguration_never_stacks_handlers(self):
        # earlier tests (e.g. the CLI suite) may already have installed
        # the tagged handler; only the managed handler count matters
        def tagged():
            logger = logging.getLogger(ROOT_LOGGER_NAME)
            return [
                h for h in logger.handlers
                if getattr(h, "_repro_cli_handler", False)
            ]

        configure_logging(verbosity=0)
        untagged = len(logging.getLogger(ROOT_LOGGER_NAME).handlers) - 1
        for verbosity in (0, 1, 2):
            configure_logging(verbosity=verbosity)
        assert len(tagged()) == 1
        assert (
            len(logging.getLogger(ROOT_LOGGER_NAME).handlers)
            == untagged + 1
        )
