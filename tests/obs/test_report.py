"""Unit tests for :mod:`repro.obs.report`."""

import pytest

from repro.errors import ReproError
from repro.obs.exporters import write_chrome_trace, write_jsonl
from repro.obs.report import (
    TraceFormatError,
    load_trace,
    render_report,
    summarize_trace,
)
from repro.obs.tracing import Tracer


def traced_run():
    tracer = Tracer(metadata={"command": "test", "repro_version": "9.9.9"})
    with tracer.span("decompose", category="framework"):
        with tracer.span("sb_solve", category="stage"):
            tracer.instant(
                "sb_probe",
                category="solver",
                n_iterations=120,
                stop_reason="variance_converged",
                n_interventions=3,
                n_interventions_changed=1,
                kernel_step_seconds=0.25,
            )
        with tracer.span("decode", category="stage"):
            pass
        with tracer.span("sb_solve", category="stage"):
            tracer.instant(
                "sb_probe",
                category="solver",
                n_iterations=4000,
                stop_reason="max_iterations",
                n_interventions=0,
                n_interventions_changed=0,
                kernel_step_seconds=0.75,
            )
    return tracer


class TestLoadTrace:
    def test_loads_both_formats_identically(self, tmp_path):
        tracer = traced_run()
        chrome = write_chrome_trace(tracer, tmp_path / "t.json")
        jsonl = write_jsonl(tracer, tmp_path / "t.jsonl")
        chrome_events, chrome_meta = load_trace(chrome)
        jsonl_events, jsonl_meta = load_trace(jsonl)
        assert chrome_meta["command"] == "test"
        assert jsonl_meta["command"] == "test"
        assert len(chrome_events) == len(jsonl_events) == 6
        assert summarize_trace(chrome_events, chrome_meta)["solver"] == (
            summarize_trace(jsonl_events, jsonl_meta)["solver"]
        )

    def test_unknown_format_raises(self, tmp_path):
        bogus = tmp_path / "bogus.txt"
        bogus.write_text("")
        with pytest.raises(TraceFormatError):
            load_trace(bogus)

    def test_corrupt_chrome_json_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"traceEvents": [')
        with pytest.raises(TraceFormatError):
            load_trace(bad)

    def test_corrupt_jsonl_line_raises(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "header"}\nnot json\n')
        with pytest.raises(TraceFormatError):
            load_trace(bad)

    def test_format_error_is_a_repro_error(self):
        # the CLI's one-line error handling relies on this
        assert issubclass(TraceFormatError, ReproError)
        assert issubclass(TraceFormatError, ValueError)


class TestSummarizeTrace:
    def test_stage_breakdown(self, tmp_path):
        tracer = traced_run()
        events, meta = load_trace(
            write_chrome_trace(tracer, tmp_path / "t.json")
        )
        summary = summarize_trace(events, meta)
        assert summary["n_events"] == 6
        assert summary["wall_ms"] > 0.0
        sb = summary["stages"]["sb_solve"]
        assert sb["count"] == 2
        assert sb["mean_ms"] == pytest.approx(sb["total_ms"] / 2)
        assert summary["stages"]["decode"]["count"] == 1
        assert "decompose" not in summary["stages"]  # framework, not stage

    def test_solver_rollup(self, tmp_path):
        tracer = traced_run()
        events, meta = load_trace(
            write_chrome_trace(tracer, tmp_path / "t.json")
        )
        solver = summarize_trace(events, meta)["solver"]
        assert solver["runs"] == 2
        assert solver["stop_reasons"] == {
            "max_iterations": 1, "variance_converged": 1,
        }
        hist = solver["stop_iteration_histogram"]
        assert hist["<= 200"] == 1
        assert hist["<= 5000"] == 1
        assert solver["kernel_step_seconds"] == pytest.approx(1.0)

    def test_intervention_rollup(self):
        summary = summarize_trace(traced_run().events())
        assert summary["interventions"] == {"total": 3, "changed": 1}

    def test_empty_event_stream(self):
        summary = summarize_trace([])
        assert summary["n_events"] == 0
        assert summary["stages"] == {}
        assert summary["solver"]["runs"] == 0


class TestRenderReport:
    def test_contains_all_sections(self):
        tracer = traced_run()
        text = render_report(summarize_trace(tracer.events(),
                                             tracer.metadata))
        assert "repro 9.9.9" in text
        assert "stage time breakdown" in text
        assert "sb_solve" in text
        assert "stop iteration histogram" in text
        assert "variance_converged: 1" in text
        assert "theorem-3 interventions: 3 (1 changed" in text

    def test_renders_empty_summary(self):
        text = render_report(summarize_trace([]))
        assert "(no stage spans recorded)" in text
