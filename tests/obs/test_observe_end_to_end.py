"""End-to-end observability acceptance: tracing never changes results.

The ISSUE-level guarantee: running the full decomposition (and the
service pipeline on top of it) under ``repro.obs.observe`` produces
**bit-identical designs** to the same seeded run without observability —
same approximations, same MED, same content-addressed artifact key.
"""

import json

import numpy as np
import pytest

from repro._version import package_version
from repro.boolean.truth_table import TruthTable
from repro.core import CoreSolverConfig, FrameworkConfig, IsingDecomposer
from repro.obs import observe, write_trace
from repro.obs.report import load_trace, summarize_trace
from repro.serialization import result_to_dict
from repro.service import DecompositionService, JobSpec
from repro.service.spec import artifact_key


def fast_config(**overrides):
    base = dict(
        mode="joint",
        free_size=2,
        n_partitions=3,
        n_rounds=1,
        seed=5,
        solver=CoreSolverConfig(max_iterations=200, n_replicas=2),
    )
    base.update(overrides)
    return FrameworkConfig(**base)


@pytest.fixture(scope="module")
def table():
    return TruthTable.from_integer_function(
        lambda x: (3 * x + 1) % 16, n_inputs=4, n_outputs=4
    )


class TestDecomposeBitIdentical:
    def test_observed_run_matches_unobserved(self, table, tmp_path):
        baseline = IsingDecomposer(fast_config()).decompose(table)
        with observe(metadata={"test": "e2e"}) as tracer:
            observed = IsingDecomposer(fast_config()).decompose(table)

        assert observed.med == baseline.med
        assert np.array_equal(
            observed.approx.outputs, baseline.approx.outputs
        )
        assert result_to_dict(observed) == result_to_dict(baseline)

        # while proving neutrality the trace still captured the run
        events = tracer.events()
        stage_names = {
            e["name"] for e in events
            if e["type"] == "span" and e["cat"] == "stage"
        }
        assert "sb_solve" in stage_names
        assert "decode" in stage_names
        assert "partition_enumeration" in stage_names
        framework = {
            e["name"] for e in events if e["cat"] == "framework"
        }
        assert {"decompose", "round", "component"} <= framework
        assert any(e["name"] == "sb_probe" for e in events)

        # and the export loads as a structurally valid Chrome trace
        path = write_trace(tracer, tmp_path / "e2e.json")
        payload = json.loads(path.read_text())
        assert {e["ph"] for e in payload["traceEvents"]} <= {"X", "i"}
        summary = summarize_trace(*load_trace(path))
        assert summary["solver"]["runs"] > 0

    def test_trace_every_thins_solver_trace_without_changing_design(
        self, table
    ):
        dense = IsingDecomposer(fast_config()).decompose(table)
        thinned = IsingDecomposer(
            fast_config(solver=CoreSolverConfig(
                max_iterations=200, n_replicas=2, trace_every=4,
            ))
        ).decompose(table)
        assert result_to_dict(thinned) == result_to_dict(dense)

    def test_trace_every_is_semantically_neutral(self):
        # trace_every shapes memory, not answers: identical artifact keys
        plain = fast_config()
        thinned = fast_config(
            solver=CoreSolverConfig(
                max_iterations=200, n_replicas=2, trace_every=4,
            )
        )
        assert plain.semantic_dict() == thinned.semantic_dict()


class TestServiceRoundTripBitIdentical:
    def test_same_artifact_key_and_design_with_observe(self, tmp_path):
        spec = JobSpec(workload="cos", n_inputs=4, config=fast_config())
        key = artifact_key(spec.build_table(), spec.config)

        bare = DecompositionService(tmp_path / "bare")
        bare.submit(spec)
        bare.run_until_drained(timeout=120)

        with observe() as tracer:
            traced = DecompositionService(tmp_path / "traced")
            traced.submit(spec)
            traced.run_until_drained(timeout=120)

        bare_env = bare.artifacts.get(key)
        traced_env = traced.artifacts.get(key)
        assert bare_env is not None and traced_env is not None
        assert bare_env["design"] == traced_env["design"]
        assert bare_env["key"] == traced_env["key"] == key
        assert traced_env["repro_version"] == package_version()

        # the service layers show up in the trace
        events = tracer.events()
        service_spans = {
            e["name"] for e in events
            if e["type"] == "span" and e["cat"] == "service"
        }
        assert {"job", "job_decompose", "artifact_put"} <= service_spans
        instants = {e["name"] for e in events if e["type"] == "instant"}
        assert {"job_claimed", "job_completed"} <= instants
        job_span = next(
            e for e in events
            if e["type"] == "span" and e["name"] == "job"
        )
        assert job_span["args"]["outcome"] == "completed"
