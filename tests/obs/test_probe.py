"""Unit tests for :mod:`repro.obs.probe`."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.ising.model import DenseIsingModel
from repro.ising.solvers.bsb import BallisticSBSolver
from repro.ising.stop_criteria import EnergyVarianceStop, FixedIterations
from repro.obs.metrics import MetricsRegistry
from repro.obs.probe import (
    RecordingSolverProbe,
    SolverProbe,
    get_probe_factory,
    make_probe,
    set_probe_factory,
)
from repro.obs.tracing import Tracer


def small_model(seed=0, n=8):
    rng = np.random.default_rng(seed)
    j = rng.normal(size=(n, n))
    j = (j + j.T) / 2.0
    np.fill_diagonal(j, 0.0)
    return DenseIsingModel(biases=rng.normal(size=n), couplings=j)


class TestFactory:
    def test_default_factory_is_none(self):
        assert get_probe_factory() is None
        assert make_probe() is None

    def test_installed_factory_builds_fresh_probes(self):
        set_probe_factory(RecordingSolverProbe)
        try:
            first, second = make_probe(), make_probe()
            assert isinstance(first, RecordingSolverProbe)
            assert first is not second
        finally:
            set_probe_factory(None)
        assert make_probe() is None


class TestRecordingSolverProbe:
    def test_records_run_lifecycle(self):
        probe = RecordingSolverProbe()
        solver = BallisticSBSolver(
            stop=FixedIterations(200, sample_every=20),
            n_replicas=2,
            probe=probe,
        )
        result = solver.solve(small_model(), rng=np.random.default_rng(1))
        assert probe.backend == "inline"
        assert probe.dtype == "float64"
        assert probe.n_spins == 8
        assert probe.n_replicas == 2
        assert probe.kernel_steps == 200
        assert probe.kernel_step_seconds > 0.0
        assert probe.n_iterations == result.n_iterations
        assert probe.stop_reason == result.stop_reason
        assert probe.best_energy == result.energy
        # one (iteration, energy) pair per sampling point
        iterations = [i for i, _ in probe.energy_trace]
        assert iterations == list(range(20, 201, 20))
        assert [e for _, e in probe.energy_trace] == result.energy_trace

    def test_trace_every_downsamples_probe_trace_only(self):
        probe = RecordingSolverProbe(trace_every=3)
        solver = BallisticSBSolver(
            stop=FixedIterations(200, sample_every=20),
            n_replicas=2,
            probe=probe,
        )
        result = solver.solve(small_model(), rng=np.random.default_rng(1))
        assert [i for i, _ in probe.energy_trace] == [20, 80, 140, 200]
        # the solver's own trace is untouched by the probe's thinning
        assert len(result.energy_trace) == 10

    def test_stop_observations_record_variance_vs_threshold(self):
        probe = RecordingSolverProbe()
        solver = BallisticSBSolver(
            stop=EnergyVarianceStop(
                sample_every=10, window=3, threshold=1e-6,
                max_iterations=2000,
            ),
            n_replicas=2,
            probe=probe,
        )
        solver.solve(small_model(), rng=np.random.default_rng(2))
        assert probe.stop_observations
        # the first observations precede a full window: variance is None
        assert probe.stop_observations[0]["variance"] is None
        assert all(
            obs["threshold"] == 1e-6 for obs in probe.stop_observations
        )
        if probe.stop_reason == "variance_converged":
            last = probe.stop_observations[-1]
            assert last["stopped"] is True
            assert last["variance"] < 1e-6

    def test_emits_tracer_events_and_metrics(self):
        tracer = Tracer()
        registry = MetricsRegistry()
        probe = RecordingSolverProbe(tracer=tracer, metrics=registry)
        solver = BallisticSBSolver(
            stop=FixedIterations(100, sample_every=50),
            n_replicas=1,
            intervention=lambda state: None,
            probe=probe,
        )
        solver.solve(small_model(), rng=np.random.default_rng(3))
        names = [e["name"] for e in tracer.events()]
        assert names.count("sb_probe") == 1
        assert names.count("theorem3_intervention") == 2
        sb = [e for e in tracer.events() if e["name"] == "sb_probe"][0]
        assert sb["cat"] == "solver"
        assert sb["args"] == probe.summary()
        snapshot = registry.snapshot()
        assert snapshot["solver_runs_total"]["value"] == 1.0
        assert snapshot["solver_interventions_total"]["value"] == 2.0
        assert snapshot["solver_stop_iteration"]["count"] == 1

    def test_probe_never_perturbs_the_search(self):
        model = small_model(seed=7)

        def run(probe):
            return BallisticSBSolver(
                stop=EnergyVarianceStop(
                    sample_every=10, window=3, max_iterations=1000
                ),
                n_replicas=4,
                probe=probe,
            ).solve(model, rng=np.random.default_rng(11))

        bare = run(None)
        probed = run(RecordingSolverProbe(tracer=Tracer()))
        assert np.array_equal(bare.spins, probed.spins)
        assert bare.energy == probed.energy
        assert bare.n_iterations == probed.n_iterations
        assert bare.energy_trace == probed.energy_trace


class TestSolverValidation:
    def test_trace_every_must_be_positive(self):
        with pytest.raises(SolverError):
            BallisticSBSolver(trace_every=0)

    def test_base_probe_hooks_are_noops(self):
        probe = SolverProbe()
        probe.on_begin(
            n_spins=1, n_replicas=1, max_iterations=1,
            backend="inline", dtype="float64",
        )
        probe.on_step(0.0)
        probe.on_sample(1, 0.0, 0.0)
        probe.on_stop_observation(1, None, None, False)
        probe.on_intervention(1, False)
        probe.on_end(n_iterations=1, stop_reason="x", best_energy=0.0)
