"""SLO parsing and burn-rate evaluation over synthetic samples."""

import pytest

from repro.errors import ConfigurationError
from repro.loadgen.generator import RequestSample, StageResult
from repro.loadgen.slo import SLOSpec, evaluate_slo, parse_slo


def sample(
    index,
    scheduled,
    *,
    ok=True,
    status=201,
    latency=0.01,
    expected_rejection=False,
):
    return RequestSample(
        mix="t",
        index=index,
        scheduled=scheduled,
        sent=scheduled,
        latency=latency,
        open_loop_latency=latency,
        status=status if not ok else status,
        ok=ok,
        deduplicated=False,
        job_id=f"job-{index}" if ok else None,
        error_code=None if ok else "unavailable",
        expected_rejection=expected_rejection,
    )


def stage(samples, rps=10.0):
    return StageResult(
        mix="t",
        offered_rps=rps,
        duration_seconds=len(samples) / rps if rps else 0.0,
        elapsed_seconds=len(samples) / rps if rps else 0.0,
        samples=samples,
    )


class TestParse:
    def test_round_trip_with_aliases(self):
        slo = parse_slo("availability=0.995, p95_ms=500, window_s=2, max_burn=3")
        assert slo == SLOSpec(
            availability=0.995,
            latency_p95_ms=500.0,
            window_seconds=2.0,
            max_burn_rate=3.0,
        )

    def test_defaults_when_keys_omitted(self):
        assert parse_slo("p95_ms=250") == SLOSpec(latency_p95_ms=250.0)
        assert parse_slo("") == SLOSpec()

    @pytest.mark.parametrize(
        "text,match",
        [
            ("p96_ms=1", "unknown SLO key"),
            ("availability", "malformed SLO clause"),
            ("p95_ms=fast", "must be a number"),
        ],
    )
    def test_rejects_bad_specs(self, text, match):
        with pytest.raises(ConfigurationError, match=match):
            parse_slo(text)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"availability": 1.0},
            {"availability": 0.0},
            {"latency_p95_ms": 0.0},
            {"window_seconds": -1.0},
            {"max_burn_rate": 0.0},
        ],
    )
    def test_spec_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            SLOSpec(**kwargs)


class TestEvaluate:
    def test_all_green(self):
        slo = SLOSpec(availability=0.9, latency_p95_ms=100.0)
        verdict = evaluate_slo(
            slo, [stage([sample(i, i * 0.1) for i in range(20)])]
        )
        assert verdict["ok"]
        assert verdict["availability"]["observed"] == 1.0
        assert verdict["latency"]["observed_p95_ms"] == pytest.approx(
            10.0
        )
        assert verdict["burn_rate"]["max"] == 0.0

    def test_availability_breach(self):
        slo = SLOSpec(availability=0.9, max_burn_rate=1000.0)
        samples = [
            sample(i, i * 0.1, ok=i % 2 == 0, status=503)
            for i in range(20)
        ]
        verdict = evaluate_slo(slo, [stage(samples)])
        assert not verdict["availability"]["ok"]
        assert verdict["availability"]["observed"] == pytest.approx(0.5)
        assert not verdict["ok"]

    def test_burst_fails_burn_but_not_availability(self):
        # 100 requests over two 5s windows; 6 failures packed into the
        # second window.  Overall availability 0.94 >= 0.9 target, but
        # the hot window burns 12%/10% = 1.2x > 1x — burn catches it.
        slo = SLOSpec(
            availability=0.9, window_seconds=5.0, max_burn_rate=1.0
        )
        samples = [sample(i, i * 0.1) for i in range(50)] + [
            sample(50 + i, 5.0 + i * 0.1, ok=i >= 6, status=503)
            for i in range(50)
        ]
        verdict = evaluate_slo(slo, [stage(samples)])
        assert verdict["availability"]["ok"]
        assert verdict["burn_rate"]["max"] == pytest.approx(1.2)
        assert not verdict["burn_rate"]["ok"]
        assert not verdict["ok"]

    def test_expected_rejections_do_not_count_against_availability(self):
        slo = SLOSpec(availability=0.99)
        rejected = [
            sample(
                i,
                i * 0.1,
                ok=False,
                status=400,
                expected_rejection=True,
            )
            for i in range(10)
        ]
        verdict = evaluate_slo(slo, [stage(rejected + [sample(10, 1.0)])])
        assert verdict["availability"]["requests"] == 1
        assert verdict["availability"]["observed"] == 1.0
        assert verdict["ok"]

    def test_latency_breach(self):
        slo = SLOSpec(latency_p95_ms=50.0)
        verdict = evaluate_slo(
            slo,
            [stage([sample(i, i * 0.1, latency=0.2) for i in range(5)])],
        )
        assert not verdict["latency"]["ok"]
        assert not verdict["ok"]

    def test_windows_never_straddle_stages(self):
        # one failure in each of two stages: bucketed separately, each
        # window's rate is 1/10, not a merged 2/20
        slo = SLOSpec(
            availability=0.9, window_seconds=60.0, max_burn_rate=1.0
        )
        mk = lambda: [
            sample(i, i * 0.1, ok=i != 0, status=503) for i in range(10)
        ]
        verdict = evaluate_slo(slo, [stage(mk()), stage(mk())])
        assert verdict["burn_rate"]["windows"] == 2
        assert verdict["burn_rate"]["max"] == pytest.approx(1.0)
        assert verdict["burn_rate"]["ok"]

    def test_empty_series(self):
        verdict = evaluate_slo(SLOSpec(), [])
        assert verdict["ok"]
        assert verdict["availability"]["requests"] == 0
