"""Shared fixtures for the load-harness suite."""

import pytest

from repro.gateway import DecompositionGateway, GatewayConfig
from repro.loadgen.mixes import default_load_config
from repro.service import DecompositionService, SchedulerPolicy

FAST_POLICY = SchedulerPolicy(
    lease_seconds=30.0,
    retry_backoff_seconds=0.01,
    poll_interval_seconds=0.01,
)


@pytest.fixture
def load_config():
    return default_load_config()


@pytest.fixture
def serving_gateway(tmp_path):
    """A live gateway over a 2-worker in-process service."""
    service = DecompositionService(
        tmp_path / "svc", n_workers=2, policy=FAST_POLICY
    )
    pool = service.serve_forever()
    gateway = DecompositionGateway(service, GatewayConfig(port=0))
    gateway.start()
    try:
        yield gateway
    finally:
        gateway.stop()
        pool.stop()
