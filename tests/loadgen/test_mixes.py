"""Mix profiles: determinism, dedup structure, size rotation."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.loadgen.mixes import default_load_config, get_mix, mix_names
from repro.service.spec import queue_artifact_key, spec_artifact_key


class TestRegistry:
    def test_names(self):
        assert mix_names() == sorted(
            [
                "dedup-heavy",
                "cache-cold",
                "mixed-sizes",
                "partition-parents",
            ]
        )

    def test_unknown_mix_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown job mix"):
            get_mix("nope")


class TestDeterminism:
    @pytest.mark.parametrize("name", mix_names())
    def test_same_inputs_same_wire_doc(self, name, load_config):
        mix = get_mix(name)
        for index in (0, 3, 7):
            first = mix.build(index, load_config).to_wire()
            second = mix.build(index, load_config).to_wire()
            assert json.dumps(first, sort_keys=True) == json.dumps(
                second, sort_keys=True
            )


class TestProfiles:
    def test_dedup_heavy_cycles_a_small_pool(self, load_config):
        mix = get_mix("dedup-heavy")
        keys = {
            spec_artifact_key(mix.build(i, load_config))
            for i in range(12)
        }
        assert len(keys) == 4  # the working set, not 12 distinct jobs
        assert not mix.expect_rejections

    def test_cache_cold_never_repeats(self, load_config):
        mix = get_mix("cache-cold")
        keys = {
            spec_artifact_key(mix.build(i, load_config))
            for i in range(10)
        }
        assert len(keys) == 10

    def test_mixed_sizes_rotates_spin_counts(self, load_config):
        mix = get_mix("mixed-sizes")
        spins = [
            mix.build(i, load_config).ising["model"]["n_spins"]
            for i in range(6)
        ]
        assert spins == [16, 24, 40, 16, 24, 40]
        # distinct seeds: distinct artifact keys even at equal size
        assert spec_artifact_key(
            mix.build(0, load_config)
        ) != spec_artifact_key(mix.build(3, load_config))

    def test_partition_parents_are_queue_rejected(self, load_config):
        mix = get_mix("partition-parents")
        assert mix.expect_rejections
        spec = mix.build(0, load_config)
        assert spec.partition["k"] == 2
        from repro.errors import ServiceError

        with pytest.raises(ServiceError, match="partition"):
            queue_artifact_key(spec)

    def test_mix_seeds_do_not_collide_across_profiles(self, load_config):
        # each profile offsets seeds into its own band, so two mixes
        # running in one sweep never accidentally dedup to each other
        cold = get_mix("cache-cold").build(0, load_config)
        dedup = get_mix("dedup-heavy").build(0, load_config)
        assert spec_artifact_key(cold) != spec_artifact_key(dedup)
