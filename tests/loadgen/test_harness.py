"""End-to-end: the harness driving a live in-process gateway."""

import pytest

from repro.gateway import GatewayClient, RetryPolicy
from repro.loadgen import (
    MixSubmitter,
    OpenLoopGenerator,
    SLOSpec,
    collect_completion_latencies,
    evaluate_slo,
    find_knee,
    get_mix,
    summarize_stage,
)

NO_RETRY = RetryPolicy(max_retries=0)


def run_stage(gateway, mix_name, config, *, rps, duration):
    mix = get_mix(mix_name)
    client = GatewayClient(gateway.url, retry=NO_RETRY)
    submitter = MixSubmitter(client, mix, config)
    generator = OpenLoopGenerator(
        submitter,
        mix_name=mix.name,
        expect_rejections=mix.expect_rejections,
        concurrency=4,
    )
    stage = generator.run(rps=rps, duration_seconds=duration)
    return client, stage


class TestSweep:
    def test_dedup_heavy_curve(self, serving_gateway, load_config):
        client, stage = run_stage(
            serving_gateway,
            "dedup-heavy",
            load_config,
            rps=8.0,
            duration=1.0,
        )
        assert len(stage.samples) == 8
        assert all(s.ok for s in stage.samples)
        # the pool has 4 distinct specs, so the second lap dedups
        assert sum(1 for s in stage.samples if s.deduplicated) == 4
        assert len(stage.job_ids()) == 4

        latencies = collect_completion_latencies(
            client, stage.job_ids(), timeout_seconds=60.0
        )
        assert len(latencies) == 4
        assert all(lat >= 0.0 for lat in latencies)

        row = summarize_stage(stage, completion_latencies=latencies)
        assert row["ok"] == 8 and row["errors"] == 0
        assert row["service_latency"]["count"] == 8
        assert row["completion_latency"]["count"] == 4

        knee = find_knee([row])
        assert knee["saturated"] is False
        assert knee["offered_rps"] == row["offered_rps"]

    def test_partition_parents_reject_cleanly(
        self, serving_gateway, load_config
    ):
        _, stage = run_stage(
            serving_gateway,
            "partition-parents",
            load_config,
            rps=5.0,
            duration=1.0,
        )
        assert len(stage.samples) == 5
        assert all(
            s.status == 400 and s.error_code == "invalid_request"
            for s in stage.samples
        )
        row = summarize_stage(stage)
        assert row["rejected"] == 5
        assert row["errors"] == 0 and row["error_rate"] == 0.0
        verdict = evaluate_slo(SLOSpec(), [stage])
        assert verdict["availability"]["requests"] == 0
        assert verdict["ok"]

    def test_slo_verdict_over_live_stage(
        self, serving_gateway, load_config
    ):
        _, stage = run_stage(
            serving_gateway,
            "cache-cold",
            load_config,
            rps=4.0,
            duration=1.0,
        )
        verdict = evaluate_slo(
            SLOSpec(availability=0.9, latency_p95_ms=30_000.0), [stage]
        )
        assert verdict["availability"]["observed"] == 1.0
        assert verdict["ok"]
