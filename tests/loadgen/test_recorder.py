"""Stage summaries and knee detection on synthetic curves."""

import pytest

from repro.loadgen.generator import RequestSample, StageResult
from repro.loadgen.recorder import (
    build_report,
    find_knee,
    latency_summary,
    percentile,
    summarize_stage,
)
from repro.loadgen.report import render_load_report


def sample(index, *, status=201, ok=True, latency=0.02, expected=False):
    return RequestSample(
        mix="t",
        index=index,
        scheduled=index * 0.1,
        sent=index * 0.1 + 0.005,
        latency=latency,
        open_loop_latency=latency + 0.005,
        status=status,
        ok=ok,
        deduplicated=ok and index % 2 == 1,
        job_id=f"job-{index}" if ok else None,
        error_code=None if ok else "x",
        expected_rejection=expected,
    )


class TestPercentile:
    def test_interpolates(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 50.0) == pytest.approx(2.5)
        assert percentile(values, 100.0) == pytest.approx(4.0)
        assert percentile(values, 0.0) == pytest.approx(1.0)

    def test_degenerate_series(self):
        assert percentile([], 95.0) == 0.0
        assert percentile([7.0], 95.0) == 7.0

    def test_latency_summary_units(self):
        block = latency_summary([0.01, 0.02, 0.03])
        assert block["count"] == 3
        assert block["max_ms"] == pytest.approx(30.0)
        assert block["p50_ms"] == pytest.approx(20.0)
        assert latency_summary([]) is None


class TestSummarizeStage:
    def _stage(self, samples):
        return StageResult(
            mix="t",
            offered_rps=10.0,
            duration_seconds=1.0,
            elapsed_seconds=1.0,
            samples=samples,
        )

    def test_counts_partition(self):
        samples = (
            [sample(i) for i in range(6)]
            + [sample(6, status=429, ok=False)]
            + [sample(7, status=503, ok=False)]
            + [sample(8, status=400, ok=False, expected=True)]
            + [sample(9, status=0, ok=False)]
        )
        row = summarize_stage(self._stage(samples))
        assert row["requests"] == 10
        assert row["ok"] == 6
        assert row["deduplicated"] == 3
        assert row["rejected"] == 1
        assert row["shed"] == 2
        assert row["rate_429"] == 1 and row["rate_503"] == 1
        assert row["connection_failures"] == 1
        assert row["shed_rate"] == pytest.approx(0.2)
        # 3 unexpected failures over 9 considered (expected excluded)
        assert row["error_rate"] == pytest.approx(3 / 9, abs=1e-4)
        # connection failures (status 0) carry no service latency
        assert row["service_latency"]["count"] == 9

    def test_expected_rejections_are_not_errors(self):
        samples = [
            sample(i, status=400, ok=False, expected=True)
            for i in range(5)
        ]
        row = summarize_stage(self._stage(samples))
        assert row["errors"] == 0
        assert row["error_rate"] == 0.0
        assert row["rejected"] == 5

    def test_completion_latency_block(self):
        row = summarize_stage(
            self._stage([sample(0)]), completion_latencies=[0.5, 1.5]
        )
        assert row["completion_latency"]["count"] == 2
        none_row = summarize_stage(self._stage([sample(0)]))
        assert none_row["completion_latency"] is None


def _row(rps, *, p95=20.0, achieved=None, shed=0.0):
    return {
        "offered_rps": rps,
        "achieved_rps": rps if achieved is None else achieved,
        "shed_rate": shed,
        "open_loop_latency": {"p95_ms": p95},
    }


class TestFindKnee:
    def test_unsaturated_sweep_reports_top_stage(self):
        knee = find_knee([_row(2), _row(4), _row(8)])
        assert knee["saturated"] is False
        assert knee["offered_rps"] == 8
        assert knee["first_violation_rps"] is None
        assert knee["reason"] == "all stages held"

    def test_latency_knee(self):
        knee = find_knee([_row(2), _row(4, p95=25.0), _row(8, p95=90.0)])
        assert knee["saturated"] is True
        assert knee["offered_rps"] == 4
        assert knee["first_violation_rps"] == 8
        assert "p95" in knee["reason"]

    def test_achieved_rate_knee(self):
        knee = find_knee([_row(2), _row(8, achieved=5.0)])
        assert knee["saturated"] is True
        assert knee["offered_rps"] == 2
        assert "achieved" in knee["reason"]

    def test_shed_knee(self):
        knee = find_knee([_row(2), _row(8, shed=0.4)])
        assert knee["saturated"] is True
        assert "shed rate" in knee["reason"]

    def test_empty_sweep(self):
        knee = find_knee([])
        assert knee == {
            "saturated": False,
            "offered_rps": None,
            "reason": "no stages",
        }


class TestReport:
    def test_build_and_render(self):
        samples = [sample(i) for i in range(4)]
        stage_row = summarize_stage(
            StageResult(
                mix="dedup-heavy",
                offered_rps=4.0,
                duration_seconds=1.0,
                elapsed_seconds=1.0,
                samples=samples,
            )
        )
        report = build_report(
            {
                "dedup-heavy": {
                    "summary": "pool of 4",
                    "stages": [stage_row],
                    "knee": find_knee([stage_row]),
                }
            },
            context={"gateway": "http://x"},
        )
        assert report["context"]["gateway"] == "http://x"
        assert report["slo"] is None and report["soak"] is None
        text = render_load_report(report)
        assert "mix dedup-heavy" in text
        assert "knee:" in text
