"""Soak mode: byte-identical artifacts under chaos + load."""

import pytest

from repro.gateway import GatewayClient
from repro.loadgen import default_soak_plan, get_mix, run_soak
from repro.resilience import FaultPlan, FaultRule


class TestRunSoak:
    def test_byte_identical_under_default_chaos(
        self, serving_gateway, tmp_path, load_config
    ):
        client = GatewayClient(serving_gateway.url)  # retrying client
        summary, stage = run_soak(
            client,
            get_mix("cache-cold"),
            load_config,
            rps=3.0,
            duration_seconds=1.0,
            baseline_dir=tmp_path / "baseline",
            concurrency=4,
            wait_timeout_seconds=120.0,
        )
        assert summary["requests"] == 3
        assert summary["completed"] == 3
        assert summary["failed"] == {}
        assert summary["mismatches"] == []
        assert summary["byte_identical"] is True
        assert summary["fault_plan"]["rules"]
        assert len(stage.samples) == 3

    def test_resubmission_repairs_dropped_arrivals(
        self, serving_gateway, tmp_path, load_config
    ):
        # drop every early submit on the floor: a no-retry soak client
        # exhausts its (zero) retries, and the post-chaos resubmission
        # pass must still drive every spec to an accepted job
        from repro.gateway import RetryPolicy

        client = GatewayClient(
            serving_gateway.url, retry=RetryPolicy(max_retries=0)
        )
        plan = FaultPlan(
            [FaultRule(site="client.connection_drop", at_calls=(1, 2))]
        )
        summary, _ = run_soak(
            client,
            get_mix("dedup-heavy"),
            load_config,
            rps=2.0,
            duration_seconds=1.0,
            baseline_dir=tmp_path / "baseline",
            plan=plan,
            concurrency=1,
            wait_timeout_seconds=120.0,
        )
        assert summary["resubmitted_after_chaos"] == 2
        assert summary["byte_identical"] is True

    def test_rejects_expected_rejection_mixes(
        self, tmp_path, load_config
    ):
        with pytest.raises(ValueError, match="expects rejections"):
            run_soak(
                object(),
                get_mix("partition-parents"),
                load_config,
                rps=1.0,
                duration_seconds=1.0,
                baseline_dir=tmp_path / "baseline",
            )

    def test_default_plan_shape(self):
        plan = default_soak_plan(seed=7)
        assert sorted(plan.rules) == [
            "client.connection_drop",
            "worker.crash",
        ]
