"""Open-loop generator semantics with an injected clock.

All tests here run with ``concurrency=1`` so a single sender thread
interacts with the fake clock deterministically.
"""

from types import SimpleNamespace

import pytest

from repro.errors import GatewayError
from repro.loadgen.generator import (
    MixSubmitter,
    OpenLoopGenerator,
    RequestSample,
    StageResult,
    SubmitOutcome,
)
from repro.loadgen.mixes import get_mix


class FakeClock:
    """Monotonic clock where sleeping *is* the passage of time."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def sleep(self, seconds):
        assert seconds >= 0
        self.now += seconds

    def advance(self, seconds):
        self.now += seconds


def _ok(index):
    return SubmitOutcome(status=201, ok=True, job_id=f"job-{index}")


class TestScheduling:
    def test_arrivals_follow_the_rate_clock(self):
        clock = FakeClock()
        calls = []

        def submit(index):
            calls.append(index)
            return _ok(index)

        gen = OpenLoopGenerator(
            submit, concurrency=1, clock=clock, sleep=clock.sleep
        )
        stage = gen.run(rps=10.0, duration_seconds=1.0)
        assert calls == list(range(10))  # one attempt per arrival
        assert [s.scheduled for s in stage.samples] == pytest.approx(
            [i / 10.0 for i in range(10)]
        )
        # an idle sender sends exactly on schedule
        assert all(s.lateness == 0.0 for s in stage.samples)

    def test_slow_responses_do_not_shift_the_schedule(self):
        clock = FakeClock()

        def submit(index):
            clock.advance(0.25)  # server takes 0.25s per request
            return _ok(index)

        gen = OpenLoopGenerator(
            submit, concurrency=1, clock=clock, sleep=clock.sleep
        )
        stage = gen.run(rps=10.0, duration_seconds=0.5)
        # the schedule is fixed up front — slowness never re-times it
        assert [s.scheduled for s in stage.samples] == pytest.approx(
            [0.0, 0.1, 0.2, 0.3, 0.4]
        )
        # every arrival is accounted for (no coordinated omission) and
        # the backlog shows up as recorded lateness, not dropped rows
        assert len(stage.samples) == 5
        late = stage.samples[-1]
        assert late.lateness == pytest.approx(0.6)  # sent 1.0, due 0.4
        assert late.latency == pytest.approx(0.25)
        assert late.open_loop_latency == pytest.approx(
            late.latency + late.lateness
        )

    def test_rejects_bad_parameters(self):
        gen = OpenLoopGenerator(_ok, concurrency=1)
        with pytest.raises(ValueError, match="rps"):
            gen.run(rps=0, duration_seconds=1.0)
        with pytest.raises(ValueError, match="concurrency"):
            OpenLoopGenerator(_ok, concurrency=0)

    def test_expect_rejections_stamped_on_samples(self):
        clock = FakeClock()
        gen = OpenLoopGenerator(
            lambda i: SubmitOutcome(status=400, ok=False),
            expect_rejections=True,
            concurrency=1,
            clock=clock,
            sleep=clock.sleep,
        )
        stage = gen.run(rps=5.0, duration_seconds=0.4)
        assert all(s.expected_rejection for s in stage.samples)


class TestStageResult:
    def _stage(self, samples):
        return StageResult(
            mix="t",
            offered_rps=4.0,
            duration_seconds=1.0,
            elapsed_seconds=2.0,
            samples=samples,
        )

    def _sample(self, **overrides):
        base = dict(
            mix="t",
            index=0,
            scheduled=0.0,
            sent=0.0,
            latency=0.01,
            open_loop_latency=0.01,
            status=201,
            ok=True,
            deduplicated=False,
            job_id="job-a",
            error_code=None,
            expected_rejection=False,
        )
        base.update(overrides)
        return RequestSample(**base)

    def test_achieved_counts_any_response(self):
        stage = self._stage(
            [
                self._sample(),
                self._sample(status=429, ok=False, job_id=None),
                self._sample(status=0, ok=False, job_id=None),
            ]
        )
        assert stage.achieved_rps == pytest.approx(1.0)  # 2 / 2s
        assert stage.accepted_rps == pytest.approx(0.5)

    def test_job_ids_are_deduplicated_in_order(self):
        stage = self._stage(
            [
                self._sample(job_id="job-b"),
                self._sample(job_id="job-a"),
                self._sample(job_id="job-b", deduplicated=True),
                self._sample(status=503, ok=False, job_id=None),
            ]
        )
        assert stage.job_ids() == ["job-b", "job-a"]


class TestMixSubmitter:
    def test_maps_submit_and_gateway_errors(self, load_config):
        mix = get_mix("dedup-heavy")
        responses = {
            0: (SimpleNamespace(id="job-1"), False),
            1: (SimpleNamespace(id="job-1"), True),
        }

        class Client:
            def submit(self, spec):
                key = len(seen)
                seen.append(spec)
                if key in responses:
                    return responses[key]
                raise GatewayError(
                    "saturated",
                    status=429,
                    retry_after=1.0,
                    code="rate_limited",
                )

        seen = []
        submit = MixSubmitter(Client(), mix, load_config)
        first = submit(0)
        assert first == SubmitOutcome(
            status=201, ok=True, deduplicated=False, job_id="job-1"
        )
        second = submit(1)
        assert second.status == 200 and second.deduplicated
        third = submit(2)
        assert third == SubmitOutcome(
            status=429, ok=False, error_code="rate_limited"
        )

    def test_prepare_prebuilds_specs_once(self, load_config):
        mix = get_mix("cache-cold")
        submit = MixSubmitter(object(), mix, load_config)
        submit.prepare(4)
        built = list(submit._specs)
        submit.prepare(2)  # idempotent — never rebuilds or shrinks
        assert submit._specs == built
        assert submit.spec(1) is built[1]
