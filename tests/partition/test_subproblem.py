"""Clamp-folding correctness: the exact energy identity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DimensionError
from repro.ising.model import DenseIsingModel
from repro.ising.subproblem import assemble_state, extract_subproblem


def random_model(seed: int, n: int):
    rng = np.random.default_rng(seed)
    upper = np.triu(rng.normal(size=(n, n)), k=1)
    return DenseIsingModel(
        rng.normal(size=n), upper + upper.T, rng.normal()
    )


@given(
    seed=st.integers(0, 2**32 - 1),
    n=st.integers(2, 16),
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_subproblem_objective_equals_parent_objective(seed, n, data):
    """objective'(sigma_K) == objective(assembled full state), exactly
    up to float64 rounding — the identity the stitcher builds on."""
    model = random_model(seed, n)
    rng = np.random.default_rng(seed + 1)
    block_size = data.draw(st.integers(1, n - 1))
    block = rng.choice(n, size=block_size, replace=False)
    clamped = rng.choice([-1.0, 1.0], size=n)
    sub = extract_subproblem(model, block, clamped)
    sub_spins = rng.choice([-1.0, 1.0], size=block_size)
    full = assemble_state(clamped, sub.indices, sub_spins)
    assert float(sub.model.objective(sub_spins)) == pytest.approx(
        float(model.objective(full)), abs=1e-9
    )


def test_clamped_values_inside_block_are_ignored():
    model = random_model(3, 8)
    block = [1, 4, 6]
    state_a = np.ones(8)
    state_b = np.ones(8)
    state_b[[1, 4, 6]] = -1.0  # differs only inside the block
    sub_a = extract_subproblem(model, block, state_a)
    sub_b = extract_subproblem(model, block, state_b)
    assert np.array_equal(sub_a.model.biases, sub_b.model.biases)
    assert sub_a.model.offset == sub_b.model.offset


def test_block_validation():
    model = random_model(0, 6)
    state = np.ones(6)
    with pytest.raises(DimensionError):
        extract_subproblem(model, [], state)
    with pytest.raises(DimensionError):
        extract_subproblem(model, [1, 1], state)
    with pytest.raises(DimensionError):
        extract_subproblem(model, [0, 6], state)
    with pytest.raises(DimensionError):
        extract_subproblem(model, [0, 1], np.ones(5))


def test_assemble_state_shape_checked():
    with pytest.raises(DimensionError):
        assemble_state(np.ones(6), np.array([0, 1]), np.ones(3))


def test_assemble_state_writes_only_block_positions():
    base = np.ones(6)
    out = assemble_state(base, np.array([2, 5]), np.array([-1.0, -1.0]))
    assert out.tolist() == [1, 1, -1, 1, 1, -1]
    assert base.tolist() == [1] * 6  # input untouched
