"""Planner properties: determinism, balance, and coupling coverage.

The two hypothesis properties here are the subsystem's foundation:

* the plan is a pure function of ``(model, k, seed)`` — re-planning
  must reproduce it bit for bit;
* *every* nonzero coupling of the original ``J`` lands in exactly one
  place — inside exactly one block (hence exactly one subproblem) or
  in the boundary set — so no interaction is ever double-counted or
  dropped by the decomposition.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DimensionError
from repro.ising.model import DenseIsingModel
from repro.partition.planner import boundary_energy, plan_partition


def random_model(seed: int, n: int, density: float = 0.5):
    rng = np.random.default_rng(seed)
    upper = np.triu(rng.normal(size=(n, n)), k=1)
    upper[rng.random((n, n)) > density] = 0.0
    couplings = upper + upper.T
    return DenseIsingModel(rng.normal(size=n), couplings, rng.normal())


@given(
    seed=st.integers(0, 2**32 - 1),
    n=st.integers(2, 24),
    k=st.integers(1, 5),
    plan_seed=st.integers(0, 1000),
)
@settings(max_examples=40, deadline=None)
def test_planner_deterministic_under_fixed_seed(seed, n, k, plan_seed):
    k = min(k, n)
    model = random_model(seed, n)
    first = plan_partition(model, k, plan_seed)
    second = plan_partition(model, k, plan_seed)
    assert first.blocks == second.blocks
    assert first.boundary == second.boundary
    assert first.cut_weight == second.cut_weight
    assert np.array_equal(first.block_of, second.block_of)


@given(
    seed=st.integers(0, 2**32 - 1),
    n=st.integers(2, 24),
    k=st.integers(1, 5),
    plan_seed=st.integers(0, 1000),
)
@settings(max_examples=40, deadline=None)
def test_every_coupling_in_exactly_one_block_or_boundary(
    seed, n, k, plan_seed
):
    k = min(k, n)
    model = random_model(seed, n)
    plan = plan_partition(model, k, plan_seed)

    # blocks partition the spin set exactly
    all_spins = sorted(i for block in plan.blocks for i in block)
    assert all_spins == list(range(n))
    sizes = [len(block) for block in plan.blocks]
    assert max(sizes) - min(sizes) <= 1

    boundary = set(plan.boundary)
    rows, cols = np.nonzero(np.triu(model.couplings, k=1))
    for i, j in zip(rows, cols):
        i, j = int(i), int(j)
        owners = [
            b for b, block in enumerate(plan.blocks)
            if i in block and j in block
        ]
        internal = len(owners) == 1
        # exactly one of: internal to one subproblem, or boundary
        assert internal != ((i, j) in boundary)
    # and the boundary holds nothing else
    for i, j in boundary:
        assert model.couplings[i, j] != 0.0
        assert plan.block_of[i] != plan.block_of[j]


def test_k_bounds_validated():
    model = random_model(0, 6)
    with pytest.raises(DimensionError):
        plan_partition(model, 0)
    with pytest.raises(DimensionError):
        plan_partition(model, 7)


def test_single_block_plan_has_empty_boundary():
    model = random_model(1, 8)
    plan = plan_partition(model, 1, seed=9)
    assert plan.blocks == (tuple(range(8)),)
    assert plan.boundary == ()
    assert plan.cut_weight == 0.0
    state = np.ones(8)
    assert boundary_energy(model, state, plan.boundary) == 0.0


def test_boundary_energy_matches_direct_sum():
    model = random_model(2, 10)
    plan = plan_partition(model, 3, seed=4)
    rng = np.random.default_rng(0)
    state = rng.choice([-1.0, 1.0], size=10)
    expected = -sum(
        model.couplings[i, j] * state[i] * state[j]
        for i, j in plan.boundary
    )
    assert boundary_energy(model, state, plan.boundary) == pytest.approx(
        expected
    )


def test_refinement_finds_obvious_split():
    # two 4-spin cliques joined by one weak edge: the min cut
    n = 8
    couplings = np.zeros((n, n))
    for block in (range(0, 4), range(4, 8)):
        for i in block:
            for j in block:
                if i < j:
                    couplings[i, j] = couplings[j, i] = 5.0
    couplings[0, 4] = couplings[4, 0] = 0.1
    model = DenseIsingModel(np.zeros(n), couplings, 0.0)
    plan = plan_partition(model, 2, seed=7)
    assert plan.cut_weight == pytest.approx(0.1)
    assert len(plan.boundary) == 1
