"""Coordinator behavior over a real in-process service."""

import numpy as np
import pytest

from repro.core import CoreSolverConfig, FrameworkConfig
from repro.errors import ReproError
from repro.ising.model import DenseIsingModel
from repro.ising.wire import make_problem, solve_result_to_dict
from repro.obs.metrics import get_metrics
from repro.partition import (
    LocalDispatcher,
    PartitionCoordinator,
    run_partitioned_spec,
    verify_result,
)
from repro.partition.instances import separate_mode_instance
from repro.resilience import (
    FaultPlan,
    FaultRule,
    clear_fault_plan,
    install_fault_plan,
)
from repro.service import DecompositionService
from repro.service.spec import JobSpec, partition_block, spec_artifact_key


@pytest.fixture
def fast_config():
    return FrameworkConfig(
        seed=3,
        solver=CoreSolverConfig(max_iterations=200, n_replicas=2),
    )


@pytest.fixture
def dispatcher(tmp_path):
    return LocalDispatcher(
        DecompositionService(tmp_path / "svc", n_workers=2)
    )


@pytest.fixture
def problem():
    return separate_mode_instance(
        workload="cos", n_inputs=6, free_size=2
    )


class TestDegenerateK1:
    def test_k1_artifact_key_identical_to_monolithic(
        self, dispatcher, problem, fast_config
    ):
        stitched = PartitionCoordinator(
            dispatcher, fast_config, k=1
        ).solve(problem)
        plain_key = spec_artifact_key(
            JobSpec(config=fast_config, ising=problem)
        )
        assert stitched.artifact_key == plain_key
        assert stitched.rounds == 0
        # the artifact really is in the store under that key
        assert plain_key in dispatcher.service.artifacts

    def test_k1_partition_block_normalizes_out_of_key(
        self, fast_config, problem
    ):
        with_block = spec_artifact_key(
            JobSpec(
                config=fast_config,
                ising=problem,
                partition=partition_block(1),
            )
        )
        without = spec_artifact_key(
            JobSpec(config=fast_config, ising=problem)
        )
        assert with_block == without


class TestStitchedSolve:
    def test_k2_end_to_end_verifies(
        self, dispatcher, problem, fast_config
    ):
        stitched = PartitionCoordinator(
            dispatcher, fast_config, k=2, seed=5
        ).solve(problem)
        assert stitched.rounds >= 1
        assert len(stitched.boundary_energies) == stitched.rounds
        assert stitched.result.stop_reason in (
            "boundary_converged", "round_budget_exhausted"
        )
        assert stitched.artifact_key is None
        meta = stitched.result.metadata
        assert meta["solver"] == "partition(k=2)+bsb"
        assert meta["partition"]["rounds"] == stitched.rounds
        assert meta["partition"]["boundary_energies"] == (
            stitched.boundary_energies
        )
        verdict = verify_result(
            problem, solve_result_to_dict(stitched.result)
        )
        assert verdict["verified"]

    def test_deterministic_across_coordinators(
        self, dispatcher, problem, fast_config
    ):
        first = PartitionCoordinator(
            dispatcher, fast_config, k=2, seed=5
        ).solve(problem)
        second = PartitionCoordinator(
            dispatcher, fast_config, k=2, seed=5
        ).solve(problem)
        assert np.array_equal(first.result.spins, second.result.spins)
        assert first.boundary_energies == second.boundary_energies

    def test_unchanged_clamp_context_reuses_child_solves(
        self, dispatcher, fast_config
    ):
        # an all-zero model folds to identical children regardless of
        # the clamped neighbor spins (h' = 0, offset' = offset), so
        # round 2's child keys match round 1's: both solves are reused
        # without dispatch and the fixed point stops the iteration
        model = DenseIsingModel(np.zeros(8), np.zeros((8, 8)), 0.0)
        stitched = PartitionCoordinator(
            dispatcher, fast_config, k=2, seed=1
        ).solve(make_problem(model))
        assert stitched.result.stop_reason == "boundary_converged"
        assert stitched.rounds == 2
        assert stitched.reused_solves == 2  # both blocks, round 2
        assert set(np.unique(stitched.result.spins)) <= {-1.0, 1.0}

    def test_run_partitioned_spec_reads_the_block(
        self, dispatcher, problem, fast_config
    ):
        spec = JobSpec(
            config=fast_config,
            ising=problem,
            partition=partition_block(2, max_rounds=3, seed=5),
        )
        stitched = run_partitioned_spec(dispatcher, spec)
        assert stitched.plan.k == 2
        assert stitched.rounds <= 3


class TestRoundFailSeam:
    def test_injected_round_failures_are_retried_transparently(
        self, dispatcher, problem, fast_config
    ):
        baseline = PartitionCoordinator(
            dispatcher, fast_config, k=2, seed=5
        ).solve(problem)
        before = get_metrics().counter(
            "partition_round_retries_total"
        ).value
        install_fault_plan(
            FaultPlan(
                [FaultRule(site="partition.round_fail", at_calls=(1, 2))]
            )
        )
        try:
            stitched = PartitionCoordinator(
                dispatcher, fast_config, k=2, seed=5
            ).solve(problem)
        finally:
            clear_fault_plan()
        assert np.array_equal(
            stitched.result.spins, baseline.result.spins
        )
        assert stitched.result.metadata["partition"]["round_retries"] == 2
        after = get_metrics().counter(
            "partition_round_retries_total"
        ).value
        assert after - before == 2

    def test_exhausted_round_retries_raise(
        self, dispatcher, problem, fast_config
    ):
        install_fault_plan(
            FaultPlan(
                [FaultRule(site="partition.round_fail", probability=1.0)]
            )
        )
        try:
            with pytest.raises(ReproError, match="round 1 failed"):
                PartitionCoordinator(
                    dispatcher, fast_config, k=2, seed=5,
                    round_retries=1,
                ).solve(problem)
        finally:
            clear_fault_plan()
