"""Ising problems as ordinary service jobs: spec, queue, executor."""

import pytest

from repro.core import CoreSolverConfig, FrameworkConfig
from repro.errors import ServiceError
from repro.ising.wire import RESULT_FORMAT, ising_artifact_key
from repro.partition.instances import separate_mode_instance
from repro.service import DecompositionService
from repro.service.spec import (
    JobSpec,
    partition_block,
    queue_artifact_key,
    spec_artifact_key,
    validate_partition_block,
)


@pytest.fixture
def fast_config():
    return FrameworkConfig(
        seed=3,
        solver=CoreSolverConfig(max_iterations=200, n_replicas=2),
    )


@pytest.fixture
def problem():
    return separate_mode_instance(
        workload="cos", n_inputs=6, free_size=2
    )


class TestSpecValidation:
    def test_partition_requires_ising(self, fast_config):
        with pytest.raises(ServiceError, match="requires an ising"):
            JobSpec(
                config=fast_config,
                workload="cos",
                partition=partition_block(2),
            )

    def test_unknown_partition_fields_rejected(self):
        block = dict(partition_block(2))
        block["shard_by"] = "row"
        with pytest.raises(ServiceError, match="shard_by"):
            validate_partition_block(block)

    def test_partition_schema_version_checked(self):
        block = dict(partition_block(2))
        block["schema_version"] = 99
        with pytest.raises(ServiceError, match="schema_version"):
            validate_partition_block(block)

    def test_ising_exclusive_with_other_sources(
        self, fast_config, problem
    ):
        with pytest.raises(ServiceError, match="exactly one problem"):
            JobSpec(config=fast_config, workload="cos", ising=problem)

    def test_describe_names_the_solver_and_width(
        self, fast_config, problem
    ):
        spec = JobSpec(config=fast_config, ising=problem)
        assert spec.describe() == "ising[bsb]/N=24"
        with_block = JobSpec(
            config=fast_config, ising=problem,
            partition=partition_block(4),
        )
        assert with_block.describe() == "ising[bsb]/N=24/k=4"

    def test_wire_roundtrip_preserves_ising_and_partition(
        self, fast_config, problem
    ):
        spec = JobSpec(
            config=fast_config, ising=problem,
            partition=partition_block(1),
        )
        again = JobSpec.from_wire(spec.to_wire())
        assert again == spec


class TestQueueBoundary:
    def test_partition_parent_rejected_by_queue_key(
        self, fast_config, problem
    ):
        spec = JobSpec(
            config=fast_config, ising=problem,
            partition=partition_block(2),
        )
        with pytest.raises(ServiceError, match="coordinated client-side"):
            queue_artifact_key(spec)

    def test_service_refuses_partition_parents(
        self, tmp_path, fast_config, problem
    ):
        service = DecompositionService(tmp_path / "svc")
        spec = JobSpec(
            config=fast_config, ising=problem,
            partition=partition_block(2),
        )
        with pytest.raises(ServiceError, match="not runnable"):
            service.submit(spec)
        with pytest.raises(ServiceError, match="not runnable"):
            service.submit_idempotent(spec)

    def test_k1_block_keys_like_no_block(self, fast_config, problem):
        assert queue_artifact_key(
            JobSpec(
                config=fast_config, ising=problem,
                partition=partition_block(1),
            )
        ) == spec_artifact_key(JobSpec(config=fast_config, ising=problem))

    def test_key_depends_on_solver_and_model(self, fast_config, problem):
        base = ising_artifact_key(problem, fast_config, None)
        other_solver = dict(problem, solver="sa")
        assert ising_artifact_key(
            other_solver, fast_config, None
        ) != base


class TestIsingExecution:
    def test_executes_and_caches_by_content(
        self, tmp_path, fast_config, problem
    ):
        service = DecompositionService(tmp_path / "svc", n_workers=2)
        job = service.submit(JobSpec(config=fast_config, ising=problem))
        service.run_until_drained()
        record = service.job(job.id)
        assert record.state == "done"
        envelope = service.fetch_envelope(job.id)
        assert envelope["design"]["format"] == RESULT_FORMAT
        assert envelope["design"]["stop_reason"]
        # an identical resubmission resolves from the artifact cache
        twin = service.submit(JobSpec(config=fast_config, ising=problem))
        service.run_until_drained()
        assert service.job(twin.id).cache_hit

    def test_worker_spin_limit_is_enforced(
        self, tmp_path, fast_config, problem, monkeypatch
    ):
        monkeypatch.setenv("REPRO_ISING_MAX_SPINS", "8")
        service = DecompositionService(tmp_path / "svc")
        job = service.submit(
            JobSpec(config=fast_config, ising=problem, max_attempts=1)
        )
        service.run_until_drained()
        record = service.job(job.id)
        assert record.state == "failed"
        assert "REPRO_ISING_MAX_SPINS" in record.error
        assert "--partition" in record.error
