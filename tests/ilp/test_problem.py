"""Unit tests for :mod:`repro.ilp.problem`."""

import numpy as np
import pytest

from repro.errors import DimensionError
from repro.ilp.problem import IlpBuilder, IntegerLinearProgram


class TestIntegerLinearProgram:
    def test_defaults(self):
        p = IntegerLinearProgram(objective=np.array([1.0, 2.0]))
        assert p.n_variables == 2
        assert np.array_equal(p.lower, [0.0, 0.0])
        assert np.isinf(p.upper).all()
        assert not p.integrality.any()

    def test_matrix_rhs_pairing_enforced(self):
        with pytest.raises(DimensionError):
            IntegerLinearProgram(
                objective=np.array([1.0]), a_ub=np.array([[1.0]])
            )

    def test_shape_checks(self):
        with pytest.raises(DimensionError):
            IntegerLinearProgram(
                objective=np.array([1.0, 1.0]),
                a_ub=np.array([[1.0]]),
                b_ub=np.array([1.0]),
            )
        with pytest.raises(DimensionError):
            IntegerLinearProgram(
                objective=np.array([1.0]),
                lower=np.array([2.0]),
                upper=np.array([1.0]),
            )

    def test_value(self):
        p = IntegerLinearProgram(objective=np.array([2.0, -1.0]))
        assert p.value(np.array([3.0, 4.0])) == 2.0

    def test_is_feasible(self):
        p = IntegerLinearProgram(
            objective=np.array([1.0, 1.0]),
            a_ub=np.array([[1.0, 1.0]]),
            b_ub=np.array([1.5]),
            upper=np.array([1.0, 1.0]),
            integrality=np.array([True, True]),
        )
        assert p.is_feasible(np.array([1.0, 0.0]))
        assert not p.is_feasible(np.array([1.0, 1.0]))  # constraint
        assert not p.is_feasible(np.array([0.5, 0.0]))  # integrality
        assert not p.is_feasible(np.array([-1.0, 0.0]))  # bounds


class TestIlpBuilder:
    def test_binary_variable(self):
        b = IlpBuilder()
        b.add_binary("x")
        p = b.build()
        assert p.upper[0] == 1.0
        assert p.integrality[0]

    def test_duplicate_name_rejected(self):
        b = IlpBuilder()
        b.add_binary("x")
        with pytest.raises(DimensionError):
            b.add_binary("x")

    def test_unknown_name_rejected(self):
        b = IlpBuilder()
        b.add_binary("x")
        with pytest.raises(DimensionError):
            b.set_objective_term("y", 1.0)
        with pytest.raises(DimensionError):
            b.add_less_equal({"y": 1.0}, 0.0)

    def test_objective_terms_accumulate(self):
        b = IlpBuilder()
        b.add_binary("x")
        b.set_objective_term("x", 1.0)
        b.set_objective_term("x", 2.0)
        assert b.build().objective[0] == 3.0

    def test_greater_equal_flips(self):
        b = IlpBuilder()
        b.add_variable("x", upper=10.0)
        b.add_greater_equal({"x": 2.0}, 4.0)
        p = b.build()
        assert np.allclose(p.a_ub, [[-2.0]])
        assert np.allclose(p.b_ub, [-4.0])

    def test_equality_rows(self):
        b = IlpBuilder()
        b.add_binary("x")
        b.add_binary("y")
        b.add_equal({"x": 1.0, "y": 1.0}, 1.0)
        p = b.build()
        assert np.allclose(p.a_eq, [[1.0, 1.0]])
        assert np.allclose(p.b_eq, [1.0])

    def test_empty_build_rejected(self):
        with pytest.raises(DimensionError):
            IlpBuilder().build()

    def test_variable_names_preserved(self):
        b = IlpBuilder()
        b.add_binary("a")
        b.add_variable("b")
        p = b.build()
        assert p.variable_names == ("a", "b")
        assert b.index_of("b") == 1
