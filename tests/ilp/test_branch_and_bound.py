"""Unit tests for :mod:`repro.ilp.branch_and_bound`."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InfeasibleError, SolverError
from repro.ilp.branch_and_bound import BranchAndBoundSolver
from repro.ilp.problem import IlpBuilder


def knapsack(values, weights, capacity):
    builder = IlpBuilder()
    n = len(values)
    for i in range(n):
        builder.add_binary(f"x{i}")
        builder.set_objective_term(f"x{i}", -float(values[i]))
    builder.add_less_equal(
        {f"x{i}": float(weights[i]) for i in range(n)}, float(capacity)
    )
    return builder.build()


def brute_knapsack(values, weights, capacity):
    best = 0
    n = len(values)
    for bits in itertools.product((0, 1), repeat=n):
        arr = np.array(bits)
        if arr @ weights <= capacity:
            best = max(best, int(arr @ values))
    return best


class TestCorrectness:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_knapsack_matches_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        n = 9
        values = rng.integers(1, 25, n)
        weights = rng.integers(1, 12, n)
        capacity = int(weights.sum() // 3) + 1
        result = BranchAndBoundSolver(time_limit=60).solve(
            knapsack(values, weights, capacity)
        )
        assert result.status == "optimal"
        assert np.isclose(-result.objective,
                          brute_knapsack(values, weights, capacity))

    def test_solution_is_feasible_and_integral(self):
        problem = knapsack([5, 4, 3], [4, 3, 2], 6)
        result = BranchAndBoundSolver().solve(problem)
        assert problem.is_feasible(result.x)
        assert np.allclose(result.x, np.round(result.x))

    def test_equality_constraints(self):
        builder = IlpBuilder()
        for i in range(4):
            builder.add_binary(f"x{i}")
            builder.set_objective_term(f"x{i}", float(i + 1))
        builder.add_equal({f"x{i}": 1.0 for i in range(4)}, 2.0)
        result = BranchAndBoundSolver().solve(builder.build())
        # choose the two cheapest: x0 and x1 -> 1 + 2 = 3
        assert result.status == "optimal"
        assert np.isclose(result.objective, 3.0)

    def test_continuous_variables_allowed(self):
        builder = IlpBuilder()
        builder.add_variable("y", lower=0.0, upper=10.0)
        builder.add_binary("x")
        builder.set_objective_term("y", 1.0)
        builder.set_objective_term("x", 1.0)
        builder.add_greater_equal({"y": 1.0, "x": 5.0}, 2.5)
        result = BranchAndBoundSolver().solve(builder.build())
        # either y = 2.5 (cost 2.5) or x = 1 (cost 1) -> optimal x = 1
        assert result.status == "optimal"
        assert np.isclose(result.objective, 1.0)


class TestInfeasibility:
    def test_infeasible_detected(self):
        builder = IlpBuilder()
        builder.add_binary("x")
        builder.add_greater_equal({"x": 1.0}, 2.0)
        result = BranchAndBoundSolver().solve(builder.build())
        assert result.status == "infeasible"
        assert result.x is None

    def test_solve_or_raise(self):
        builder = IlpBuilder()
        builder.add_binary("x")
        builder.add_greater_equal({"x": 1.0}, 2.0)
        with pytest.raises(InfeasibleError):
            BranchAndBoundSolver().solve_or_raise(builder.build())


class TestAnytimeBehavior:
    def test_node_limit_returns_incumbent(self, rng):
        n = 14
        values = rng.integers(1, 30, n)
        weights = rng.integers(1, 10, n)
        problem = knapsack(values, weights, int(weights.sum() // 2))
        result = BranchAndBoundSolver(node_limit=3).solve(problem)
        assert result.status in ("node_limit", "optimal")
        if result.x is not None:
            assert problem.is_feasible(result.x)

    def test_gap_reported(self):
        problem = knapsack([3, 2, 1], [2, 2, 2], 4)
        result = BranchAndBoundSolver().solve(problem)
        assert result.status == "optimal"
        assert result.gap <= 1e-6

    def test_validation(self):
        with pytest.raises(SolverError):
            BranchAndBoundSolver(time_limit=0)
        with pytest.raises(SolverError):
            BranchAndBoundSolver(node_limit=0)
