"""Job-store durability: WAL pragmas, corruption, migration, seams."""

import json
import sqlite3

import pytest

from repro.errors import JobStoreCorruptError
from repro.resilience import FaultPlan, FaultRule, fault_injection
from repro.service import (
    DecompositionService,
    JobSpec,
    Scheduler,
    SchedulerPolicy,
)
from repro.service.jobstore import JobStore


class TestPragmas:
    def test_store_runs_in_wal_mode(self, tmp_path):
        path = tmp_path / "jobs.sqlite3"
        JobStore(path)
        # WAL is a persistent database property — verify it from an
        # independent vanilla connection
        with sqlite3.connect(path) as conn:
            mode = conn.execute("PRAGMA journal_mode").fetchone()[0]
        assert mode.lower() == "wal"

    def test_busy_timeout_is_set(self, tmp_path):
        store = JobStore(tmp_path / "jobs.sqlite3")
        conn = store._connect()
        try:
            timeout_ms = conn.execute(
                "PRAGMA busy_timeout"
            ).fetchone()[0]
        finally:
            conn.close()
        assert timeout_ms == int(JobStore.BUSY_TIMEOUT_SECONDS * 1000)


class TestCorruption:
    def test_garbage_file_raises_typed_error(self, tmp_path):
        path = tmp_path / "jobs.sqlite3"
        path.write_bytes(b"this was never a database")
        with pytest.raises(JobStoreCorruptError, match="not a readable"):
            JobStore(path)

    def test_valid_header_garbage_pages_raises_typed_error(
        self, tmp_path
    ):
        path = tmp_path / "jobs.sqlite3"
        path.write_bytes(b"SQLite format 3\x00" + b"\xde\xad" * 4096)
        with pytest.raises(JobStoreCorruptError):
            JobStore(path)

    def test_healthy_reopen_is_clean(self, tmp_path, tiny_config):
        path = tmp_path / "jobs.sqlite3"
        store = JobStore(path)
        spec = JobSpec(workload="cos", n_inputs=6, config=tiny_config)
        job = store.submit(spec, artifact_key="a" * 64, now=0.0)
        reopened = JobStore(path)
        assert reopened.get(job.id).state == "queued"


OLD_SCHEMA = """
CREATE TABLE jobs (
    id              TEXT PRIMARY KEY,
    artifact_key    TEXT NOT NULL,
    spec            TEXT NOT NULL,
    state           TEXT NOT NULL CHECK (state IN
                        ('queued', 'running', 'done', 'failed')),
    attempts        INTEGER NOT NULL DEFAULT 0,
    max_attempts    INTEGER NOT NULL,
    not_before      REAL NOT NULL DEFAULT 0,
    lease_expires   REAL,
    worker          TEXT,
    cache_hit       INTEGER NOT NULL DEFAULT 0,
    error           TEXT,
    created_at      REAL NOT NULL,
    started_at      REAL,
    finished_at     REAL,
    runtime_seconds REAL,
    med             REAL
);
CREATE INDEX idx_jobs_state ON jobs (state, not_before);
CREATE INDEX idx_jobs_key ON jobs (artifact_key);
"""


class TestMigration:
    def _old_store(self, path, tiny_config):
        spec = JobSpec(workload="cos", n_inputs=6, config=tiny_config)
        with sqlite3.connect(path) as conn:
            conn.executescript(OLD_SCHEMA)
            for job_id, state in (
                ("job-old-done", "done"),
                ("job-old-queued", "queued"),
            ):
                conn.execute(
                    "INSERT INTO jobs (id, artifact_key, spec, state, "
                    "max_attempts, created_at) VALUES (?, ?, ?, ?, 3, 0)",
                    (
                        job_id,
                        "b" * 64,
                        json.dumps(spec.to_wire(), sort_keys=True),
                    state,
                    ),
                )
            conn.commit()

    def test_pre_quarantine_database_is_migrated(
        self, tmp_path, tiny_config
    ):
        path = tmp_path / "jobs.sqlite3"
        self._old_store(path, tiny_config)
        store = JobStore(path)
        assert store.get("job-old-done").state == "done"
        queued = store.get("job-old-queued")
        assert queued.state == "queued"
        assert queued.failed_workers == ()

        # the migrated table admits the new terminal state
        scheduler = Scheduler(
            store,
            SchedulerPolicy(
                retry_backoff_seconds=0.01, quarantine_after=1
            ),
        )
        claimed = scheduler.claim("w0", now=1.0)
        assert claimed.id == "job-old-queued"
        assert scheduler.record_failure(
            claimed, error="boom", now=1.0
        ) == "quarantined"
        assert store.get("job-old-queued").state == "quarantined"

    def test_migration_is_idempotent(self, tmp_path, tiny_config):
        path = tmp_path / "jobs.sqlite3"
        self._old_store(path, tiny_config)
        JobStore(path)
        store = JobStore(path)  # second open must not re-migrate
        assert store.counts()["done"] == 1


class TestInjectedStoreFaults:
    def test_operational_error_seam_raises(self, tmp_path, chaos_seed):
        store = JobStore(tmp_path / "jobs.sqlite3")
        plan = FaultPlan(
            [FaultRule(site="jobstore.operational_error", at_calls=(1,))],
            seed=chaos_seed,
        )
        with fault_injection(plan):
            with pytest.raises(sqlite3.OperationalError, match="locked"):
                store.pending()
            store.pending()  # the fault fired exactly once

    def test_disk_full_seam_rolls_back(
        self, tmp_path, tiny_config, chaos_seed
    ):
        store = JobStore(tmp_path / "jobs.sqlite3")
        spec = JobSpec(workload="cos", n_inputs=6, config=tiny_config)
        plan = FaultPlan(
            [FaultRule(site="jobstore.disk_full", at_calls=(1,))],
            seed=chaos_seed,
        )
        with fault_injection(plan):
            with pytest.raises(sqlite3.OperationalError, match="full"):
                store.submit(spec, artifact_key="c" * 64)
        # the failed commit left no trace and the store still works
        assert store.counts()["queued"] == 0
        job = store.submit(spec, artifact_key="c" * 64)
        assert store.get(job.id).state == "queued"

    def test_worker_pool_survives_store_pressure(
        self, tmp_path, tiny_config, chaos_seed
    ):
        """An injected store error during claim/recover must back off
        the worker, not kill it — the drain still completes."""
        service = DecompositionService(
            tmp_path / "svc",
            policy=SchedulerPolicy(
                lease_seconds=30.0,
                retry_backoff_seconds=0.01,
                poll_interval_seconds=0.01,
            ),
        )
        spec = JobSpec(workload="cos", n_inputs=6, config=tiny_config)
        job = service.submit(spec)
        plan = FaultPlan(
            [
                FaultRule(
                    site="jobstore.operational_error",
                    at_calls=(1, 2),
                )
            ],
            seed=chaos_seed,
        )
        with fault_injection(plan):
            service.run_until_drained(timeout=120)
        assert service.job(job.id).state == "done"
        assert len(plan.events()) == 2
