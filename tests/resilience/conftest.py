"""Chaos-suite fixtures: fixed fault seed + combined recovery log.

The suite is deterministic end to end: every fault plan is seeded from
``REPRO_CHAOS_SEED`` (default 1234 — CI pins it explicitly), and every
fault fired anywhere in the session is appended to one JSONL recovery
log at ``REPRO_CHAOS_LOG`` (when set), which the ``chaos-smoke`` CI job
uploads as a build artifact.
"""

from __future__ import annotations

import os

import pytest

from repro.core import CoreSolverConfig, FrameworkConfig
from repro.resilience import clear_fault_plan
from repro.resilience.faults import drain_event_sink, write_event_log


@pytest.fixture
def chaos_seed() -> int:
    """The session's fault-plan seed (pin via ``REPRO_CHAOS_SEED``)."""
    return int(os.environ.get("REPRO_CHAOS_SEED", "1234"))


@pytest.fixture
def tiny_config() -> FrameworkConfig:
    """The smallest config that still runs the real seeded search."""
    return FrameworkConfig(
        mode="joint",
        free_size=2,
        n_partitions=2,
        n_rounds=1,
        seed=11,
        solver=CoreSolverConfig(max_iterations=150, n_replicas=2),
    )


@pytest.fixture(autouse=True)
def _no_leaked_fault_plan():
    """A test that forgets to clear its plan must not poison the next."""
    yield
    clear_fault_plan()


@pytest.fixture(scope="session", autouse=True)
def _recovery_log():
    """Persist every fault fired this session to the CI artifact log."""
    yield
    log_path = os.environ.get("REPRO_CHAOS_LOG")
    events = drain_event_sink()
    if log_path and events:
        write_event_log(log_path, events)
