"""Crash-safe job execution: the ISSUE's headline acceptance test.

A worker crashes *after* writing a checkpoint; the retry must resume
from that checkpoint and the final design must be bit-for-bit identical
to an uninterrupted run of the same spec in a clean directory.
"""

import pytest

from repro.obs.metrics import get_metrics
from repro.resilience import FaultPlan, FaultRule, fault_injection
from repro.service import (
    DecompositionService,
    JobSpec,
    SchedulerPolicy,
)
from repro.service.artifacts import ArtifactStore


FAST_POLICY = SchedulerPolicy(
    lease_seconds=30.0,
    retry_backoff_seconds=0.01,
    poll_interval_seconds=0.01,
)


class TestCrashAfterCheckpoint:
    def test_resumed_design_is_bit_identical(
        self, tmp_path, tiny_config, chaos_seed
    ):
        spec = JobSpec(workload="cos", n_inputs=6, config=tiny_config)

        baseline = DecompositionService(
            tmp_path / "clean", policy=FAST_POLICY
        )
        clean_job = baseline.submit(spec)
        baseline.run_until_drained(timeout=120)
        clean_design = baseline.fetch_design_dict(clean_job.id)

        # seam call 1 is the attempt start (no match); calls 2.. are
        # post-checkpoint probes, so at_calls=(3,) crashes the worker
        # right after its second component checkpoint lands
        plan = FaultPlan(
            [
                FaultRule(
                    site="worker.crash",
                    at_calls=(3,),
                    match="post-checkpoint",
                )
            ],
            seed=chaos_seed,
        )
        resumes = get_metrics().counter(
            "service_checkpoint_resumes_total",
            help="jobs resumed from a persisted checkpoint",
        )
        resumes_before = resumes.value

        service = DecompositionService(
            tmp_path / "chaos", policy=FAST_POLICY
        )
        job = service.submit(spec)
        with fault_injection(plan):
            service.run_until_drained(timeout=120)

        record = service.job(job.id)
        assert record.state == "done"
        assert record.attempts == 2
        assert record.retries == 1
        assert len(plan.events()) == 1
        assert resumes.value == resumes_before + 1

        assert service.fetch_design_dict(job.id) == clean_design
        # the checkpoint is cleaned up once the job lands
        assert (
            service.artifacts.get_checkpoint(record.artifact_key) is None
        )

    def test_crash_before_any_checkpoint_restarts_clean(
        self, tmp_path, tiny_config, chaos_seed
    ):
        """Crashing at attempt start (no checkpoint yet) degrades to a
        plain retry from scratch — still converging to the same design.
        """
        spec = JobSpec(workload="cos", n_inputs=6, config=tiny_config)
        plan = FaultPlan(
            [FaultRule(site="worker.crash", at_calls=(1,))],
            seed=chaos_seed,
        )
        service = DecompositionService(
            tmp_path / "svc", policy=FAST_POLICY
        )
        job = service.submit(spec)
        with fault_injection(plan):
            service.run_until_drained(timeout=120)
        record = service.job(job.id)
        assert record.state == "done"
        assert record.attempts == 2

        baseline = DecompositionService(
            tmp_path / "clean", policy=FAST_POLICY
        )
        clean_job = baseline.submit(spec)
        baseline.run_until_drained(timeout=120)
        assert service.fetch_design_dict(job.id) == (
            baseline.fetch_design_dict(clean_job.id)
        )


class TestCheckpointHygiene:
    def test_torn_checkpoint_is_discarded(self, tmp_path):
        """A half-written (torn) checkpoint file must read as absent,
        not crash the loader."""
        artifacts = ArtifactStore(tmp_path / "artifacts")
        key = "ab" + "0" * 62
        artifacts.put_checkpoint(key, {"format": "x", "version": 1})
        path = artifacts.checkpoint_path(key)
        path.write_text('{"format": "x", "vers')  # torn mid-write
        assert artifacts.get_checkpoint(key) is None
        assert not path.exists()  # the torn file was reaped

    def test_stale_checkpoint_degrades_to_restart(
        self, tmp_path, tiny_config
    ):
        """Garbage *valid JSON* under the job's key (wrong problem,
        wrong format) must be deleted and the job re-run from scratch.
        """
        service = DecompositionService(
            tmp_path / "svc", policy=FAST_POLICY
        )
        spec = JobSpec(workload="cos", n_inputs=6, config=tiny_config)
        job = service.submit(spec)
        service.artifacts.put_checkpoint(
            job.artifact_key, {"format": "bogus", "version": 99}
        )
        service.run_until_drained(timeout=120)
        record = service.job(job.id)
        assert record.state == "done"
        assert record.attempts == 1
        assert (
            service.artifacts.get_checkpoint(record.artifact_key) is None
        )
