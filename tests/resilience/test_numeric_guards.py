"""Numeric guards: injected NaN/overflow → dtype escalation or raise."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.ising.stop_criteria import FixedIterations
from repro.ising.solvers.bsb import BallisticSBSolver
from repro.ising.structured import BipartiteDecompositionModel
from repro.obs.metrics import get_metrics
from repro.obs.probe import RecordingSolverProbe
from repro.resilience import FaultPlan, FaultRule, fault_injection


def _model(rng, r=4, t=3):
    return BipartiteDecompositionModel(rng.random((r, t)) * 2.0 - 1.0)


def _solver(backend, **kwargs):
    return BallisticSBSolver(
        stop=FixedIterations(300),
        n_replicas=2,
        backend=backend,
        sample_every_default=25,
        **kwargs,
    )


class TestEscalation:
    def test_nan_on_float32_escalates_and_converges(self, rng, chaos_seed):
        model = _model(rng)
        plan = FaultPlan(
            [FaultRule(site="kernel.nan", at_calls=(2,))], seed=chaos_seed
        )
        probe = RecordingSolverProbe()
        with fault_injection(plan):
            result = _solver("numpy32", probe=probe).solve(
                model, np.random.default_rng(5)
            )
        assert result.metadata["numeric_escalations"] == 1
        assert result.metadata["backend"] == "numpy64"
        assert np.isfinite(result.energy)
        assert len(plan.events()) == 1
        assert probe.numeric_escalations == [
            (probe.numeric_escalations[0][0], "numpy32", "numpy64")
        ]

    def test_escalated_result_matches_reference_backend(
        self, rng, chaos_seed
    ):
        """The escalated run restarts from the same initial state on
        numpy64, so its answer equals a clean numpy64 run bit-for-bit.
        """
        model = _model(rng)
        clean = _solver("numpy64").solve(model, np.random.default_rng(5))
        plan = FaultPlan(
            [FaultRule(site="kernel.nan", at_calls=(1,))], seed=chaos_seed
        )
        with fault_injection(plan):
            escalated = _solver("numpy32").solve(
                model, np.random.default_rng(5)
            )
        assert escalated.energy == clean.energy
        assert np.array_equal(escalated.spins, clean.spins)
        assert escalated.metadata["numeric_escalations"] == 1

    def test_overflow_on_float32_escalates(self, rng, chaos_seed):
        model = _model(rng)
        plan = FaultPlan(
            [FaultRule(site="kernel.overflow", at_calls=(1,))],
            seed=chaos_seed,
        )
        with fault_injection(plan):
            result = _solver("numpy32").solve(
                model, np.random.default_rng(5)
            )
        assert result.metadata["numeric_escalations"] == 1
        assert result.metadata["backend"] == "numpy64"

    def test_escalation_beats_env_backend_override(
        self, rng, chaos_seed, monkeypatch
    ):
        """REPRO_SB_BACKEND=numpy32 must not veto the forced float64
        retry — otherwise the guard would loop forever.
        """
        monkeypatch.setenv("REPRO_SB_BACKEND", "numpy32")
        model = _model(rng)
        plan = FaultPlan(
            [FaultRule(site="kernel.nan", at_calls=(1,))], seed=chaos_seed
        )
        with fault_injection(plan):
            result = _solver(None).solve(model, np.random.default_rng(5))
        assert result.metadata["backend"] == "numpy64"
        assert result.metadata["numeric_escalations"] == 1

    def test_metric_counts_escalations(self, rng, chaos_seed):
        model = _model(rng)
        counter = get_metrics().counter(
            "solver_numeric_escalations_total",
            help="solver restarts forced by unhealthy kernel state",
        )
        before = counter.value
        plan = FaultPlan(
            [FaultRule(site="kernel.nan", at_calls=(1,))], seed=chaos_seed
        )
        with fault_injection(plan):
            _solver("numpy32").solve(model, np.random.default_rng(5))
        assert counter.value == before + 1


class TestFloat64Verdicts:
    def test_nonfinite_on_float64_raises(self, rng, chaos_seed):
        model = _model(rng)
        plan = FaultPlan(
            [FaultRule(site="kernel.nan", at_calls=(1,))], seed=chaos_seed
        )
        with fault_injection(plan):
            with pytest.raises(SolverError, match="non-finite"):
                _solver("numpy64").solve(model, np.random.default_rng(5))

    def test_overflow_on_float64_is_benign(self, rng, chaos_seed):
        """A huge-but-finite float64 momentum recovers through the
        walls; the guard must not raise or escalate.
        """
        model = _model(rng)
        plan = FaultPlan(
            [FaultRule(site="kernel.overflow", at_calls=(1,))],
            seed=chaos_seed,
        )
        with fault_injection(plan):
            result = _solver("numpy64").solve(
                model, np.random.default_rng(5)
            )
        assert result.metadata["numeric_escalations"] == 0
        assert np.isfinite(result.energy)


class TestGuardDisabled:
    def test_disabled_guard_does_not_escalate(self, rng, chaos_seed):
        model = _model(rng)
        plan = FaultPlan(
            [FaultRule(site="kernel.nan", at_calls=(1,))], seed=chaos_seed
        )
        with fault_injection(plan):
            result = _solver("numpy32", numeric_guard=False).solve(
                model, np.random.default_rng(5)
            )
        assert result.metadata["numeric_escalations"] == 0
        assert result.metadata["backend"] == "numpy32"

    def test_no_plan_results_unchanged(self, rng):
        """Guard on vs. off is bit-identical on healthy runs."""
        model = _model(rng)
        on = _solver("numpy64").solve(model, np.random.default_rng(5))
        off = _solver("numpy64", numeric_guard=False).solve(
            model, np.random.default_rng(5)
        )
        assert on.energy == off.energy
        assert np.array_equal(on.spins, off.spins)
        assert on.energy_trace == off.energy_trace
