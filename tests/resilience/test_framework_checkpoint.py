"""Framework-level checkpoint/resume: bit-identical final designs."""

import json

import numpy as np
import pytest

from repro.boolean.truth_table import TruthTable
from repro.core import CoreSolverConfig, FrameworkConfig, IsingDecomposer
from repro.core.checkpoint import DecomposeCheckpoint, table_sha256
from repro.errors import ConfigurationError
from repro.serialization import result_to_dict


@pytest.fixture
def config():
    return FrameworkConfig(
        mode="joint",
        free_size=2,
        n_partitions=3,
        n_rounds=2,
        seed=7,
        solver=CoreSolverConfig(max_iterations=150, n_replicas=2),
    )


@pytest.fixture
def table(rng):
    probabilities = rng.random(32)
    return TruthTable.random(
        5, 4, rng, probabilities / probabilities.sum()
    )


class TestFrameworkResume:
    def test_resume_reproduces_uninterrupted_run(self, config, table):
        baseline = IsingDecomposer(config).decompose(table)

        checkpoints = []
        IsingDecomposer(config).decompose(
            table, checkpoint_hook=checkpoints.append
        )
        # one checkpoint per component per round
        assert len(checkpoints) == table.n_outputs * config.n_rounds

        for pick in (0, 2, len(checkpoints) - 2):
            restored = DecomposeCheckpoint.from_dict(
                json.loads(json.dumps(checkpoints[pick].to_dict()))
            )
            resumed = IsingDecomposer(config).decompose(
                table, resume=restored
            )
            assert resumed.med == baseline.med
            assert resumed.med_trace == baseline.med_trace
            assert result_to_dict(resumed) == result_to_dict(baseline)

    def test_checkpoint_hook_does_not_perturb(self, config, table):
        plain = IsingDecomposer(config).decompose(table)
        chatty = IsingDecomposer(config).decompose(
            table, checkpoint_hook=lambda ckpt: None
        )
        assert result_to_dict(chatty) == result_to_dict(plain)

    def test_checkpoint_bound_to_problem(self, config, table, rng):
        checkpoints = []
        IsingDecomposer(config).decompose(
            table, checkpoint_hook=checkpoints.append
        )
        other = TruthTable.random(5, 4, np.random.default_rng(99))
        with pytest.raises(ConfigurationError, match="does not belong"):
            IsingDecomposer(config).decompose(
                other, resume=checkpoints[0]
            )

    def test_table_hash_sensitivity(self, table, rng):
        assert table_sha256(table) == table_sha256(table)
        other = TruthTable.random(5, 4, np.random.default_rng(99))
        assert table_sha256(table) != table_sha256(other)
