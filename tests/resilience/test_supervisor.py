"""Supervised process-isolated execution: restart, quarantine, hang-kill.

These tests kill real worker *processes* (``os._exit`` via the
``worker.die`` seam, SIGTERM on missed heartbeats) and assert the
supervisor's recovery story: jobs land, poison jobs quarantine, and the
recovered design stays bit-identical to an uninterrupted run.
"""

import pytest

from repro.errors import ServiceError
from repro.resilience import FaultPlan, FaultRule, fault_injection
from repro.service import (
    DecompositionService,
    JobSpec,
    SchedulerPolicy,
    WorkerSupervisor,
)


FAST_POLICY = SchedulerPolicy(
    lease_seconds=30.0,
    retry_backoff_seconds=0.01,
    poll_interval_seconds=0.01,
    quarantine_after=3,
)


def _clean_design(tmp_path, spec):
    baseline = DecompositionService(
        tmp_path / "clean", policy=FAST_POLICY
    )
    job = baseline.submit(spec)
    baseline.run_until_drained(timeout=120)
    return baseline.fetch_design_dict(job.id)


class TestCrashRestart:
    def test_dead_child_is_replaced_and_job_lands(
        self, tmp_path, tiny_config, chaos_seed
    ):
        """Generation 0 hard-exits mid-claim; generation 1 finishes the
        job and the design matches the never-killed run bit-for-bit."""
        spec = JobSpec(workload="cos", n_inputs=6, config=tiny_config)
        service = DecompositionService(
            tmp_path / "svc", policy=FAST_POLICY
        )
        job = service.submit(spec)

        plan = FaultPlan(
            [FaultRule(site="worker.die", at_calls=(1,), match="-g0-")],
            seed=chaos_seed,
        )
        with fault_injection(plan):
            supervisor = WorkerSupervisor(
                tmp_path / "svc",
                n_workers=1,
                policy=FAST_POLICY,
                max_restarts=3,
                poll_interval_seconds=0.05,
            )
        supervisor.run_until_drained(timeout=120)

        record = service.job(job.id)
        assert record.state == "done"
        assert supervisor.restarts_used >= 1
        assert any("-g0-" in name for name in record.failed_workers)
        assert service.fetch_design_dict(job.id) == (
            _clean_design(tmp_path, spec)
        )

    def test_restart_budget_spent_raises(
        self, tmp_path, tiny_config, chaos_seed
    ):
        """Every generation dies, quarantine is off, and the budget is
        too small to outlast the poison — the drain must raise, not
        report an unserved queue as drained."""
        spec = JobSpec(
            workload="cos", n_inputs=6, config=tiny_config,
            max_attempts=10,
        )
        service = DecompositionService(
            tmp_path / "svc",
            policy=SchedulerPolicy(
                retry_backoff_seconds=0.01, quarantine_after=None
            ),
        )
        service.submit(spec)
        plan = FaultPlan(
            [FaultRule(site="worker.die", at_calls=(1,))],
            seed=chaos_seed,
        )
        with fault_injection(plan):
            supervisor = WorkerSupervisor(
                tmp_path / "svc",
                n_workers=1,
                policy=SchedulerPolicy(
                    retry_backoff_seconds=0.01, quarantine_after=None
                ),
                max_restarts=1,
                poll_interval_seconds=0.05,
            )
        with pytest.raises(ServiceError, match="restart budget"):
            supervisor.run_until_drained(timeout=120)


class TestPoisonQuarantine:
    def test_job_killing_every_generation_is_quarantined(
        self, tmp_path, tiny_config, chaos_seed
    ):
        """The ISSUE acceptance: a job that fails on three *distinct*
        workers (here: three supervisor generations) lands in the
        terminal ``quarantined`` state while the service stays up."""
        spec = JobSpec(
            workload="cos", n_inputs=6, config=tiny_config,
            max_attempts=10,
        )
        service = DecompositionService(
            tmp_path / "svc", policy=FAST_POLICY
        )
        job = service.submit(spec)
        plan = FaultPlan(
            [FaultRule(site="worker.die", at_calls=(1,))],
            seed=chaos_seed,
        )
        with fault_injection(plan):
            supervisor = WorkerSupervisor(
                tmp_path / "svc",
                n_workers=1,
                policy=FAST_POLICY,
                max_restarts=5,
                poll_interval_seconds=0.05,
            )
        supervisor.run_until_drained(timeout=120)

        record = service.job(job.id)
        assert record.state == "quarantined"
        assert len(set(record.failed_workers)) == 3
        generations = {
            name.split("-g")[1].split("-")[0]
            for name in record.failed_workers
        }
        assert len(generations) == 3  # three distinct processes died
        assert "3 distinct worker(s)" in record.error


class TestHangDetection:
    def test_hung_child_is_killed_and_replaced(
        self, tmp_path, tiny_config, chaos_seed
    ):
        """Generation 0 sleeps far past its lease without heartbeating;
        the supervisor kills it and generation 1 completes the job."""
        policy = SchedulerPolicy(
            lease_seconds=0.5,
            retry_backoff_seconds=0.01,
            poll_interval_seconds=0.01,
            quarantine_after=3,
        )
        spec = JobSpec(workload="cos", n_inputs=6, config=tiny_config)
        service = DecompositionService(tmp_path / "svc", policy=policy)
        job = service.submit(spec)

        plan = FaultPlan(
            [
                FaultRule(
                    site="worker.hang",
                    at_calls=(1,),
                    match="-g0-",
                    param=30.0,
                )
            ],
            seed=chaos_seed,
        )
        with fault_injection(plan):
            supervisor = WorkerSupervisor(
                tmp_path / "svc",
                n_workers=1,
                policy=policy,
                max_restarts=3,
                poll_interval_seconds=0.05,
            )
        supervisor.run_until_drained(timeout=120)

        record = service.job(job.id)
        assert record.state == "done"
        assert supervisor.restarts_used >= 1
        assert any("-g0-" in name for name in record.failed_workers)
