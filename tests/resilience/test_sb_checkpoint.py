"""Solver-level checkpoint/resume: bit-identical continuation."""

import json

import numpy as np
import pytest

from repro.errors import SolverError
from repro.ising.solvers.bsb import BallisticSBSolver, SBCheckpoint
from repro.ising.stop_criteria import EnergyVarianceStop, FixedIterations
from repro.ising.structured import BipartiteDecompositionModel
from repro.resilience.rng import capture_rng, restore_rng


def _model(seed=3, r=4, t=3):
    rng = np.random.default_rng(seed)
    return BipartiteDecompositionModel(rng.random((r, t)) * 2.0 - 1.0)


def _solver(backend):
    return BallisticSBSolver(
        stop=EnergyVarianceStop(
            sample_every=10, window=5, max_iterations=400
        ),
        n_replicas=2,
        backend=backend,
    )


class TestRngCapture:
    def test_round_trip_replays_draws(self):
        rng = np.random.default_rng(42)
        rng.random(17)  # advance
        spec = capture_rng(rng)
        expected = rng.random(8)
        restored = restore_rng(spec)
        assert np.array_equal(restored.random(8), expected)

    def test_spawn_counter_survives(self):
        """``Generator.spawn`` after a restore must derive the same
        children as the uninterrupted generator — the framework spawns
        per-chunk child generators mid-run.
        """
        rng = np.random.default_rng(42)
        rng.spawn(2)  # advance the seed-sequence spawn counter
        spec = capture_rng(rng)
        expected = [child.random(4) for child in rng.spawn(2)]
        restored = restore_rng(spec)
        actual = [child.random(4) for child in restored.spawn(2)]
        for got, want in zip(actual, expected):
            assert np.array_equal(got, want)

    def test_json_round_trip(self):
        rng = np.random.default_rng(7)
        rng.random(3)
        spec = json.loads(json.dumps(capture_rng(rng)))
        assert np.array_equal(
            restore_rng(spec).random(5), rng.random(5)
        )


class TestResume:
    @pytest.mark.parametrize("backend", ["numpy64", "numpy32"])
    def test_resume_is_bit_identical(self, backend):
        model = _model()
        baseline = _solver(backend).solve(
            model, np.random.default_rng(9)
        )

        checkpoints = []
        interrupted = _solver(backend).solve(
            model,
            np.random.default_rng(9),
            checkpoint_every=1,
            on_checkpoint=checkpoints.append,
        )
        assert len(checkpoints) >= 3
        # round-trip through JSON like the artifact store does
        middle = SBCheckpoint.from_dict(
            json.loads(json.dumps(checkpoints[1].to_dict()))
        )
        resumed = _solver(backend).solve(model, resume=middle)

        for result in (interrupted, resumed):
            assert result.energy == baseline.energy
            assert np.array_equal(result.spins, baseline.spins)
            assert result.n_iterations == baseline.n_iterations
            assert result.energy_trace == baseline.energy_trace
            assert result.stop_reason == baseline.stop_reason
        assert resumed.metadata["resumed"] is True
        assert interrupted.metadata["resumed"] is False

    def test_checkpointing_does_not_perturb_the_run(self):
        model = _model()
        plain = _solver("numpy64").solve(model, np.random.default_rng(9))
        chatty = _solver("numpy64").solve(
            model,
            np.random.default_rng(9),
            checkpoint_every=1,
            on_checkpoint=lambda ckpt: None,
        )
        assert chatty.energy == plain.energy
        assert chatty.energy_trace == plain.energy_trace

    def test_bad_checkpoint_every_rejected(self):
        with pytest.raises(SolverError, match="checkpoint_every"):
            BallisticSBSolver(stop=FixedIterations(50)).solve(
                _model(), np.random.default_rng(1), checkpoint_every=0
            )

    def test_shape_mismatch_rejected(self):
        checkpoints = []
        _solver("numpy64").solve(
            _model(),
            np.random.default_rng(9),
            checkpoint_every=1,
            on_checkpoint=checkpoints.append,
        )
        with pytest.raises(SolverError, match="shape"):
            _solver("numpy64").solve(
                _model(r=5, t=4), resume=checkpoints[0]
            )
