"""Poison-job quarantine: distinct-worker failure routing.

A job that breaks ``quarantine_after`` *distinct* workers is parked in
the terminal ``quarantined`` state even with retry budget left, and the
state is visible through the store counts, the CLI job table, and the
gateway.
"""

import pytest

from repro.errors import ServiceError
from repro.gateway import DecompositionGateway, GatewayClient, GatewayConfig
from repro.gateway.client import _TERMINAL
from repro.service import (
    DecompositionService,
    JobSpec,
    Scheduler,
    SchedulerPolicy,
)
from repro.service.jobstore import JobStore
from repro.service.telemetry import format_job_table


POLICY = SchedulerPolicy(
    lease_seconds=30.0,
    retry_backoff_seconds=0.01,
    quarantine_after=3,
)


def _submit(store, tiny_config, key="k" * 64):
    spec = JobSpec(
        workload="cos", n_inputs=6, config=tiny_config, max_attempts=10
    )
    return store.submit(spec, artifact_key=key, now=0.0)


def _fail_on(scheduler, worker, now):
    job = scheduler.claim(worker, now=now)
    assert job is not None, f"{worker} found nothing to claim at {now}"
    return scheduler.record_failure(job, error="boom", now=now)


class TestQuarantineRouting:
    def test_three_distinct_workers_quarantine(self, tmp_path,
                                               tiny_config):
        store = JobStore(tmp_path / "jobs.sqlite3")
        scheduler = Scheduler(store, POLICY)
        job = _submit(store, tiny_config)

        assert _fail_on(scheduler, "w0", now=1.0) == "queued"
        assert _fail_on(scheduler, "w1", now=2.0) == "queued"
        assert _fail_on(scheduler, "w2", now=3.0) == "quarantined"

        record = store.get(job.id)
        assert record.state == "quarantined"
        assert record.attempts == 3  # budget of 10 did NOT save it
        assert set(record.failed_workers) == {"w0", "w1", "w2"}
        assert "3 distinct worker(s)" in record.error
        # terminal: nothing left to claim, nothing pending
        assert scheduler.claim("w3", now=4.0) is None
        assert store.pending() == 0
        assert store.counts()["quarantined"] == 1

    def test_same_worker_repeats_do_not_quarantine(self, tmp_path,
                                                   tiny_config):
        """One flaky *worker* is not a poison *job*: repeats by the
        same name never cross the distinct-worker threshold."""
        store = JobStore(tmp_path / "jobs.sqlite3")
        scheduler = Scheduler(store, POLICY)
        job = _submit(store, tiny_config)
        for attempt in range(5):
            assert _fail_on(scheduler, "w0", now=float(attempt + 1)) == (
                "queued"
            )
        record = store.get(job.id)
        assert record.state == "queued"
        assert record.failed_workers == ("w0",)

    def test_quarantine_disabled_with_none(self, tmp_path, tiny_config):
        store = JobStore(tmp_path / "jobs.sqlite3")
        scheduler = Scheduler(
            store,
            SchedulerPolicy(
                retry_backoff_seconds=0.01, quarantine_after=None
            ),
        )
        job = _submit(store, tiny_config)
        # step the clock well past the exponential backoff each time
        for attempt in range(9):
            assert _fail_on(
                scheduler, f"w{attempt}", now=float(attempt + 1) * 100.0
            ) == "queued"
        assert _fail_on(scheduler, "w9", now=1000.0) == "failed"
        assert store.get(job.id).state == "failed"


class TestQuarantineVisibility:
    def test_cli_job_table_renders_quarantined(self, tmp_path,
                                               tiny_config):
        store = JobStore(tmp_path / "jobs.sqlite3")
        scheduler = Scheduler(store, POLICY)
        job = _submit(store, tiny_config)
        for index in range(3):
            _fail_on(scheduler, f"w{index}", now=float(index + 1))
        table = format_job_table([store.get(job.id)])
        assert "quarantined" in table
        assert job.id in table

    def test_gateway_lists_and_waits_on_quarantined(
        self, tmp_path, tiny_config
    ):
        assert "quarantined" in _TERMINAL
        service = DecompositionService(tmp_path / "svc", policy=POLICY)
        spec = JobSpec(
            workload="cos", n_inputs=6, config=tiny_config,
            max_attempts=10,
        )
        job = service.submit(spec)
        scheduler = service.scheduler
        for index in range(3):
            claimed = scheduler.claim(f"w{index}")
            scheduler.record_failure(claimed, error="boom", now=0.0)

        with DecompositionGateway(service, GatewayConfig(port=0)) as gw:
            client = GatewayClient(gw.url)
            listed = client.jobs(state="quarantined")
            assert [record.id for record in listed] == [job.id]
            # wait() treats quarantined as terminal — no timeout spin
            record = client.wait(job.id, timeout_seconds=5)
            assert record.state == "quarantined"
            with pytest.raises(Exception):
                client.fetch_design_dict(job.id)
