"""Unit tests of the fault-injection harness itself."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.resilience import (
    FAULT_SITES,
    FaultPlan,
    FaultRule,
    active_fault_plan,
    clear_fault_plan,
    fault_injection,
    install_fault_plan,
)
from repro.resilience.faults import drain_event_sink, write_event_log


class TestFaultRule:
    def test_unknown_site_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault site"):
            FaultRule(site="kernel.meltdown")

    def test_probability_range_validated(self):
        with pytest.raises(ConfigurationError, match="probability"):
            FaultRule(site="worker.crash", probability=1.5)

    def test_ordinals_one_based(self):
        with pytest.raises(ConfigurationError, match="1-based"):
            FaultRule(site="worker.crash", at_calls=(0,))

    def test_max_fires_validated(self):
        with pytest.raises(ConfigurationError, match="max_fires"):
            FaultRule(site="worker.crash", max_fires=0)

    def test_round_trip(self):
        rule = FaultRule(
            site="worker.hang", at_calls=(2, 5), probability=0.25,
            max_fires=3, match="g0", param=1.5,
        )
        assert FaultRule.from_dict(rule.to_dict()) == rule


class TestFaultPlan:
    def test_at_calls_fire_exactly_there(self):
        plan = FaultPlan([FaultRule(site="worker.crash", at_calls=(2, 4))])
        fired = [plan.should_fire("worker.crash") for _ in range(5)]
        assert fired == [False, True, False, True, False]

    def test_probability_is_deterministic_per_seed(self, chaos_seed):
        def pattern(seed):
            plan = FaultPlan(
                [FaultRule(site="kernel.nan", probability=0.3)], seed=seed
            )
            return [plan.should_fire("kernel.nan") for _ in range(64)]

        assert pattern(chaos_seed) == pattern(chaos_seed)
        assert any(pattern(chaos_seed))
        assert pattern(chaos_seed) != pattern(chaos_seed + 1)

    def test_sites_have_independent_streams(self, chaos_seed):
        one = FaultPlan(
            [FaultRule(site="kernel.nan", probability=0.5)],
            seed=chaos_seed,
        )
        both = FaultPlan(
            [
                FaultRule(site="kernel.nan", probability=0.5),
                FaultRule(site="worker.crash", probability=0.5),
            ],
            seed=chaos_seed,
        )
        # adding a rule for another site must not shift this site's draws
        assert [one.should_fire("kernel.nan") for _ in range(32)] == [
            both.should_fire("kernel.nan") for _ in range(32)
        ]

    def test_max_fires_caps_injections(self):
        plan = FaultPlan(
            [FaultRule(site="worker.crash", probability=1.0, max_fires=2)]
        )
        fired = [plan.should_fire("worker.crash") for _ in range(5)]
        assert fired == [True, True, False, False, False]

    def test_match_filters_but_advances_ordinals(self):
        plan = FaultPlan(
            [FaultRule(site="worker.crash", at_calls=(2,), match="g1")]
        )
        assert not plan.should_fire("worker.crash", "job-1:g1")  # call 1
        assert not plan.should_fire("worker.crash", "job-1:g0")  # call 2
        assert not plan.should_fire("worker.crash", "job-1:g1")  # call 3

    def test_unknown_site_is_free(self):
        plan = FaultPlan([FaultRule(site="kernel.nan", at_calls=(1,))])
        assert not plan.should_fire("worker.crash")

    def test_site_param(self):
        plan = FaultPlan([FaultRule(site="worker.hang", param=2.5)])
        assert plan.site_param("worker.hang") == 2.5
        assert plan.site_param("worker.die", 1.0) == 1.0

    def test_spec_round_trip_resets_counters(self):
        plan = FaultPlan(
            [FaultRule(site="worker.crash", at_calls=(1,))], seed=7
        )
        assert plan.should_fire("worker.crash")
        clone = FaultPlan.from_spec(plan.to_spec())
        assert clone.seed == 7
        assert clone.should_fire("worker.crash")  # schedule restarts

    def test_every_site_name_is_valid(self):
        for site in FAULT_SITES:
            FaultRule(site=site)


class TestInstallation:
    def test_context_manager_restores_previous(self):
        outer = install_fault_plan(FaultPlan([], seed=1))
        inner = FaultPlan([], seed=2)
        with fault_injection(inner):
            assert active_fault_plan() is inner
        assert active_fault_plan() is outer
        clear_fault_plan()
        assert active_fault_plan() is None


class TestEventLog:
    def test_events_recorded_and_sunk(self, tmp_path):
        drain_event_sink()  # isolate from earlier tests
        plan = FaultPlan([FaultRule(site="kernel.nan", at_calls=(1,))])
        plan.should_fire("kernel.nan", "bsb:iter10")
        events = plan.events()
        assert len(events) == 1
        assert events[0]["site"] == "kernel.nan"
        assert events[0]["detail"] == "bsb:iter10"

        log = write_event_log(tmp_path / "recovery.jsonl")
        lines = [
            json.loads(line) for line in log.read_text().splitlines()
        ]
        assert [entry["site"] for entry in lines] == ["kernel.nan"]
        assert drain_event_sink() == []  # the write drained the sink

    def test_log_rotates_at_the_size_cap(self, tmp_path):
        path = tmp_path / "recovery.jsonl"
        batch = [{"site": "kernel.nan", "detail": f"iter{i}"}
                 for i in range(10)]
        write_event_log(path, events=batch, max_bytes=200)
        first_size = path.stat().st_size
        assert first_size >= 200  # one append may overshoot the cap
        write_event_log(path, events=batch, max_bytes=200)
        rotated = tmp_path / "recovery.jsonl.1"
        assert rotated.exists()
        assert rotated.stat().st_size == first_size
        # the live file restarted from empty — bounded at ~2x cap total
        assert path.stat().st_size == first_size
        # a third write replaces the old rotation instead of chaining
        write_event_log(path, events=batch, max_bytes=200)
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "recovery.jsonl", "recovery.jsonl.1"
        ]

    def test_cap_from_environment(self, tmp_path, monkeypatch):
        path = tmp_path / "recovery.jsonl"
        batch = [{"site": "kernel.nan", "detail": "x" * 50}]
        monkeypatch.setenv("REPRO_CHAOS_LOG_MAX_BYTES", "10")
        write_event_log(path, events=batch)
        write_event_log(path, events=batch)
        assert (tmp_path / "recovery.jsonl.1").exists()
        # 0 disables rotation entirely
        monkeypatch.setenv("REPRO_CHAOS_LOG_MAX_BYTES", "0")
        before = path.stat().st_size
        write_event_log(path, events=batch)
        assert path.stat().st_size > before
