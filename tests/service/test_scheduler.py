"""Tests for scheduling policy: backoff shape, retry routing, leases."""

import pytest

from repro.errors import ConfigurationError
from repro.service import JobSpec, JobStore, Scheduler, SchedulerPolicy


KEY = "c" * 64


@pytest.fixture
def scheduler(tmp_path):
    return Scheduler(
        JobStore(tmp_path / "jobs.sqlite3"),
        SchedulerPolicy(
            lease_seconds=10.0,
            retry_backoff_seconds=0.5,
            backoff_multiplier=2.0,
        ),
    )


class TestPolicy:
    def test_backoff_is_exponential(self):
        policy = SchedulerPolicy(retry_backoff_seconds=0.5,
                                 backoff_multiplier=2.0)
        assert policy.backoff_for(1) == 0.5
        assert policy.backoff_for(2) == 1.0
        assert policy.backoff_for(3) == 2.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"lease_seconds": 0},
            {"retry_backoff_seconds": -1},
            {"backoff_multiplier": 0.5},
            {"poll_interval_seconds": 0},
        ],
    )
    def test_invalid_policy_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            SchedulerPolicy(**kwargs)


class TestRetryRouting:
    def _submit(self, scheduler, fast_config, max_attempts=3):
        spec = JobSpec(workload="cos", n_inputs=6, config=fast_config,
                       max_attempts=max_attempts)
        return scheduler.store.submit(spec, KEY, now=100.0)

    def test_failure_with_budget_left_requeues(self, scheduler,
                                               fast_config):
        job = self._submit(scheduler, fast_config)
        claimed = scheduler.claim("w", now=101.0)
        state = scheduler.record_failure(claimed, "boom", now=101.5)
        assert state == "queued"
        record = scheduler.store.get(job.id)
        assert record.state == "queued"
        # gated by backoff_for(1) = 0.5s past the failure time
        assert record.not_before == pytest.approx(102.0)

    def test_backoff_grows_per_attempt(self, scheduler, fast_config):
        self._submit(scheduler, fast_config)
        claimed = scheduler.claim("w", now=101.0)
        scheduler.record_failure(claimed, "boom", now=101.0)
        claimed = scheduler.claim("w", now=102.0)
        assert claimed.attempts == 2
        scheduler.record_failure(claimed, "boom", now=102.0)
        record = scheduler.store.get(claimed.id)
        assert record.not_before == pytest.approx(103.0)  # 2 ** 1 * 0.5

    def test_exhausted_budget_fails(self, scheduler, fast_config):
        job = self._submit(scheduler, fast_config, max_attempts=1)
        claimed = scheduler.claim("w", now=101.0)
        state = scheduler.record_failure(claimed, "boom", now=101.5)
        assert state == "failed"
        assert scheduler.store.get(job.id).state == "failed"
        assert scheduler.claim("w", now=200.0) is None

    def test_heartbeat_and_recovery_flow(self, scheduler, fast_config):
        job = self._submit(scheduler, fast_config)
        claimed = scheduler.claim("w", now=101.0)
        scheduler.heartbeat(claimed, now=109.0)  # lease now ends at 119
        assert scheduler.recover_orphans(now=115.0) == []
        assert scheduler.recover_orphans(now=120.0) == [job.id]
