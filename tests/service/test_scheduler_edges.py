"""Scheduler retry/lease edge cases.

The subtle boundaries: a lease that expires at *exactly* ``now``, a
heartbeat racing orphan recovery, a stale worker completing a job it no
longer owns, and the exponential backoff contract.
"""

import pytest

from repro.core import CoreSolverConfig, FrameworkConfig
from repro.errors import ServiceError
from repro.service import (
    JobSpec,
    JobStore,
    Scheduler,
    SchedulerPolicy,
)


POLICY = SchedulerPolicy(
    lease_seconds=10.0,
    retry_backoff_seconds=0.5,
    backoff_multiplier=2.0,
)


@pytest.fixture
def config():
    return FrameworkConfig(
        mode="joint",
        free_size=2,
        n_partitions=2,
        n_rounds=1,
        seed=11,
        solver=CoreSolverConfig(max_iterations=150, n_replicas=2),
    )


@pytest.fixture
def scheduler(tmp_path):
    return Scheduler(JobStore(tmp_path / "jobs.sqlite3"), POLICY)


def _submit(scheduler, config, **kwargs):
    spec = JobSpec(workload="cos", n_inputs=6, config=config, **kwargs)
    return scheduler.store.submit(spec, artifact_key="e" * 64, now=0.0)


class TestLeaseBoundary:
    def test_lease_expiring_exactly_now_is_not_recovered(
        self, scheduler, config
    ):
        """``lease_expires < now`` is strict: at the exact expiry
        instant the worker still owns the job — recovery must not race
        a worker that is one heartbeat away."""
        job = _submit(scheduler, config)
        claimed = scheduler.claim("w0", now=100.0)
        expiry = claimed.lease_expires
        assert expiry == 100.0 + POLICY.lease_seconds
        assert scheduler.recover_orphans(now=expiry) == []
        assert scheduler.store.get(job.id).state == "running"
        # one tick past the boundary the job is an orphan
        assert scheduler.recover_orphans(now=expiry + 1e-6) == [job.id]
        assert scheduler.store.get(job.id).state == "queued"

    def test_heartbeat_extends_past_recovery_sweep(
        self, scheduler, config
    ):
        job = _submit(scheduler, config)
        claimed = scheduler.claim("w0", now=100.0)
        scheduler.heartbeat(claimed, now=109.9)  # lease → 119.9
        assert scheduler.recover_orphans(now=110.1) == []
        assert scheduler.store.get(job.id).state == "running"


class TestHeartbeatRaces:
    def test_heartbeat_after_requeue_is_a_noop(self, scheduler, config):
        """A zombie worker heartbeating a job that orphan recovery has
        already requeued must not resurrect the lease or flip state."""
        job = _submit(scheduler, config)
        claimed = scheduler.claim("w0", now=100.0)
        assert scheduler.recover_orphans(now=200.0) == [job.id]
        scheduler.heartbeat(claimed, now=200.1)  # zombie heartbeat
        record = scheduler.store.get(job.id)
        assert record.state == "queued"
        assert record.lease_expires is None

    def test_heartbeat_after_reclaim_does_not_leak_leases(
        self, scheduler, config
    ):
        """The nastier interleaving: the job was reclaimed by a *new*
        worker before the zombie heartbeats.  The heartbeat keys on job
        id and state alone, so it renews the new claim — harmless for
        safety (the new worker is live) but worth pinning down."""
        job = _submit(scheduler, config)
        stale = scheduler.claim("w0", now=100.0)
        scheduler.recover_orphans(now=200.0)
        fresh = scheduler.claim("w1", now=300.0)
        assert fresh.id == job.id
        scheduler.heartbeat(stale, now=300.5)
        record = scheduler.store.get(job.id)
        assert record.state == "running"
        assert record.worker == "w1"

    def test_complete_by_stale_worker_is_refused(self, scheduler,
                                                 config):
        """A worker whose job was requeued under it cannot mark it
        done — the transition is gated on the ``running`` state."""
        job = _submit(scheduler, config)
        claimed = scheduler.claim("w0", now=100.0)
        assert scheduler.recover_orphans(now=200.0) == [job.id]
        with pytest.raises(ServiceError, match="transition refused"):
            scheduler.complete(claimed)
        assert scheduler.store.get(job.id).state == "queued"


class TestBackoff:
    def test_backoff_is_monotonically_increasing(self):
        delays = [POLICY.backoff_for(n) for n in range(1, 8)]
        assert delays == sorted(delays)
        assert all(b > a for a, b in zip(delays, delays[1:]))
        assert delays[0] == POLICY.retry_backoff_seconds
        assert delays[1] == pytest.approx(
            POLICY.retry_backoff_seconds * POLICY.backoff_multiplier
        )

    def test_record_failure_gates_reclaim_behind_backoff(
        self, scheduler, config
    ):
        job = _submit(scheduler, config, max_attempts=5)
        claimed = scheduler.claim("w0", now=100.0)
        assert scheduler.record_failure(
            claimed, error="boom", now=100.0
        ) == "queued"
        gate = 100.0 + POLICY.backoff_for(1)
        assert scheduler.store.get(job.id).not_before == pytest.approx(
            gate
        )
        # unclaimable until the gate opens — boundary is inclusive
        assert scheduler.claim("w1", now=gate - 1e-3) is None
        reclaimed = scheduler.claim("w1", now=gate + 1e-3)
        assert reclaimed is not None
        assert reclaimed.attempts == 2

    def test_backoff_grows_across_attempts(self, scheduler, config):
        job = _submit(scheduler, config, max_attempts=5)
        now = 100.0
        gates = []
        for attempt in range(1, 4):
            claimed = scheduler.claim("w0", now=now)
            assert claimed is not None
            scheduler.record_failure(claimed, error="boom", now=now)
            gate = scheduler.store.get(job.id).not_before
            gates.append(gate - now)
            now = gate + 1.0
        assert gates == sorted(gates)
        assert gates[2] == pytest.approx(
            POLICY.retry_backoff_seconds
            * POLICY.backoff_multiplier ** 2
        )
