"""Tests for the durable SQLite job store (lifecycle + recovery)."""

import pytest

from repro.errors import JobNotFound, ServiceError
from repro.service import JobSpec, JobStore


KEY_A = "a" * 64
KEY_B = "b" * 64


@pytest.fixture
def store(tmp_path):
    return JobStore(tmp_path / "jobs.sqlite3")


@pytest.fixture
def spec(fast_config):
    return JobSpec(workload="cos", n_inputs=6, config=fast_config,
                   max_attempts=3)


class TestLifecycle:
    def test_submit_creates_queued_job(self, store, spec):
        job = store.submit(spec, KEY_A, now=100.0)
        assert job.state == "queued"
        assert job.attempts == 0
        assert job.artifact_key == KEY_A
        assert job.spec == spec

    def test_claim_marks_running_and_counts_attempt(self, store, spec):
        job = store.submit(spec, KEY_A, now=100.0)
        claimed = store.claim("w0", lease_seconds=30.0, now=101.0)
        assert claimed.id == job.id
        assert claimed.state == "running"
        assert claimed.attempts == 1
        assert claimed.worker == "w0"
        assert claimed.lease_expires == pytest.approx(131.0)

    def test_claim_is_fifo(self, store, spec):
        first = store.submit(spec, KEY_A, now=100.0)
        second = store.submit(spec, KEY_B, now=101.0)
        assert store.claim("w", 30.0, now=102.0).id == first.id
        assert store.claim("w", 30.0, now=102.0).id == second.id

    def test_claim_empty_queue(self, store):
        assert store.claim("w", 30.0, now=1.0) is None

    def test_complete(self, store, spec):
        job = store.submit(spec, KEY_A, now=100.0)
        store.claim("w", 30.0, now=101.0)
        store.complete(job.id, med=1.5, runtime_seconds=0.2, now=102.0)
        done = store.get(job.id)
        assert done.state == "done"
        assert done.med == 1.5
        assert done.finished_at == 102.0
        assert done.error is None

    def test_single_flight_on_duplicate_keys(self, store, spec):
        first = store.submit(spec, KEY_A, now=100.0)
        store.submit(spec, KEY_A, now=100.5)  # duplicate key
        other = store.submit(spec, KEY_B, now=101.0)
        assert store.claim("w0", 30.0, now=102.0).id == first.id
        # the duplicate is held back while its twin runs; B is next
        assert store.claim("w1", 30.0, now=102.0).id == other.id
        assert store.claim("w2", 30.0, now=102.0) is None
        store.complete(first.id, now=103.0)
        # twin released once the runner finished
        assert store.claim("w2", 30.0, now=104.0) is not None


class TestRetryAndFailure:
    def test_retry_requeues_with_backoff_gate(self, store, spec):
        job = store.submit(spec, KEY_A, now=100.0)
        store.claim("w", 30.0, now=101.0)
        store.retry(job.id, error="boom", not_before=105.0)
        queued = store.get(job.id)
        assert queued.state == "queued"
        assert queued.error == "boom"
        assert store.claim("w", 30.0, now=104.0) is None  # gated
        assert store.claim("w", 30.0, now=105.5).attempts == 2

    def test_fail_is_terminal(self, store, spec):
        job = store.submit(spec, KEY_A, now=100.0)
        store.claim("w", 30.0, now=101.0)
        store.fail(job.id, error="dead", now=102.0)
        failed = store.get(job.id)
        assert failed.state == "failed"
        assert failed.error == "dead"
        assert store.claim("w", 30.0, now=103.0) is None

    def test_transitions_require_running_state(self, store, spec):
        job = store.submit(spec, KEY_A, now=100.0)
        with pytest.raises(ServiceError, match="queued"):
            store.complete(job.id, now=101.0)
        with pytest.raises(JobNotFound):
            store.complete("job-missing", now=101.0)


class TestOrphanRecovery:
    def test_expired_lease_requeues(self, store, spec):
        job = store.submit(spec, KEY_A, now=100.0)
        store.claim("w", lease_seconds=10.0, now=101.0)
        assert store.recover_orphans(now=105.0) == []  # lease alive
        recovered = store.recover_orphans(now=112.0)
        assert recovered == [job.id]
        requeued = store.get(job.id)
        assert requeued.state == "queued"
        assert "lease expired" in requeued.error

    def test_heartbeat_extends_lease(self, store, spec):
        job = store.submit(spec, KEY_A, now=100.0)
        store.claim("w", lease_seconds=10.0, now=101.0)
        store.heartbeat(job.id, lease_seconds=10.0, now=108.0)
        assert store.recover_orphans(now=112.0) == []
        assert store.recover_orphans(now=119.0) == [job.id]

    def test_exhausted_orphan_fails(self, store, fast_config):
        spec = JobSpec(workload="cos", n_inputs=6, config=fast_config,
                       max_attempts=1)
        job = store.submit(spec, KEY_A, now=100.0)
        store.claim("w", lease_seconds=10.0, now=101.0)
        assert store.recover_orphans(now=120.0) == [job.id]
        assert store.get(job.id).state == "failed"

    def test_recovered_job_is_reclaimable(self, store, spec):
        job = store.submit(spec, KEY_A, now=100.0)
        store.claim("w0", lease_seconds=10.0, now=101.0)
        store.recover_orphans(now=120.0)
        reclaimed = store.claim("w1", lease_seconds=10.0, now=121.0)
        assert reclaimed.id == job.id
        assert reclaimed.attempts == 2
        assert reclaimed.worker == "w1"


class TestInspection:
    def test_counts_and_pending(self, store, spec):
        store.submit(spec, KEY_A, now=100.0)
        running = store.submit(spec, KEY_B, now=101.0)
        store.claim("w", 30.0, now=102.0)  # claims KEY_A job
        counts = store.counts()
        assert counts == {"queued": 1, "running": 1, "done": 0,
                          "failed": 0, "quarantined": 0}
        assert store.pending() == 2
        assert running is not None

    def test_list_jobs_filter_validated(self, store):
        with pytest.raises(ServiceError, match="unknown job state"):
            store.list_jobs("zombie")

    def test_get_unknown_job(self, store):
        with pytest.raises(JobNotFound):
            store.get("job-unknown")

    def test_store_survives_reopen(self, store, spec, tmp_path):
        job = store.submit(spec, KEY_A, now=100.0)
        reopened = JobStore(tmp_path / "jobs.sqlite3")
        assert reopened.get(job.id).spec == spec
