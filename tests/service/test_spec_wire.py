"""The canonical JobSpecV1 wire format: strict parsing + round trips.

One JSON shape travels everywhere (CLI ``--remote``, gateway POST
bodies, job-store rows); unknown fields and unsupported versions are
rejected up front, while legacy pre-wire store rows still load.
"""

import json

import pytest

from repro.errors import ServiceError
from repro.service.jobstore import JobRecord, JobStore
from repro.service.spec import (
    SPEC_FORMAT,
    SPEC_SCHEMA_VERSION,
    JobSpec,
    spec_from_stored,
)


@pytest.fixture
def spec(fast_config):
    return JobSpec(workload="cos", n_inputs=6, config=fast_config,
                   timeout_seconds=12.5, max_attempts=2)


class TestWireRoundTrip:
    def test_to_wire_shape(self, spec):
        wire = spec.to_wire()
        assert wire["format"] == SPEC_FORMAT == "repro-jobspec"
        assert wire["schema_version"] == SPEC_SCHEMA_VERSION == 1
        assert wire["workload"] == "cos"
        assert wire["n_inputs"] == 6
        assert wire["timeout_seconds"] == 12.5
        assert wire["max_attempts"] == 2

    def test_round_trip_is_exact(self, spec):
        rebuilt = JobSpec.from_wire(
            json.loads(json.dumps(spec.to_wire()))
        )
        assert rebuilt == spec
        assert rebuilt.to_wire() == spec.to_wire()

    def test_inline_table_round_trips(self, fast_config):
        from repro.service.spec import table_to_dict
        from repro.workloads import build_workload

        table = build_workload("cos", n_inputs=6).table
        spec = JobSpec(table=table_to_dict(table), config=fast_config)
        rebuilt = JobSpec.from_wire(spec.to_wire())
        assert (rebuilt.build_table().outputs == table.outputs).all()


class TestStrictParsing:
    def test_unknown_field_rejected(self, spec):
        wire = spec.to_wire()
        wire["priority"] = "high"
        with pytest.raises(ServiceError, match="priority"):
            JobSpec.from_wire(wire)

    def test_missing_format_rejected(self, spec):
        wire = spec.to_wire()
        del wire["format"]
        with pytest.raises(ServiceError, match="repro-jobspec"):
            JobSpec.from_wire(wire)

    def test_unsupported_version_rejected(self, spec):
        wire = spec.to_wire()
        wire["schema_version"] = 2
        with pytest.raises(ServiceError, match="schema_version"):
            JobSpec.from_wire(wire)
        del wire["schema_version"]
        with pytest.raises(ServiceError, match="schema_version"):
            JobSpec.from_wire(wire)

    def test_non_mapping_rejected(self):
        with pytest.raises(ServiceError, match="JSON object"):
            JobSpec.from_wire(["not", "a", "spec"])

    def test_missing_config_rejected(self, spec):
        wire = spec.to_wire()
        del wire["config"]
        with pytest.raises(ServiceError, match="config"):
            JobSpec.from_wire(wire)


class TestStoredSpecDispatch:
    def test_wire_rows_parse_strictly(self, spec):
        assert spec_from_stored(spec.to_wire()) == spec

    def test_legacy_rows_still_load(self, spec):
        # pre-wire job-store rows carry no "format" key
        assert spec_from_stored(spec.to_dict()) == spec

    def test_store_persists_wire_form(self, tmp_path, spec):
        store = JobStore(tmp_path / "jobs.sqlite3")
        job = store.submit(spec, artifact_key="k")
        assert store.get(job.id).spec == spec

    def test_legacy_store_row_is_readable(self, tmp_path, spec):
        """A database written before the wire format still loads."""
        import sqlite3

        store = JobStore(tmp_path / "jobs.sqlite3")
        conn = sqlite3.connect(store.path)
        conn.execute(
            "INSERT INTO jobs (id, artifact_key, spec, state, "
            "max_attempts, created_at) VALUES (?, ?, ?, 'queued', 3, 0)",
            ("job-legacy", "k", json.dumps(spec.to_dict())),
        )
        conn.commit()
        conn.close()
        assert store.get("job-legacy").spec == spec


class TestJobRecordRoundTrip:
    def test_record_to_dict_round_trips(self, tmp_path, spec):
        store = JobStore(tmp_path / "jobs.sqlite3")
        job = store.submit(spec, artifact_key="key-1")
        assert JobRecord.from_dict(job.to_dict()) == job

    def test_record_dict_survives_json(self, tmp_path, spec):
        store = JobStore(tmp_path / "jobs.sqlite3")
        job = store.submit(spec, artifact_key="key-1")
        claimed = store.claim("w0", lease_seconds=5.0)
        payload = json.loads(json.dumps(claimed.to_dict()))
        rebuilt = JobRecord.from_dict(payload)
        assert rebuilt == claimed
        assert rebuilt.spec.config == spec.config

    def test_malformed_record_rejected(self):
        with pytest.raises(ServiceError, match="malformed job record"):
            JobRecord.from_dict({"id": "job-x"})
