"""JobStore races: concurrent claims and orphan recovery.

The durability story rests on ``BEGIN IMMEDIATE`` claims: whatever the
thread/process interleaving, one queued job is run by exactly one
worker, and an expired lease is recovered by exactly one sweeper.
These tests hammer those paths with real thread pools.
"""

import dataclasses
import threading

from repro.service.jobstore import JobStore
from repro.service.spec import JobSpec


def _specs(fast_config, n):
    # distinct seeds -> distinct artifact keys, so single-flight dedup
    # never hides a double claim from this test
    return [
        JobSpec(
            workload="cos",
            n_inputs=6,
            config=dataclasses.replace(fast_config, seed=seed),
        )
        for seed in range(n)
    ]


class TestConcurrentClaims:
    def test_no_job_is_ever_claimed_twice(self, tmp_path, fast_config):
        store = JobStore(tmp_path / "jobs.sqlite3")
        jobs = [
            store.submit(spec, artifact_key=f"key-{i}")
            for i, spec in enumerate(_specs(fast_config, 24))
        ]
        claimed = []
        lock = threading.Lock()
        barrier = threading.Barrier(8)

        def worker(name):
            barrier.wait()  # maximize claim contention
            while True:
                record = store.claim(name, lease_seconds=60.0)
                if record is None:
                    return
                with lock:
                    claimed.append(record.id)

        threads = [
            threading.Thread(target=worker, args=(f"w{i}",))
            for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert sorted(claimed) == sorted(job.id for job in jobs)
        assert len(claimed) == len(set(claimed)), "a job ran twice"

    def test_single_flight_dedup_under_concurrency(
        self, tmp_path, fast_config
    ):
        """Twins (same artifact key) are never running simultaneously:
        with every queued job sharing one key, concurrent claimers get
        at most one job between them."""
        store = JobStore(tmp_path / "jobs.sqlite3")
        spec = JobSpec(workload="cos", n_inputs=6, config=fast_config)
        for _ in range(6):
            store.submit(spec, artifact_key="shared-key")
        results = []
        lock = threading.Lock()
        barrier = threading.Barrier(6)

        def claimer(name):
            barrier.wait()
            record = store.claim(name, lease_seconds=60.0)
            with lock:
                results.append(record)

        threads = [
            threading.Thread(target=claimer, args=(f"w{i}",))
            for i in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        won = [record for record in results if record is not None]
        assert len(won) == 1
        assert store.counts()["running"] == 1


class TestConcurrentOrphanRecovery:
    def test_each_orphan_recovered_exactly_once(
        self, tmp_path, fast_config
    ):
        store = JobStore(tmp_path / "jobs.sqlite3")
        for i, spec in enumerate(_specs(fast_config, 10)):
            store.submit(spec, artifact_key=f"key-{i}", now=100.0)
        while store.claim("doomed", lease_seconds=1.0, now=100.0):
            pass
        assert store.counts()["running"] == 10

        recovered = []
        lock = threading.Lock()
        barrier = threading.Barrier(4)

        def sweeper():
            barrier.wait()
            ids = store.recover_orphans(now=200.0)  # leases long expired
            with lock:
                recovered.extend(ids)

        threads = [threading.Thread(target=sweeper) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        # every orphan transitioned exactly once across all sweepers
        assert len(recovered) == 10
        assert len(set(recovered)) == 10
        counts = store.counts()
        assert counts["running"] == 0
        assert counts["queued"] == 10  # attempts=1 < max_attempts=3

        # recovered jobs are claimable again — exactly once each
        reclaimed = []
        while True:
            record = store.claim("fresh", lease_seconds=60.0, now=300.0)
            if record is None:
                break
            reclaimed.append(record)
        assert len(reclaimed) == 10
        assert all(record.attempts == 2 for record in reclaimed)
