"""Fusion exclusions are accounted for, never silently skipped.

Before this existed, a batch whose jobs could not share a sweep
schedule simply ran unfused with no trace — an operator watching for
fusion wins had no way to tell "nothing batched" from "batched but
rejected".  Now every excluded job increments ``fusion_rejected_total``
and the first exclusion per reason logs once.
"""

import logging

import pytest

from repro.core import CoreSolverConfig, FrameworkConfig
from repro.obs.logconfig import get_logger, reset_warn_once, warn_once
from repro.obs.metrics import get_metrics
from repro.partition.instances import separate_mode_instance
from repro.service import DecompositionService, JobSpec, SchedulerPolicy
from repro.service.worker import _fusion_rejection

FAST_POLICY = SchedulerPolicy(
    lease_seconds=30.0,
    retry_backoff_seconds=0.01,
    poll_interval_seconds=0.01,
)


def _config(**overrides):
    base = dict(
        mode="joint",
        free_size=2,
        n_partitions=2,
        n_rounds=1,
        seed=3,
        solver=CoreSolverConfig(max_iterations=200, n_replicas=2),
    )
    base.update(overrides)
    return FrameworkConfig(**base)


class TestRejectionReasons:
    def test_ising_specs_never_fuse(self):
        spec = JobSpec(
            config=_config(),
            ising=separate_mode_instance(
                workload="cos", n_inputs=6, free_size=2
            ),
        )
        assert _fusion_rejection(spec) == "ising-problem"

    def test_unbatched_config_rejected(self):
        spec = JobSpec(workload="cos", n_inputs=6, config=_config())
        assert _fusion_rejection(spec) == "config-not-batched"

    def test_multiprocess_sweep_rejected(self):
        spec = JobSpec(
            workload="cos", n_inputs=6,
            config=_config(batched=True, n_workers=2),
        )
        assert _fusion_rejection(spec) == "multiprocess-sweep"

    def test_batched_single_process_is_fusable(self):
        spec = JobSpec(
            workload="cos", n_inputs=6, config=_config(batched=True)
        )
        assert _fusion_rejection(spec) is None


class TestBatchAccounting:
    def test_unfusable_batch_counts_every_exclusion(
        self, tmp_path, caplog
    ):
        reset_warn_once()
        before = get_metrics().counter("fusion_rejected_total").value
        service = DecompositionService(
            tmp_path / "svc",
            policy=FAST_POLICY,
            batch_jobs=2,
            n_workers=1,
        )
        specs = [
            JobSpec(workload="cos", n_inputs=6, config=_config()),
            JobSpec(workload="erf", n_inputs=6, config=_config()),
        ]
        service.submit_batch(specs)
        with caplog.at_level(logging.WARNING, logger="repro"):
            service.run_until_drained(timeout=300)
        after = get_metrics().counter("fusion_rejected_total").value
        assert after - before == 2
        messages = [
            r.getMessage() for r in caplog.records
            if "sweep fusion excluded" in r.getMessage()
        ]
        assert len(messages) == 1  # warn-once, not per-job
        assert "config-not-batched" in messages[0]

    def test_warn_once_is_once_until_reset(self):
        logger = get_logger("repro.tests.fusion")
        reset_warn_once()
        assert warn_once(logger, "k", "message %s", 1)
        assert not warn_once(logger, "k", "message %s", 2)
        reset_warn_once()
        assert warn_once(logger, "k", "message %s", 3)
