"""Tests for the content-addressed artifact store."""

import json

import numpy as np
import pytest

from repro.core import IsingDecomposer
from repro.errors import ServiceError
from repro.serialization import SerializationError, result_to_dict
from repro.service import ArtifactStore
from repro.service.spec import artifact_key
from repro.workloads import build_workload


@pytest.fixture(scope="module")
def solved():
    """One real decomposition result plus its key."""
    from repro.core import CoreSolverConfig, FrameworkConfig

    config = FrameworkConfig(
        mode="joint", free_size=2, n_partitions=2, n_rounds=1, seed=3,
        solver=CoreSolverConfig(max_iterations=200, n_replicas=2),
    )
    table = build_workload("cos", n_inputs=6).table
    result = IsingDecomposer(config).decompose(table)
    return artifact_key(table, config), result


class TestArtifactStore:
    def test_miss_then_hit(self, tmp_path, solved):
        key, result = solved
        store = ArtifactStore(tmp_path)
        assert store.get(key) is None
        assert key not in store
        store.put(key, result, {"med": result.med})
        assert key in store
        envelope = store.get(key)
        assert envelope["key"] == key
        assert envelope["design"] == result_to_dict(result)
        assert envelope["meta"]["med"] == result.med

    def test_cached_design_is_evaluable(self, tmp_path, solved):
        key, result = solved
        store = ArtifactStore(tmp_path)
        store.put(key, result)
        from repro.lut import build_cascade_design

        indices = np.arange(64)
        assert np.array_equal(
            store.load_design(key).evaluate(indices),
            build_cascade_design(result).evaluate(indices),
        )

    def test_put_is_idempotent(self, tmp_path, solved):
        key, result = solved
        store = ArtifactStore(tmp_path)
        first = store.put(key, result)
        second = store.put(key, result)
        assert first["design"] == second["design"]
        assert store.get(key)["design"] == first["design"]
        assert len(store) == 1

    def test_accepts_predumped_design_dict(self, tmp_path, solved):
        key, result = solved
        store = ArtifactStore(tmp_path)
        store.put(key, result_to_dict(result))
        assert store.get(key)["design"] == result_to_dict(result)

    def test_load_design_missing_key(self, tmp_path):
        with pytest.raises(ServiceError, match="no artifact"):
            ArtifactStore(tmp_path).load_design("0" * 64)

    def test_corrupt_envelope_rejected(self, tmp_path, solved):
        key, result = solved
        store = ArtifactStore(tmp_path)
        store.put(key, result)
        store.path_for(key).write_text("{broken")
        with pytest.raises(SerializationError, match="corrupt"):
            store.get(key)

    def test_foreign_schema_rejected(self, tmp_path, solved):
        key, result = solved
        store = ArtifactStore(tmp_path)
        envelope = store.put(key, result)
        envelope["schema_version"] = 99
        store.path_for(key).write_text(json.dumps(envelope))
        with pytest.raises(SerializationError, match="schema_version"):
            store.get(key)

    def test_keys_and_stats(self, tmp_path, solved):
        key, result = solved
        store = ArtifactStore(tmp_path)
        store.put(key, result)
        other = "f" * 64
        store.put(other, result_to_dict(result))
        assert sorted(store.keys()) == sorted([key, other])
        stats = store.stats()
        assert stats["n_artifacts"] == 2
        assert stats["total_bytes"] > 0

    def test_sharded_layout(self, tmp_path, solved):
        key, result = solved
        store = ArtifactStore(tmp_path)
        store.put(key, result)
        assert store.path_for(key).parent.name == key[:2]
