"""Tests for job specs and content-addressed artifact keying."""

import numpy as np
import pytest

from repro.boolean.truth_table import TruthTable
from repro.core import FrameworkConfig
from repro.errors import ServiceError
from repro.service.spec import (
    JobSpec,
    artifact_key,
    table_from_dict,
    table_to_dict,
)
from repro.workloads import build_workload


@pytest.fixture
def table():
    return build_workload("cos", n_inputs=6).table


class TestArtifactKey:
    def test_deterministic(self, table, fast_config):
        assert artifact_key(table, fast_config) == artifact_key(
            table, fast_config
        )

    def test_worker_count_does_not_change_key(self, table, fast_config):
        # n_workers schedules the deterministic sweep; same result, same key
        scaled = fast_config.with_updates(n_workers=8)
        assert artifact_key(table, scaled) == artifact_key(
            table, fast_config
        )

    @pytest.mark.parametrize(
        "change",
        [
            {"seed": 4},
            {"mode": "separate"},
            {"n_partitions": 3},
            {"n_rounds": 2},
            {"free_size": 3},
            {"sweep_chunk_size": 1},
        ],
    )
    def test_semantic_changes_change_key(self, table, fast_config, change):
        changed = fast_config.with_updates(**change)
        assert artifact_key(table, changed) != artifact_key(
            table, fast_config
        )

    def test_solver_changes_change_key(self, table, fast_config):
        changed = fast_config.with_updates(
            solver=fast_config.solver.with_updates(max_iterations=300)
        )
        assert artifact_key(table, changed) != artifact_key(
            table, fast_config
        )

    def test_different_tables_different_keys(self, table, fast_config):
        other = build_workload("erf", n_inputs=6).table
        assert artifact_key(other, fast_config) != artifact_key(
            table, fast_config
        )

    def test_distribution_is_part_of_the_key(self, table, fast_config):
        # MED is defined against p_X — a different distribution is a
        # different problem even with identical output bits
        skewed = np.linspace(1.0, 2.0, table.size)
        reweighted = TruthTable(table.outputs, skewed)
        assert artifact_key(reweighted, fast_config) != artifact_key(
            table, fast_config
        )


class TestJobSpec:
    def test_round_trip(self, fast_config):
        spec = JobSpec(
            workload="cos",
            n_inputs=6,
            config=fast_config,
            timeout_seconds=12.5,
            max_attempts=5,
        )
        loaded = JobSpec.from_dict(spec.to_dict())
        assert loaded == spec
        assert loaded.config == fast_config

    def test_inline_table_round_trip(self, table, fast_config):
        spec = JobSpec(table=table_to_dict(table), config=fast_config)
        rebuilt = JobSpec.from_dict(spec.to_dict()).build_table()
        assert np.array_equal(rebuilt.outputs, table.outputs)
        assert np.allclose(rebuilt.probabilities, table.probabilities)

    def test_workload_and_table_are_exclusive(self, table, fast_config):
        with pytest.raises(ServiceError):
            JobSpec(
                workload="cos", table=table_to_dict(table),
                config=fast_config,
            )
        with pytest.raises(ServiceError):
            JobSpec(config=fast_config)

    def test_invalid_budgets_rejected(self, fast_config):
        with pytest.raises(ServiceError):
            JobSpec(workload="cos", config=fast_config, max_attempts=0)
        with pytest.raises(ServiceError):
            JobSpec(workload="cos", config=fast_config,
                    timeout_seconds=-1.0)

    def test_malformed_spec_payload(self):
        with pytest.raises(ServiceError):
            JobSpec.from_dict({"workload": "cos"})  # no config

    def test_malformed_inline_table(self):
        with pytest.raises(ServiceError):
            table_from_dict({"n_inputs": 4, "outputs_hex": "zz"})


class TestConfigDictRoundTrip:
    def test_framework_config_round_trip(self, fast_config):
        assert FrameworkConfig.from_dict(fast_config.to_dict()) == (
            fast_config
        )

    def test_unknown_fields_rejected(self, fast_config):
        from repro.errors import ConfigurationError

        data = fast_config.to_dict()
        data["frobnicate"] = True
        with pytest.raises(ConfigurationError, match="frobnicate"):
            FrameworkConfig.from_dict(data)

    def test_semantic_dict_drops_scheduling(self, fast_config):
        semantic = fast_config.semantic_dict()
        assert "n_workers" not in semantic
        assert semantic["solver"]["backend"] is not None
