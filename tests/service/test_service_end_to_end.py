"""End-to-end service tests: the ISSUE's acceptance scenario.

Submit a batch including exact duplicates and one job whose worker
crashes on its first attempt; the service must retry the crash, dedup
the duplicates through the artifact cache, and return designs that are
bit-for-bit identical to direct ``IsingDecomposer`` calls with the same
seed.  Timeouts, orphan resume, and the determinism-under-retry
guarantee are exercised here too.
"""

import threading
import time

import pytest

from repro.core import IsingDecomposer
from repro.errors import OperationCancelled, ServiceError
from repro.serialization import result_to_dict
from repro.service import (
    DecompositionService,
    JobSpec,
    SchedulerPolicy,
)
from repro.service.worker import _default_decompose
from repro.workloads import build_workload


FAST_POLICY = SchedulerPolicy(
    lease_seconds=30.0,
    retry_backoff_seconds=0.01,
    poll_interval_seconds=0.01,
)


class CrashOnce:
    """Decompose wrapper that raises on the first call per workload."""

    def __init__(self, crash_workloads):
        self.remaining = dict(crash_workloads)
        self.lock = threading.Lock()
        self.crashes = 0

    def __call__(self, spec, table, progress, should_cancel):
        with self.lock:
            if self.remaining.get(spec.workload, 0) > 0:
                self.remaining[spec.workload] -= 1
                self.crashes += 1
                raise RuntimeError("injected worker crash")
        return _default_decompose(spec, table, progress, should_cancel)


class TestAcceptanceScenario:
    def test_batch_with_duplicates_and_crash(self, tmp_path, fast_config):
        crasher = CrashOnce({"erf": 1})
        service = DecompositionService(
            tmp_path / "svc",
            n_workers=3,
            policy=FAST_POLICY,
            decompose_fn=crasher,
        )
        specs = (
            [JobSpec(workload="cos", n_inputs=6, config=fast_config)] * 3
            + [JobSpec(workload="erf", n_inputs=6, config=fast_config)]
            + [JobSpec(workload="tan", n_inputs=6, config=fast_config)]
        )
        jobs = service.submit_batch(specs)
        service.run_until_drained(timeout=120)

        records = [service.job(job.id) for job in jobs]
        assert [record.state for record in records] == ["done"] * 5
        assert crasher.crashes == 1

        # the crashed job retried exactly once and was recorded as such
        erf_record = records[3]
        assert erf_record.attempts == 2
        assert erf_record.retries == 1

        # duplicates were deduped: exactly one cos solve hit the solver
        summary = service.status()
        assert summary["jobs"]["done"] == 5
        assert summary["jobs"]["failed"] == 0
        assert summary["cache"]["hits"] == 2
        assert summary["cache"]["hit_rate"] == pytest.approx(0.4)
        assert summary["cache"]["n_artifacts"] == 3
        assert summary["retries"]["total"] == 1

        # every returned design is bit-for-bit the direct framework call
        for record, workload in zip(
            records, ["cos", "cos", "cos", "erf", "tan"]
        ):
            table = build_workload(workload, n_inputs=6).table
            direct = IsingDecomposer(fast_config).decompose(table)
            assert service.fetch_design_dict(record.id) == (
                result_to_dict(direct)
            ), f"{workload} design diverged from the direct call"

    def test_duplicate_after_drain_is_instant_cache_hit(
        self, tmp_path, fast_config
    ):
        service = DecompositionService(
            tmp_path / "svc", policy=FAST_POLICY
        )
        spec = JobSpec(workload="cos", n_inputs=6, config=fast_config)
        first = service.submit(spec)
        service.run_until_drained(timeout=60)
        second = service.submit(spec)
        service.run_until_drained(timeout=60)
        first_record = service.job(first.id)
        second_record = service.job(second.id)
        assert not first_record.cache_hit
        assert second_record.cache_hit
        assert service.fetch_design_dict(first.id) == (
            service.fetch_design_dict(second.id)
        )


class TestTimeouts:
    def test_timeout_counts_attempts_then_fails(self, tmp_path,
                                                fast_config):
        service = DecompositionService(
            tmp_path / "svc", policy=FAST_POLICY
        )
        spec = JobSpec(
            workload="cos",
            n_inputs=6,
            config=fast_config,
            timeout_seconds=1e-9,  # expires before the attempt starts
            max_attempts=2,
        )
        job = service.submit(spec)
        service.run_until_drained(timeout=60)
        record = service.job(job.id)
        assert record.state == "failed"
        assert record.attempts == 2
        assert "timeout" in record.error
        with pytest.raises(ServiceError, match="failed"):
            service.fetch_design_dict(job.id)

    def test_cancel_hook_aborts_decompose(self, fast_config):
        table = build_workload("cos", n_inputs=6).table
        with pytest.raises(OperationCancelled):
            IsingDecomposer(fast_config).decompose(
                table, should_cancel=lambda: True
            )


class TestCrashRecovery:
    def test_orphaned_job_resumes_identically(self, tmp_path,
                                              fast_config):
        """Simulate a worker process dying mid-job: the claimed job's
        lease expires, a later serve pass recovers and re-runs it, and
        the result matches the never-crashed run bit-for-bit."""
        root = tmp_path / "svc"
        service = DecompositionService(
            root,
            policy=SchedulerPolicy(
                lease_seconds=0.05,
                retry_backoff_seconds=0.01,
                poll_interval_seconds=0.01,
            ),
        )
        spec = JobSpec(workload="cos", n_inputs=6, config=fast_config)
        job = service.submit(spec)
        # a "worker" claims the job and dies (no heartbeat, no result)
        claimed = service.scheduler.claim("doomed-worker")
        assert claimed.id == job.id
        time.sleep(0.1)  # let the lease lapse

        # a fresh service over the same directory picks up the orphan
        resumed = DecompositionService(root, policy=FAST_POLICY)
        assert resumed.store.get(job.id).state == "running"
        resumed.run_until_drained(timeout=60)
        record = resumed.store.get(job.id)
        assert record.state == "done"
        assert record.attempts == 2  # doomed claim + successful rerun

        table = build_workload("cos", n_inputs=6).table
        direct = IsingDecomposer(fast_config).decompose(table)
        assert resumed.fetch_design_dict(job.id) == result_to_dict(direct)

    def test_exhausted_orphan_is_failed_not_looped(self, tmp_path,
                                                   fast_config):
        service = DecompositionService(
            tmp_path / "svc",
            policy=SchedulerPolicy(
                lease_seconds=0.05,
                retry_backoff_seconds=0.01,
                poll_interval_seconds=0.01,
            ),
        )
        spec = JobSpec(workload="cos", n_inputs=6, config=fast_config,
                       max_attempts=1)
        job = service.submit(spec)
        service.scheduler.claim("doomed-worker")
        time.sleep(0.1)
        recovered = service.scheduler.recover_orphans()
        assert recovered == [job.id]
        assert service.job(job.id).state == "failed"


class TestDeterminismAcrossWorkerCounts:
    def test_worker_pool_size_never_changes_results(self, tmp_path,
                                                    fast_config):
        designs = {}
        for n_workers in (1, 3):
            service = DecompositionService(
                tmp_path / f"svc-{n_workers}",
                n_workers=n_workers,
                policy=FAST_POLICY,
            )
            jobs = service.submit_batch(
                [
                    JobSpec(workload=name, n_inputs=6, config=fast_config)
                    for name in ("cos", "erf")
                ]
            )
            service.run_until_drained(timeout=120)
            designs[n_workers] = [
                service.fetch_design_dict(job.id) for job in jobs
            ]
        assert designs[1] == designs[3]
