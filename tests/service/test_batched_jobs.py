"""Service-level batch scheduling: ``batch_jobs > 1`` with sweep fusion.

The acceptance bar: a worker that claims several jobs per loop and
advances them through fused kernel windows must produce artifacts that
are **bit-for-bit identical** (same artifact keys, same design
documents) to a plain one-job-at-a-time service — including when a job
crashes mid-batch and resumes from its checkpoint, and when a batch
contains duplicate submissions (single-flight dedup).
"""

import threading

import pytest

from repro.core import CoreSolverConfig, FrameworkConfig
from repro.obs.metrics import get_metrics
from repro.resilience import FaultPlan, FaultRule, fault_injection
from repro.service import (
    DecompositionService,
    JobSpec,
    SchedulerPolicy,
)
from repro.service.worker import WorkerPool, _default_decompose, _fusion_key

FAST_POLICY = SchedulerPolicy(
    lease_seconds=30.0,
    retry_backoff_seconds=0.01,
    poll_interval_seconds=0.01,
)


@pytest.fixture
def fused_config():
    """Batched inline solve — the fusable configuration."""
    return FrameworkConfig(
        mode="joint",
        free_size=2,
        n_partitions=2,
        n_rounds=1,
        seed=3,
        batched=True,
        solver=CoreSolverConfig(max_iterations=200, n_replicas=2),
    )


def _drain(tmp_path, specs, label, batch_jobs, **kwargs):
    service = DecompositionService(
        tmp_path / label,
        policy=FAST_POLICY,
        batch_jobs=batch_jobs,
        **kwargs,
    )
    jobs = service.submit_batch(specs)
    service.run_until_drained(timeout=300)
    return service, jobs


class TestFusionKey:
    def test_unbatched_configs_never_fuse(self, fast_config):
        spec = JobSpec(workload="cos", n_inputs=6, config=fast_config)
        assert _fusion_key(spec) is None

    def test_batched_same_schedule_share_a_key(self, fused_config):
        a = JobSpec(workload="cos", n_inputs=6, config=fused_config)
        b = JobSpec(workload="erf", n_inputs=6, config=fused_config)
        key = _fusion_key(a)
        assert key is not None
        assert key == _fusion_key(b)

    def test_different_schedules_split(self, fused_config):
        other = FrameworkConfig(
            **{**fused_config.to_dict(), "solver": CoreSolverConfig(
                max_iterations=400, n_replicas=2
            )}
        )
        a = JobSpec(workload="cos", n_inputs=6, config=fused_config)
        b = JobSpec(workload="cos", n_inputs=6, config=other)
        assert _fusion_key(a) != _fusion_key(b)


class TestBatchedArtifactsIdentity:
    def test_batched_service_matches_sequential_service(
        self, tmp_path, fused_config
    ):
        specs = [
            JobSpec(workload=name, n_inputs=6, config=fused_config)
            for name in ("cos", "erf", "tan")
        ]
        fused_rounds = get_metrics().counter(
            "service_fused_sweeps_total",
            help="fused sweep rounds led across jobs",
        )
        before = fused_rounds.value
        seq_service, seq_jobs = _drain(tmp_path, specs, "seq", 1)
        batch_service, batch_jobs_ = _drain(tmp_path, specs, "batch", 3)
        assert fused_rounds.value > before

        for seq_job, batch_job in zip(seq_jobs, batch_jobs_):
            assert batch_job.artifact_key == seq_job.artifact_key
            assert batch_service.job(batch_job.id).state == "done"
            assert (
                batch_service.fetch_design_dict(batch_job.id)
                == seq_service.fetch_design_dict(seq_job.id)
            )

    def test_mixed_schedules_in_one_wave(self, tmp_path, fused_config):
        """Schedule-incompatible jobs in one claimed wave still finish
        correctly (separate gates / no gate)."""
        other = FrameworkConfig(
            **{**fused_config.to_dict(), "solver": CoreSolverConfig(
                max_iterations=400, n_replicas=2
            )}
        )
        specs = [
            JobSpec(workload="cos", n_inputs=6, config=fused_config),
            JobSpec(workload="erf", n_inputs=6, config=other),
            JobSpec(workload="tan", n_inputs=6, config=fused_config),
        ]
        seq_service, seq_jobs = _drain(tmp_path, specs, "seq", 1)
        batch_service, batch_jobs_ = _drain(tmp_path, specs, "batch", 3)
        for seq_job, batch_job in zip(seq_jobs, batch_jobs_):
            assert (
                batch_service.fetch_design_dict(batch_job.id)
                == seq_service.fetch_design_dict(seq_job.id)
            )


class TestSingleFlightDedup:
    def test_duplicates_in_one_wave_solve_once(
        self, tmp_path, fused_config
    ):
        calls = []
        lock = threading.Lock()

        def counting_decompose(spec, table, progress, should_cancel,
                               **kwargs):
            with lock:
                calls.append(spec.workload)
            return _default_decompose(
                spec, table, progress, should_cancel, **kwargs
            )

        spec = JobSpec(workload="cos", n_inputs=6, config=fused_config)
        service, jobs = _drain(
            tmp_path, [spec] * 3, "dup", 3,
            decompose_fn=counting_decompose,
        )
        assert [service.job(j.id).state for j in jobs] == ["done"] * 3
        # one real solve; the two twins resolve via the artifact cache
        assert calls == ["cos"]
        designs = {
            str(service.fetch_design_dict(j.id)) for j in jobs
        }
        assert len(designs) == 1


class TestCrashInsideBatch:
    def test_mid_batch_crash_resumes_bit_identical(
        self, tmp_path, fused_config
    ):
        """One job of a fused batch crashes post-checkpoint; its retry
        (resuming from the checkpoint) must land the same artifact as a
        clean sequential service."""
        specs = [
            JobSpec(workload=name, n_inputs=6, config=fused_config)
            for name in ("cos", "erf")
        ]
        seq_service, seq_jobs = _drain(tmp_path, specs, "seq", 1)

        plan = FaultPlan(
            [
                FaultRule(
                    site="worker.crash",
                    at_calls=(3,),
                    match="post-checkpoint",
                )
            ],
            seed=1234,
        )
        chaos = DecompositionService(
            tmp_path / "chaos", policy=FAST_POLICY, batch_jobs=2
        )
        jobs = chaos.submit_batch(specs)
        with fault_injection(plan):
            chaos.run_until_drained(timeout=300)

        assert len(plan.events()) == 1
        records = [chaos.job(j.id) for j in jobs]
        assert [r.state for r in records] == ["done", "done"]
        # exactly one job paid a retry
        assert sorted(r.retries for r in records) == [0, 1]
        for seq_job, job in zip(seq_jobs, jobs):
            assert (
                chaos.fetch_design_dict(job.id)
                == seq_service.fetch_design_dict(seq_job.id)
            )


class TestValidation:
    def test_batch_size_must_be_positive(self):
        with pytest.raises(ValueError, match="batch_size"):
            WorkerPool(None, None, batch_size=0)
