"""Sharded job store: routing, fault domains, scrub/rebuild.

Covers the shard hash and on-disk layout (N=1 must stay byte-level
identical to the single-store world), cross-shard claims by concurrent
workers, single-flight dedup on the home shard, the per-shard circuit
breaker (trip on repeated failures, half-open probe, recovery), keyset
pagination that stays stable while a shard is degraded, the quarantine
schema migration applied per shard, and the intent-journal-based
scrub/rebuild path.
"""

import json
import sqlite3

import pytest

from repro.errors import ServiceError, ShardUnavailableError
from repro.resilience import FaultPlan, FaultRule, fault_injection
from repro.service import (
    JobSpec,
    JobStore,
    Scheduler,
    SchedulerPolicy,
    ShardedJobStore,
    open_job_store,
    rebuild_shard,
    scrub_store,
    shard_for_key,
)
from repro.service.shards import (
    read_journal,
    resolve_n_shards,
    shard_db_path,
    shard_journal_path,
)


@pytest.fixture
def chaos_seed():
    return 1234


def key_for_shard(index, n_shards, salt=0):
    """A valid artifact key that hashes onto ``index`` of ``n_shards``."""
    value = index + salt * n_shards
    assert value % n_shards == index
    return f"{value:08x}" + "0" * 56


@pytest.fixture
def spec(fast_config):
    return JobSpec(workload="cos", n_inputs=6, config=fast_config,
                   max_attempts=3)


@pytest.fixture
def store(tmp_path):
    return open_job_store(tmp_path, shards=3)


class TestLayout:
    def test_hash_is_stable_and_in_range(self):
        key = "deadbeef" + "0" * 56
        assert shard_for_key(key, 4) == int("deadbeef", 16) % 4
        for n in (2, 3, 8):
            assert 0 <= shard_for_key(key, n) < n

    def test_n1_layout_is_the_plain_single_store(self, tmp_path):
        store = open_job_store(tmp_path, shards=1)
        assert isinstance(store, JobStore)
        assert (tmp_path / "jobs.sqlite3").exists()
        # no manifest, no journals — byte-identical to the old layout
        assert not (tmp_path / "shards.json").exists()
        assert not list(tmp_path.glob("*.journal.jsonl"))

    def test_sharded_layout_and_manifest(self, tmp_path):
        store = open_job_store(tmp_path, shards=3)
        assert isinstance(store, ShardedJobStore)
        for i in range(3):
            assert shard_db_path(tmp_path, i, 3).exists()
        manifest = json.loads((tmp_path / "shards.json").read_text())
        assert manifest["n_shards"] == 3

    def test_manifest_is_discovered_on_reopen(self, tmp_path):
        open_job_store(tmp_path, shards=3)
        reopened = open_job_store(tmp_path)  # no count given
        assert isinstance(reopened, ShardedJobStore)
        assert reopened.n_shards == 3

    def test_resharding_is_refused(self, tmp_path):
        open_job_store(tmp_path, shards=3)
        with pytest.raises(ServiceError, match="reshard"):
            open_job_store(tmp_path, shards=5)
        assert resolve_n_shards(tmp_path) == 3

    def test_sharding_an_unsharded_directory_is_refused(self, tmp_path):
        open_job_store(tmp_path, shards=1)
        with pytest.raises(ServiceError, match="unsharded"):
            open_job_store(tmp_path, shards=4)


class TestRouting:
    def test_submit_lands_on_home_shard_with_tagged_id(
        self, store, spec, tmp_path
    ):
        key = key_for_shard(2, 3)
        job = store.submit(spec, key, now=100.0)
        assert job.id.startswith("job-s02-")
        with sqlite3.connect(shard_db_path(tmp_path, 2, 3)) as conn:
            rows = conn.execute("SELECT id FROM jobs").fetchall()
        assert rows == [(job.id,)]
        assert store.get(job.id).artifact_key == key

    def test_untagged_legacy_id_routes_by_probing(self, store, spec):
        job = store.submit(spec, key_for_shard(1, 3), now=100.0)
        # simulate a legacy row: rewrite the id to an untagged form
        legacy = "job-0123456789ab"
        with sqlite3.connect(store._paths[1]) as conn:
            conn.execute(
                "UPDATE jobs SET id = ? WHERE id = ?", (legacy, job.id)
            )
            conn.commit()
        assert store.get(legacy).artifact_key == job.artifact_key

    def test_dedup_twin_keys_meet_on_one_shard(self, store, spec):
        key = key_for_shard(0, 3)
        first = store.submit(spec, key, now=100.0)
        second = store.submit(spec, key, now=101.0)
        assert shard_for_key(key, 3) == 0
        live = store.find_by_key(key, states=("queued", "running", "done"))
        assert {job.id for job in live} == {first.id, second.id}
        # the idempotent-submit probe sees the first twin, oldest first
        assert live[0].id == first.id


class TestCrossShardScheduling:
    def test_two_workers_claim_across_shards(self, store, spec):
        jobs = [
            store.submit(spec, key_for_shard(i % 3, 3, salt=i // 3),
                         now=100.0 + i)
            for i in range(6)
        ]
        claimed = {"w0": [], "w1": []}
        for step in range(6):
            worker = f"w{step % 2}"
            job = store.claim(worker, lease_seconds=30.0, now=200.0)
            assert job is not None
            claimed[worker].append(job)
        assert store.claim("w0", 30.0, now=200.0) is None
        got = {job.id for jobs_ in claimed.values() for job in jobs_}
        assert got == {job.id for job in jobs}
        # both workers really ran, and the registry merges across shards
        assert len(claimed["w0"]) == 3 and len(claimed["w1"]) == 3
        workers = {w.id: w for w in store.list_workers()}
        assert set(workers) == {"w0", "w1"}

    def test_counts_and_pending_aggregate(self, store, spec):
        for i in range(3):
            store.submit(spec, key_for_shard(i, 3), now=100.0 + i)
        assert store.counts()["queued"] == 3
        assert store.pending() == 3


class TestCircuitBreaker:
    def make_store(self, tmp_path, **kwargs):
        kwargs.setdefault("trip_threshold", 2)
        kwargs.setdefault("probe_interval_seconds", 0.0)
        return ShardedJobStore(tmp_path, 3, **kwargs)

    def seam(self, site, index, chaos_seed):
        return FaultPlan(
            [FaultRule(site=site, probability=1.0, match=f"{index}:")],
            seed=chaos_seed,
        )

    def test_repeated_operational_errors_trip_the_breaker(
        self, tmp_path, spec, chaos_seed
    ):
        store = self.make_store(tmp_path)
        key = key_for_shard(1, 3)
        with fault_injection(self.seam("shard.unavailable", 1,
                                       chaos_seed)):
            for _ in range(2):
                with pytest.raises(ShardUnavailableError):
                    store.submit(spec, key, now=100.0)
        states = {s["index"]: s["state"] for s in store.shard_states()}
        assert states == {0: "healthy", 1: "degraded", 2: "healthy"}
        assert store.degraded_shards() == [1]

    def test_corruption_trips_immediately(
        self, tmp_path, spec, chaos_seed
    ):
        store = self.make_store(tmp_path, trip_threshold=3)
        with fault_injection(self.seam("shard.corrupt", 2, chaos_seed)):
            with pytest.raises(ShardUnavailableError):
                store.submit(spec, key_for_shard(2, 3), now=100.0)
        assert store.degraded_shards() == [2]

    def test_degraded_submit_carries_retry_after(
        self, tmp_path, spec, chaos_seed
    ):
        store = self.make_store(tmp_path, retry_after_seconds=7.0,
                                probe_interval_seconds=3600.0)
        with fault_injection(self.seam("shard.unavailable", 1,
                                       chaos_seed)):
            for _ in range(2):
                with pytest.raises(ShardUnavailableError):
                    store.submit(spec, key_for_shard(1, 3), now=100.0)
        # circuit open, seam gone: still scoped-unavailable (no probe
        # slot for an hour), and the envelope names shard + retry hint
        with pytest.raises(ShardUnavailableError) as info:
            store.submit(spec, key_for_shard(1, 3), now=100.0)
        assert info.value.shard == 1
        assert info.value.retry_after == pytest.approx(7.0)

    def test_claims_continue_on_surviving_shards(
        self, tmp_path, spec, chaos_seed
    ):
        store = self.make_store(tmp_path, probe_interval_seconds=3600.0)
        done = [
            store.submit(spec, key_for_shard(i, 3), now=100.0 + i)
            for i in (0, 2)
        ]
        with fault_injection(self.seam("shard.unavailable", 1,
                                       chaos_seed)):
            for _ in range(2):
                with pytest.raises(ShardUnavailableError):
                    store.submit(spec, key_for_shard(1, 3), now=100.0)
        claimed = {
            store.claim("w", 30.0, now=200.0).id for _ in range(2)
        }
        assert claimed == {job.id for job in done}
        assert store.claim("w", 30.0, now=200.0) is None

    def test_all_shards_down_raises_operational_error(
        self, tmp_path, spec, chaos_seed
    ):
        store = self.make_store(tmp_path, probe_interval_seconds=3600.0)
        plan = FaultPlan(
            [FaultRule(site="shard.unavailable", probability=1.0)],
            seed=chaos_seed,
        )
        with fault_injection(plan):
            for index in range(3):
                for _ in range(2):
                    with pytest.raises(ShardUnavailableError):
                        store.submit(
                            spec, key_for_shard(index, 3), now=100.0
                        )
        with pytest.raises(sqlite3.OperationalError, match="all 3"):
            store.claim("w", 30.0, now=200.0)

    def test_half_open_probe_recovers_the_shard(
        self, tmp_path, spec, chaos_seed
    ):
        store = self.make_store(tmp_path)  # probe interval 0: eager
        key = key_for_shard(1, 3)
        with fault_injection(self.seam("shard.unavailable", 1,
                                       chaos_seed)):
            for _ in range(2):
                with pytest.raises(ShardUnavailableError):
                    store.submit(spec, key, now=100.0)
        assert store.degraded_shards() == [1]
        # seam disarmed: the next call is the half-open probe and
        # succeeds, closing the circuit
        job = store.submit(spec, key, now=101.0)
        assert job.id.startswith("job-s01-")
        assert store.degraded_shards() == []


class TestPaginationWhileDegraded:
    def test_pages_stay_stable_when_a_shard_trips(
        self, tmp_path, spec, chaos_seed
    ):
        store = ShardedJobStore(tmp_path, 3, trip_threshold=1,
                                probe_interval_seconds=3600.0)
        jobs = [
            store.submit(spec, key_for_shard(i % 3, 3, salt=i // 3),
                         now=100.0 + i)
            for i in range(9)
        ]
        page1, cursor = store.page_jobs(limit=4)
        assert [j.id for j in page1] == [j.id for j in jobs[:4]]
        assert cursor is not None

        plan = FaultPlan(
            [FaultRule(site="shard.unavailable", probability=1.0,
                       match="1:")],
            seed=chaos_seed,
        )
        with fault_injection(plan):
            with pytest.raises(ShardUnavailableError):
                store.submit(spec, key_for_shard(1, 3, salt=50),
                             now=200.0)
        assert store.degraded_shards() == [1]

        # the cursor survives the trip: no duplicates, no re-ordering —
        # exactly the survivors' jobs after the anchor, oldest first
        rest = []
        while cursor is not None:
            page, cursor = store.page_jobs(limit=4, cursor=cursor)
            rest.extend(page)
        expected = [
            job.id for job in jobs[4:] if not job.id.startswith("job-s01-")
        ]
        assert [job.id for job in rest] == expected
        seen = [job.id for job in page1] + [job.id for job in rest]
        assert len(seen) == len(set(seen))

    def test_unknown_cursor_is_a_service_error(self, store, spec):
        store.submit(spec, key_for_shard(0, 3), now=100.0)
        with pytest.raises(ServiceError, match="cursor"):
            store.page_jobs(limit=1, cursor="job-nonexistent0")


OLD_SCHEMA = """
CREATE TABLE jobs (
    id              TEXT PRIMARY KEY,
    artifact_key    TEXT NOT NULL,
    spec            TEXT NOT NULL,
    state           TEXT NOT NULL CHECK (state IN
                        ('queued', 'running', 'done', 'failed')),
    attempts        INTEGER NOT NULL DEFAULT 0,
    max_attempts    INTEGER NOT NULL,
    not_before      REAL NOT NULL DEFAULT 0,
    lease_expires   REAL,
    worker          TEXT,
    cache_hit       INTEGER NOT NULL DEFAULT 0,
    error           TEXT,
    created_at      REAL NOT NULL,
    started_at      REAL,
    finished_at     REAL,
    runtime_seconds REAL,
    med             REAL
);
CREATE INDEX idx_jobs_state ON jobs (state, not_before);
CREATE INDEX idx_jobs_key ON jobs (artifact_key);
"""


class TestShardedMigration:
    def test_quarantine_migration_runs_per_shard(self, tmp_path, spec):
        # lay out the sharded directory, then regress shard 1 to the
        # pre-quarantine schema with one live row in it
        open_job_store(tmp_path, shards=3)
        path = shard_db_path(tmp_path, 1, 3)
        path.unlink()
        old_id = "job-s01-00000000dead"
        with sqlite3.connect(path) as conn:
            conn.executescript(OLD_SCHEMA)
            conn.execute(
                "INSERT INTO jobs (id, artifact_key, spec, state, "
                "max_attempts, created_at) VALUES (?, ?, ?, 'queued', "
                "3, 0)",
                (old_id, key_for_shard(1, 3),
                 json.dumps(spec.to_wire(), sort_keys=True)),
            )
            conn.commit()

        store = open_job_store(tmp_path)  # eager open migrates shard 1
        assert store.degraded_shards() == []
        assert store.get(old_id).state == "queued"
        # the migrated shard admits the new terminal state
        scheduler = Scheduler(
            store,
            SchedulerPolicy(retry_backoff_seconds=0.01,
                            quarantine_after=1),
        )
        claimed = scheduler.claim("w0", now=1.0)
        assert claimed.id == old_id
        assert scheduler.record_failure(
            claimed, error="boom", now=1.0
        ) == "quarantined"
        assert store.get(old_id).state == "quarantined"


class TestJournalScrubRebuild:
    def test_submit_and_terminal_ops_are_journaled(
        self, store, spec, tmp_path
    ):
        key = key_for_shard(2, 3)
        job = store.submit(spec, key, now=100.0)
        store.claim("w", 30.0, now=101.0)
        store.complete(job.id, med=0.5, runtime_seconds=1.0, now=102.0)
        records = list(read_journal(shard_journal_path(tmp_path, 2)))
        assert [r["op"] for r in records] == ["submit", "done"]
        assert records[0]["id"] == job.id
        assert records[0]["artifact_key"] == key
        assert records[1]["id"] == job.id

    def test_scrub_clean_store(self, store, spec, tmp_path):
        store.submit(spec, key_for_shard(0, 3), now=100.0)
        report = scrub_store(tmp_path)
        assert report["ok"]
        assert report["n_shards"] == 3
        assert [s["jobs"] for s in report["shards"]] == [1, 0, 0]

    def test_scrub_flags_garbage_shard(self, store, spec, tmp_path):
        store.submit(spec, key_for_shard(1, 3), now=100.0)
        del store
        path = shard_db_path(tmp_path, 1, 3)
        # take the WAL sidecars with the main file, otherwise SQLite's
        # own WAL recovery quietly undoes the simulated disk loss
        for suffix in ("-wal", "-shm"):
            sidecar = path.with_name(path.name + suffix)
            if sidecar.exists():
                sidecar.unlink()
        path.write_bytes(b"not a database")
        report = scrub_store(tmp_path)
        assert not report["ok"]
        bad = report["shards"][1]
        assert not bad["ok"]
        assert any("integrity" in f for f in bad["findings"])
        assert report["shards"][0]["ok"] and report["shards"][2]["ok"]

    def test_scrub_flags_journaled_job_missing_from_db(
        self, store, spec, tmp_path
    ):
        job = store.submit(spec, key_for_shard(0, 3), now=100.0)
        del store
        path = shard_db_path(tmp_path, 0, 3)
        with sqlite3.connect(path) as conn:
            conn.execute("DELETE FROM jobs WHERE id = ?", (job.id,))
            conn.commit()
        report = scrub_store(tmp_path)
        assert not report["ok"]
        assert any(
            job.id in finding
            for finding in report["shards"][0]["findings"]
        )

    def test_rebuild_restores_terminal_and_requeues_live(
        self, store, spec, tmp_path
    ):
        key_done = key_for_shard(1, 3)
        key_live = key_for_shard(1, 3, salt=1)
        done = store.submit(spec, key_done, now=100.0)
        live = store.submit(spec, key_live, now=101.0)
        claimed = store.claim("w", 30.0, now=102.0)
        assert claimed.id == done.id
        store.complete(done.id, med=0.25, runtime_seconds=1.0, now=103.0)
        del store

        path = shard_db_path(tmp_path, 1, 3)
        path.write_bytes(b"scribbled over by a failing disk")
        report = rebuild_shard(tmp_path, 1)
        assert report["backed_up"] == str(path) + ".corrupt"
        assert report["terminal_from_journal"] == 1
        assert report["requeued"] == 1
        assert report["restored"] == 2

        rebuilt = open_job_store(tmp_path)
        restored_done = rebuilt.get(done.id)
        assert restored_done.state == "done"
        assert restored_done.med == pytest.approx(0.25)
        assert rebuilt.get(live.id).state == "queued"
        # the rebuilt database is structurally sound — the only scrub
        # finding left is the done job's artifact, which this
        # store-level test never wrote
        after = scrub_store(tmp_path)["shards"][1]
        assert after["jobs"] == 2
        assert all("artifact" in f for f in after["findings"])

    def test_rebuild_refuses_single_store(self, tmp_path):
        open_job_store(tmp_path, shards=1)
        with pytest.raises(ServiceError):
            rebuild_shard(tmp_path, 0)

    def test_reset_shard_reopens_after_offline_repair(
        self, tmp_path, spec, chaos_seed
    ):
        store = ShardedJobStore(tmp_path, 3, trip_threshold=1,
                                probe_interval_seconds=3600.0)
        plan = FaultPlan(
            [FaultRule(site="shard.corrupt", probability=1.0,
                       match="0:")],
            seed=chaos_seed,
        )
        with fault_injection(plan):
            with pytest.raises(ShardUnavailableError):
                store.submit(spec, key_for_shard(0, 3), now=100.0)
        assert store.degraded_shards() == [0]
        store.reset_shard(0)
        assert store.degraded_shards() == []
        assert store.submit(
            spec, key_for_shard(0, 3), now=101.0
        ).id.startswith("job-s00-")
