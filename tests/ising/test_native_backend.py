"""Tests for the compiled ``native32`` tile backend.

The native kernel is a perf backend under the float32 tolerance
contract: its trajectories must track the ``numpy32`` kernel within
short-horizon tolerance, its ``run_tile`` window pass must be
bit-identical to its own per-step loop (tiling is a scheduling choice,
never an arithmetic one), and its per-problem ``c0`` vector path must
be bit-identical to running each problem alone.  When the engine
cannot be built the factory must degrade to numpy32 arithmetic under
the ``native32`` name with a single warning.
"""

import numpy as np
import pytest

from repro.ising.kernels import (
    NATIVE_PROBED_AVAILABLE,
    backend_info,
    make_kernel,
)
from repro.ising.kernels import native as native_mod
from repro.ising.kernels.native import (
    NativeBipartiteKernel,
    _make_native,
    native_engine,
)
from repro.ising.schedules import LinearPump


needs_engine = pytest.mark.skipif(
    not (NATIVE_PROBED_AVAILABLE and native_engine() is not None),
    reason="native engine not buildable in this environment",
)


@pytest.fixture
def rng():
    return np.random.default_rng(7)


def _run_steps(kernel, x, y, n_steps, dt, a0, c0, pump):
    for iteration in range(1, n_steps + 1):
        kernel.step(x, y, pump(iteration), dt, a0, c0)


class TestMetadata:
    def test_registered_with_metadata(self):
        info = backend_info("native32")
        assert info.dtype == "float32"
        assert info.device == "cpu"
        assert info.supports_batch
        # availability matches the import-time probe
        assert info.available == NATIVE_PROBED_AVAILABLE

    @needs_engine
    def test_make_kernel_builds_native(self, rng):
        kernel = make_kernel(rng.normal(size=(4, 6)), backend="native32")
        assert isinstance(kernel, NativeBipartiteKernel)
        assert kernel.name == "native32"
        assert kernel.dtype == np.float32


@needs_engine
class TestNumerics:
    def test_short_trajectory_close_to_numpy32(self, rng):
        """Same tolerance class as numpy32: close over a short horizon."""
        w = rng.normal(size=(6, 10))
        k32 = make_kernel(w, backend="numpy32")
        knat = make_kernel(w, backend="native32")
        n = k32.n_spins
        x0 = rng.uniform(-0.1, 0.1, (2, n))
        y0 = rng.uniform(-0.1, 0.1, (2, n))
        pump = LinearPump(1.0, 30)
        x32, y32 = k32.prepare_state(x0.copy(), y0.copy())
        xn, yn = knat.prepare_state(x0.copy(), y0.copy())
        _run_steps(k32, x32, y32, 20, 0.25, 1.0, 0.3, pump)
        _run_steps(knat, xn, yn, 20, 0.25, 1.0, 0.3, pump)
        assert np.allclose(xn, x32, atol=1e-4)
        assert np.allclose(yn, y32, atol=1e-4)

    def test_run_tile_bit_identical_to_step_loop(self, rng):
        """Tiling must only change scheduling, never arithmetic."""
        w = rng.normal(size=(3, 5, 8))  # stacked (P, r, c)
        kernel = make_kernel(w, backend="native32")
        n = kernel.n_spins
        x0 = rng.uniform(-0.1, 0.1, (3, 2, n))
        y0 = rng.uniform(-0.1, 0.1, (3, 2, n))
        pump = LinearPump(1.0, 40)
        a_ts = [pump(i) for i in range(1, 31)]

        xt, yt = kernel.prepare_state(x0.copy(), y0.copy())
        kernel.run_tile(xt, yt, a_ts, 0.25, 1.0, 0.3)

        xs, ys = kernel.prepare_state(x0.copy(), y0.copy())
        for a_t in a_ts:
            kernel.step(xs, ys, a_t, 0.25, 1.0, 0.3)

        assert np.array_equal(xt, xs)
        assert np.array_equal(yt, ys)

    def test_vector_c0_bit_identical_to_solo_runs(self, rng):
        """A stacked run with per-problem c0 equals each solo run."""
        stack = rng.normal(size=(3, 4, 7))
        c0s = np.array([0.2, 0.5, 0.9], np.float32)
        n = 2 * 4 + 7
        x0 = rng.uniform(-0.1, 0.1, (3, 2, n))
        y0 = rng.uniform(-0.1, 0.1, (3, 2, n))
        pump = LinearPump(1.0, 25)
        a_ts = [pump(i) for i in range(1, 21)]

        packed = make_kernel(stack, backend="native32")
        xp, yp = packed.prepare_state(x0.copy(), y0.copy())
        packed.run_tile(xp, yp, a_ts, 0.25, 1.0, c0s)

        for p in range(3):
            solo = make_kernel(stack[p], backend="native32")
            xs, ys = solo.prepare_state(x0[p].copy(), y0[p].copy())
            solo.run_tile(xs, ys, a_ts, 0.25, 1.0, float(c0s[p]))
            assert np.array_equal(xp[p], xs)
            assert np.array_equal(yp[p], ys)

    def test_energy_close_to_float64_reference(self, rng):
        stack = rng.normal(size=(2, 3, 5))
        kernel = make_kernel(stack, backend="native32")
        ref = make_kernel(stack, backend="numpy64")
        spins = rng.choice([-1.0, 1.0], size=(2, 2, kernel.n_spins))
        assert np.allclose(
            np.asarray(kernel.energy(spins), dtype=float),
            ref.energy(spins),
            rtol=1e-5,
        )


class TestFallback:
    def test_build_failure_degrades_to_numpy32(self, monkeypatch, rng,
                                               caplog):
        monkeypatch.setattr(native_mod, "native_engine", lambda: None)
        monkeypatch.setattr(native_mod, "_FALLBACK_WARNED", False)
        with caplog.at_level("WARNING", logger="repro.ising.kernels"):
            kernel = _make_native(rng.normal(size=(3, 5)))
        assert not isinstance(kernel, NativeBipartiteKernel)
        assert kernel.name == "native32"
        assert kernel.dtype == np.float32
        assert any("native32" in rec.getMessage()
                   for rec in caplog.records)
        # ... and warns only once per process
        caplog.clear()
        with caplog.at_level("WARNING", logger="repro.ising.kernels"):
            _make_native(rng.normal(size=(3, 5)))
        assert not caplog.records
