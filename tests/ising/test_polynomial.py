"""Tests for :mod:`repro.ising.polynomial`."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DimensionError, SolverError
from repro.ising.polynomial import PolynomialIsingModel
from repro.ising.solvers import (
    BallisticSBSolver,
    BruteForceSolver,
    DiscreteSBSolver,
    SimulatedAnnealingSolver,
)
from repro.ising.stop_criteria import FixedIterations


def random_polynomial(rng, n=5, max_order=3, n_terms=8):
    terms = {}
    for _ in range(n_terms):
        order = int(rng.integers(1, max_order + 1))
        idx = tuple(
            sorted(rng.choice(n, size=order, replace=False).tolist())
        )
        terms[idx] = terms.get(idx, 0.0) + float(rng.normal())
    return PolynomialIsingModel(n, terms, offset=float(rng.normal()))


class TestConstruction:
    def test_constant_folds_into_offset(self):
        model = PolynomialIsingModel(2, {(): 2.0}, offset=0.5)
        assert np.isclose(model.offset, 2.5)
        assert model.order == 0

    def test_duplicate_tuples_accumulate(self):
        model = PolynomialIsingModel(3, {(0, 1): 1.0, (1, 0): 2.0})
        assert np.isclose(model.coefficient((0, 1)), 3.0)

    def test_repeated_index_rejected(self):
        with pytest.raises(DimensionError):
            PolynomialIsingModel(3, {(1, 1): 1.0})

    def test_out_of_range_rejected(self):
        with pytest.raises(DimensionError):
            PolynomialIsingModel(3, {(0, 5): 1.0})

    def test_order_and_term_counts(self, rng):
        model = PolynomialIsingModel(
            4, {(0,): 1.0, (1, 2): 1.0, (0, 1, 3): 1.0}
        )
        assert model.order == 3
        assert model.n_terms == 3

    def test_zero_coefficients_dropped(self):
        model = PolynomialIsingModel(3, {(0, 1): 0.0, (2,): 1.0})
        assert model.n_terms == 1
        assert model.coefficient((0, 1)) == 0.0


class TestEnergyAndFields:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_fields_are_negative_gradient(self, seed):
        rng = np.random.default_rng(seed)
        model = random_polynomial(rng)
        x = rng.normal(size=model.n_spins)
        fields = model.fields(x)
        eps = 1e-6
        for i in range(model.n_spins):
            plus, minus = x.copy(), x.copy()
            plus[i] += eps
            minus[i] -= eps
            numeric = -(model.energy(plus) - model.energy(minus)) / (2 * eps)
            assert np.isclose(fields[i], numeric, atol=1e-4)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_quadratic_agrees_with_dense(self, seed):
        """order <= 2 polynomial == the DenseIsingModel it lowers to."""
        rng = np.random.default_rng(seed)
        model = random_polynomial(rng, max_order=2)
        dense = model.to_dense()
        for _ in range(6):
            s = rng.choice([-1.0, 1.0], size=model.n_spins)
            assert np.isclose(model.objective(s), dense.objective(s))
            assert np.allclose(model.fields(s), dense.fields(s))

    def test_cubic_cannot_densify(self, rng):
        model = PolynomialIsingModel(4, {(0, 1, 2): 1.0})
        with pytest.raises(SolverError):
            model.to_dense()

    def test_batch_shapes(self, rng):
        model = random_polynomial(rng)
        batch = rng.normal(size=(4, model.n_spins))
        assert model.energy(batch).shape == (4,)
        assert model.fields(batch).shape == (4, model.n_spins)

    def test_wrong_width_rejected(self, rng):
        model = random_polynomial(rng)
        with pytest.raises(DimensionError):
            model.energy(np.ones(model.n_spins + 1))
        with pytest.raises(DimensionError):
            model.fields(np.ones(model.n_spins + 1))


class TestSolversOnCubicModels:
    def test_brute_force_works_without_densify(self, rng):
        model = random_polynomial(rng, n=6, max_order=3)
        result = BruteForceSolver().solve(model)
        # verify by enumeration through the model itself
        best = min(
            float(model.energy(
                2.0 * np.array([(i >> k) & 1 for k in range(6)]) - 1
            ))
            for i in range(64)
        )
        assert np.isclose(result.energy, best)

    @pytest.mark.parametrize(
        "make",
        [
            lambda: BallisticSBSolver(stop=FixedIterations(2000),
                                      n_replicas=8),
            lambda: DiscreteSBSolver(stop=FixedIterations(2000),
                                     n_replicas=8),
        ],
    )
    def test_higher_order_sb_near_optimal(self, make, rng):
        """Kanao-Goto higher-order SB: bSB/dSB run on polynomial fields."""
        model = random_polynomial(rng, n=8, max_order=3, n_terms=12)
        exact = BruteForceSolver().solve(model)
        result = make().solve(model, np.random.default_rng(0))
        span = abs(exact.energy) + 1.0
        assert result.energy <= exact.energy + 0.1 * span

    def test_sa_rejects_cubic(self, rng):
        model = PolynomialIsingModel(4, {(0, 1, 2): 1.0})
        with pytest.raises(SolverError):
            SimulatedAnnealingSolver(n_sweeps=5).solve(model, rng)
