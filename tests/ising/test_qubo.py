"""Unit tests for :mod:`repro.ising.qubo`."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DimensionError
from repro.ising.model import DenseIsingModel
from repro.ising.qubo import QuboModel, ising_to_qubo, qubo_to_ising


def random_qubo(rng, n=5):
    return QuboModel(
        rng.normal(size=(n, n)), rng.normal(size=n), float(rng.normal())
    )


def random_ising(rng, n=5):
    j = rng.normal(size=(n, n))
    j = (j + j.T) / 2
    np.fill_diagonal(j, 0.0)
    return DenseIsingModel(rng.normal(size=n), j, float(rng.normal()))


class TestQuboModel:
    def test_diagonal_folds_into_linear(self):
        q = QuboModel(np.diag([2.0, 3.0]), np.zeros(2))
        # x^T diag(2,3) x = 2 x1 + 3 x2 for binary x
        assert np.isclose(q.value(np.array([1, 1])), 5.0)
        assert np.allclose(np.diag(q.quadratic), 0.0)

    def test_lower_triangle_merged(self):
        mat = np.array([[0.0, 1.0], [2.0, 0.0]])
        q = QuboModel(mat, np.zeros(2))
        assert np.isclose(q.value(np.array([1, 1])), 3.0)

    def test_shape_validation(self):
        with pytest.raises(DimensionError):
            QuboModel(np.zeros((2, 3)), np.zeros(2))
        with pytest.raises(DimensionError):
            QuboModel(np.zeros((2, 2)), np.zeros(3))

    def test_batch_value(self, rng):
        q = random_qubo(rng)
        batch = rng.integers(0, 2, size=(7, 5))
        values = q.value(batch)
        for i in range(7):
            assert np.isclose(values[i], q.value(batch[i]))

    def test_wrong_width_rejected(self, rng):
        q = random_qubo(rng)
        with pytest.raises(DimensionError):
            q.value(np.zeros(4))


class TestConversions:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_qubo_to_ising_preserves_objective(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 7))
        qubo = random_qubo(rng, n)
        ising = qubo_to_ising(qubo)
        for _ in range(8):
            x = rng.integers(0, 2, n)
            spins = 2.0 * x - 1.0
            assert np.isclose(qubo.value(x), ising.objective(spins))

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_ising_to_qubo_preserves_objective(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 7))
        ising = random_ising(rng, n)
        qubo = ising_to_qubo(ising)
        for _ in range(8):
            spins = rng.choice([-1.0, 1.0], size=n)
            x = (spins + 1) / 2
            assert np.isclose(qubo.value(x), ising.objective(spins))

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_double_round_trip(self, seed):
        rng = np.random.default_rng(seed)
        qubo = random_qubo(rng, 4)
        back = ising_to_qubo(qubo_to_ising(qubo))
        for _ in range(8):
            x = rng.integers(0, 2, 4)
            assert np.isclose(qubo.value(x), back.value(x))

    def test_ground_state_preserved(self, rng):
        """The argmin is preserved, not just values (sanity check)."""
        qubo = random_qubo(rng, 4)
        ising = qubo_to_ising(qubo)
        best_x = min(
            (np.array([(i >> k) & 1 for k in range(4)]) for i in range(16)),
            key=qubo.value,
        )
        best_s = min(
            (
                2.0 * np.array([(i >> k) & 1 for k in range(4)]) - 1
                for i in range(16)
            ),
            key=lambda s: float(ising.objective(s)),
        )
        assert np.array_equal((best_s + 1) / 2, best_x)

    def test_empty_qubo_rejected(self):
        # QuboModel itself rejects empty linear via shape rules upstream
        with pytest.raises(Exception):
            qubo_to_ising(QuboModel(np.zeros((0, 0)), np.zeros(0)))
