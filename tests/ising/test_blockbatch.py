"""Property tests for the :class:`~repro.ising.kernels.BlockBatch`
planner: packed advancement must match per-member advancement.

``stack`` packing of float32 members performs the same per-slice IEEE
operations as solo stepping (broadcasted matmul + vector-``c0``
multiply), so stacked numpy32 members are checked *bit-identically*
against their solo runs.  ``pad`` packing changes float32 summation
order (zero summands enter the mat-vecs), so padded members are
checked under the tolerance contract plus exact sign agreement over
the tested horizon.  Float64 members must always land in solo blocks.
"""

import numpy as np
import pytest

from repro.ising.kernels import Block, BlockBatch, BlockMember, make_kernel
from repro.ising.schedules import LinearPump


@pytest.fixture
def rng():
    return np.random.default_rng(41)


def _member(rng, backend, p, r, c, reps=2, c0=0.3):
    """One prepared member plus pristine copies of its start state."""
    w = rng.normal(size=(p, r, c))
    kernel = make_kernel(w, backend=backend)
    n = kernel.n_spins
    x = rng.uniform(-0.1, 0.1, (p, reps, n))
    y = rng.uniform(-0.1, 0.1, (p, reps, n))
    x, y = kernel.prepare_state(x, y)
    return BlockMember(kernel, w, x.copy(), y.copy(), c0), (x, y)


def _solo_run(member, start, a_ts, dt, a0):
    """Advance a pristine copy of ``member`` alone; return (x, y)."""
    x, y = start[0].copy(), start[1].copy()
    kernel = member.kernel
    run_tile = getattr(kernel, "run_tile", None)
    if run_tile is not None:
        run_tile(x, y, a_ts, dt, a0, member.c0)
    else:
        for a_t in a_ts:
            kernel.step(x, y, a_t, dt, a0, member.c0)
    return x, y


def _advance_batch(batch, a_ts, dt, a0):
    batch.advance(a_ts, dt, a0)
    batch.pull()


A_TS = [LinearPump(1.0, 30)(i) for i in range(1, 21)]
DT, A0 = 0.25, 1.0


class TestStackPacking:
    @pytest.mark.parametrize("n_members", [1, 2, 16])
    def test_same_shape_members_match_solo_bitwise(self, rng, n_members):
        members, starts = zip(*[
            _member(rng, "numpy32", p=2, r=4, c=6, c0=0.2 + 0.1 * i)
            for i in range(n_members)
        ])
        batch = BlockBatch(list(members), strategy="auto")
        kinds = batch.describe()["block_kinds"]
        if n_members > 1:
            assert kinds == {"stack": 1}
        _advance_batch(batch, A_TS, DT, A0)
        for member, start in zip(members, starts):
            xs, ys = _solo_run(member, start, A_TS, DT, A0)
            assert np.array_equal(np.asarray(member.x), xs)
            assert np.array_equal(np.asarray(member.y), ys)

    def test_ragged_shape_mix_groups_by_shape(self, rng):
        """Mixed (r, c) shapes: same-shape members stack, the rest go
        solo, and every member still matches its solo run."""
        shapes = [(4, 6), (4, 6), (3, 9), (4, 6), (3, 9), (5, 5)]
        members, starts = zip(*[
            _member(rng, "numpy32", p=1 + (i % 2), r=r, c=c)
            for i, (r, c) in enumerate(shapes)
        ])
        batch = BlockBatch(list(members), strategy="auto")
        kinds = batch.describe()["block_kinds"]
        assert kinds == {"stack": 2, "solo": 1}
        assert batch.describe()["n_problems"] == sum(
            m.n_problems for m in members
        )
        _advance_batch(batch, A_TS, DT, A0)
        for member, start in zip(members, starts):
            xs, ys = _solo_run(member, start, A_TS, DT, A0)
            assert np.array_equal(np.asarray(member.x), xs)
            assert np.array_equal(np.asarray(member.y), ys)

    def test_mismatched_replicas_never_stack(self, rng):
        m1, _ = _member(rng, "numpy32", p=1, r=4, c=6, reps=2)
        m2, _ = _member(rng, "numpy32", p=1, r=4, c=6, reps=3)
        batch = BlockBatch([m1, m2], strategy="auto")
        assert batch.describe()["block_kinds"] == {"solo": 2}


class TestFloat64Policy:
    def test_float64_members_always_solo(self, rng):
        members = [
            _member(rng, "numpy64", p=2, r=4, c=6)[0] for _ in range(3)
        ]
        for strategy in ("auto", "stack", "pad"):
            batch = BlockBatch(members, strategy=strategy)
            assert all(
                isinstance(b, Block) and b.kind == "solo"
                for b in batch.blocks
            )

    def test_float64_solo_blocks_are_bit_identical(self, rng):
        members, starts = zip(*[
            _member(rng, "numpy64", p=2, r=4, c=6, c0=0.2 + 0.1 * i)
            for i in range(3)
        ])
        batch = BlockBatch(list(members), strategy="auto")
        _advance_batch(batch, A_TS, DT, A0)
        for member, start in zip(members, starts):
            xs, ys = _solo_run(member, start, A_TS, DT, A0)
            assert np.array_equal(member.x, xs)
            assert np.array_equal(member.y, ys)

    def test_mixed_dtype_batch(self, rng):
        m64, s64 = _member(rng, "numpy64", p=1, r=4, c=6)
        m32a, s32a = _member(rng, "numpy32", p=1, r=4, c=6)
        m32b, s32b = _member(rng, "numpy32", p=1, r=4, c=6)
        batch = BlockBatch([m64, m32a, m32b], strategy="auto")
        assert batch.describe()["block_kinds"] == {"solo": 1, "stack": 1}
        _advance_batch(batch, A_TS, DT, A0)
        for member, start in ((m64, s64), (m32a, s32a), (m32b, s32b)):
            xs, ys = _solo_run(member, start, A_TS, DT, A0)
            assert np.array_equal(np.asarray(member.x), xs)
            assert np.array_equal(np.asarray(member.y), ys)


class TestPadPacking:
    def test_heterogeneous_shapes_pad_into_one_block(self, rng):
        members, starts = zip(*[
            _member(rng, "numpy32", p=1, r=r, c=c)
            for r, c in ((4, 6), (3, 9), (5, 5))
        ])
        batch = BlockBatch(list(members), strategy="pad")
        assert batch.describe()["block_kinds"] == {"pad": 1}
        _advance_batch(batch, A_TS, DT, A0)
        for member, start in zip(members, starts):
            xs, ys = _solo_run(member, start, A_TS, DT, A0)
            # tolerance contract: padding reorders float32 summation
            assert np.allclose(member.x, xs, atol=1e-4)
            assert np.allclose(member.y, ys, atol=1e-4)
            assert np.array_equal(
                np.sign(member.x), np.sign(xs)
            )

    def test_pad_push_pull_round_trip(self, rng):
        """Host-side edits (interventions) survive push/pull."""
        members = [
            _member(rng, "numpy32", p=1, r=r, c=c)[0]
            for r, c in ((4, 6), (3, 9))
        ]
        batch = BlockBatch(members, strategy="pad")
        batch.pull()
        edited = [np.asarray(m.x).copy() for m in members]
        for member, snapshot in zip(members, edited):
            member.x[...] = snapshot * -1.0
        batch.push()
        batch.pull()
        for member, snapshot in zip(members, edited):
            assert np.array_equal(np.asarray(member.x), -snapshot)


class TestValidation:
    def test_unknown_strategy_rejected(self, rng):
        member, _ = _member(rng, "numpy32", p=1, r=3, c=4)
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="strategy"):
            BlockBatch([member], strategy="turbo")

    def test_empty_batch_rejected(self):
        from repro.errors import DimensionError

        with pytest.raises(DimensionError):
            BlockBatch([])

    def test_member_weights_must_be_stacked(self, rng):
        from repro.errors import DimensionError

        w = rng.normal(size=(3, 4))
        kernel = make_kernel(w, backend="numpy32")
        with pytest.raises(DimensionError):
            BlockMember(kernel, w, None, None, 0.3)
