"""Unit tests for :mod:`repro.ising.kernels`.

The load-bearing guarantee is the first class: the ``numpy64`` backend
must be *bit-for-bit* identical to the historical inline NumPy loop it
replaced (frozen here as a reference implementation), so that the
kernel refactor is invisible to every seeded experiment.
"""

import numpy as np
import pytest

from repro.core.config import CoreSolverConfig
from repro.errors import ConfigurationError
from repro.ising.kernels import (
    DEFAULT_BACKEND,
    ENV_BACKEND,
    NUMBA_AVAILABLE,
    available_backends,
    known_backends,
    make_kernel,
    reset_fallback_warnings,
    resolve_backend,
)
from repro.ising.schedules import LinearPump
from repro.ising.solvers.bsb import BallisticSBSolver
from repro.ising.stop_criteria import FixedIterations
from repro.ising.structured import BipartiteDecompositionModel


def _inline_reference_run(weights, x, y, n_steps, dt, a0, c0, pump):
    """The seed repo's inline bSB loop, frozen verbatim as reference.

    Mirrors the pre-kernel arithmetic exactly: fields built by
    concatenation with fresh temporaries, float64 throughout, walls as
    boolean-mask assignment.
    """
    w = np.asarray(weights, dtype=float)
    k = w / 4.0
    a = k.sum(axis=1)
    r = w.shape[0]
    x = x.copy()
    y = y.copy()

    def fields(positions):
        v1 = positions[..., :r]
        v2 = positions[..., r : 2 * r]
        t = positions[..., 2 * r :]
        kt = t @ k.T
        return np.concatenate(
            [-a + kt, -a - kt, (v1 - v2) @ k], axis=-1
        )

    for iteration in range(1, n_steps + 1):
        a_t = pump(iteration)
        y += dt * (-(a0 - a_t) * x + c0 * fields(x))
        x += dt * a0 * y
        outside = np.abs(x) > 1.0
        if outside.any():
            np.clip(x, -1.0, 1.0, out=x)
            y[outside] = 0.0
    return x, y


class _HiddenKernelModel:
    """Duck-typed view of a model *without* ``make_kernel``.

    Forces :class:`BallisticSBSolver` onto its generic inline path so
    the kernel path can be diffed against it end to end.
    """

    def __init__(self, model):
        self._model = model
        self.n_spins = model.n_spins
        self.offset = model.offset

    def energy(self, spins):
        return self._model.energy(spins)

    def fields(self, x):
        return self._model.fields(x)

    def coupling_rms(self):
        return self._model.coupling_rms()


class TestBitForBit:
    def test_numpy64_step_matches_inline_reference(self, rng):
        w = rng.normal(size=(5, 9))
        kernel = make_kernel(w, backend="numpy64")
        n = kernel.n_spins
        x0 = rng.uniform(-0.1, 0.1, (3, n))
        y0 = rng.uniform(-0.1, 0.1, (3, n))
        dt, a0, c0 = 0.25, 1.0, 0.31
        pump = LinearPump(a0, 80)

        ref_x, ref_y = _inline_reference_run(
            w, x0, y0, 200, dt, a0, c0, pump
        )
        x, y = kernel.prepare_state(x0.copy(), y0.copy())
        for iteration in range(1, 201):
            kernel.step(x, y, pump(iteration), dt, a0, c0)

        # bitwise, not allclose: the kernel is the same arithmetic
        assert np.array_equal(x, ref_x)
        assert np.array_equal(y, ref_y)

    def test_stacked_numpy64_matches_per_problem_inline(self, rng):
        stack = rng.normal(size=(4, 3, 6))
        kernel = make_kernel(stack, backend="numpy64")
        n = kernel.n_spins
        x0 = rng.uniform(-0.1, 0.1, (4, 2, n))
        y0 = rng.uniform(-0.1, 0.1, (4, 2, n))
        dt, a0, c0 = 0.25, 1.0, 0.4
        pump = LinearPump(a0, 50)

        x, y = kernel.prepare_state(x0.copy(), y0.copy())
        for iteration in range(1, 121):
            kernel.step(x, y, pump(iteration), dt, a0, c0)

        for p in range(4):
            ref_x, ref_y = _inline_reference_run(
                stack[p], x0[p], y0[p], 120, dt, a0, c0, pump
            )
            assert np.array_equal(x[p], ref_x)
            assert np.array_equal(y[p], ref_y)

    def test_solver_kernel_path_matches_inline_path(self, rng):
        """Whole-solve equivalence: same rng, same trace, same spins."""
        model = BipartiteDecompositionModel(
            rng.normal(size=(4, 7)), offset=1.5
        )
        solver_args = dict(
            stop=FixedIterations(300, sample_every=25),
            dt=0.25,
            n_replicas=3,
        )
        kernel_result = BallisticSBSolver(
            backend="numpy64", **solver_args
        ).solve(model, np.random.default_rng(7))
        inline_result = BallisticSBSolver(**solver_args).solve(
            _HiddenKernelModel(model), np.random.default_rng(7)
        )
        assert kernel_result.energy == inline_result.energy
        assert kernel_result.objective == inline_result.objective
        assert kernel_result.energy_trace == inline_result.energy_trace
        assert np.array_equal(kernel_result.spins, inline_result.spins)

    def test_energy_matches_model(self, rng):
        w = rng.normal(size=(4, 6))
        model = BipartiteDecompositionModel(w)
        kernel = make_kernel(w, backend="numpy64")
        spins = rng.choice([-1.0, 1.0], size=(5, kernel.n_spins))
        assert np.allclose(kernel.energy(spins), model.energy(spins))

    def test_readout_is_sign(self, rng):
        kernel = make_kernel(rng.normal(size=(3, 4)), backend="numpy64")
        x, _ = kernel.prepare_state(
            rng.normal(size=(2, kernel.n_spins)),
            np.zeros((2, kernel.n_spins)),
        )
        spins = kernel.readout(x)
        assert np.array_equal(spins, np.where(x >= 0, 1.0, -1.0))


class TestNumpy32:
    def test_prepare_state_casts(self, rng):
        kernel = make_kernel(rng.normal(size=(3, 5)), backend="numpy32")
        x, y = kernel.prepare_state(
            rng.normal(size=(2, kernel.n_spins)),
            rng.normal(size=(2, kernel.n_spins)),
        )
        assert x.dtype == np.float32 and y.dtype == np.float32

    def test_short_trajectory_close_to_numpy64(self, rng):
        """float32 stepping tracks the reference over a short horizon."""
        w = rng.normal(size=(6, 10))
        k64 = make_kernel(w, backend="numpy64")
        k32 = make_kernel(w, backend="numpy32")
        n = k64.n_spins
        x0 = rng.uniform(-0.1, 0.1, (2, n))
        y0 = rng.uniform(-0.1, 0.1, (2, n))
        pump = LinearPump(1.0, 30)
        x64, y64 = k64.prepare_state(x0.copy(), y0.copy())
        x32, y32 = k32.prepare_state(x0.copy(), y0.copy())
        for iteration in range(1, 21):
            k64.step(x64, y64, pump(iteration), 0.25, 1.0, 0.3)
            k32.step(x32, y32, pump(iteration), 0.25, 1.0, 0.3)
        assert np.allclose(x32, x64, atol=1e-4)
        assert np.allclose(y32, y64, atol=1e-4)

    def test_decoded_objective_scored_in_float64(self, rng):
        """Backend numpy32 still reports exact float64 objectives."""
        model = BipartiteDecompositionModel(
            rng.normal(size=(3, 6)), offset=0.25
        )
        result = BallisticSBSolver(
            stop=FixedIterations(200, sample_every=20),
            n_replicas=2,
            backend="numpy32",
        ).solve(model, np.random.default_rng(11))
        assert set(np.unique(result.spins)) <= {-1.0, 1.0}
        # the reported energy is the float64 model energy of the spins
        assert result.energy == pytest.approx(
            float(model.energy(result.spins)), abs=0.0
        )

    def test_stacked_energy_scored_in_float64(self, rng):
        stack = rng.normal(size=(3, 4, 5))
        kernel = make_kernel(stack, backend="numpy32")
        spins = rng.choice(
            [-1.0, 1.0], size=(3, 2, kernel.n_spins)
        )
        ref = make_kernel(stack, backend="numpy64")
        # stepping dtype is float32 but scoring goes through float64
        assert kernel.k.dtype == np.float32
        assert np.allclose(
            np.asarray(kernel.energy(spins), dtype=float),
            ref.energy(spins),
            rtol=1e-5,
        )


class TestRegistry:
    def test_numpy_backends_always_available(self):
        assert "numpy64" in available_backends()
        assert "numpy32" in available_backends()

    def test_numba_is_always_known(self):
        assert "numba" in known_backends()

    def test_default_resolution(self, monkeypatch):
        monkeypatch.delenv(ENV_BACKEND, raising=False)
        assert resolve_backend(None) == DEFAULT_BACKEND
        assert resolve_backend("numpy32") == "numpy32"

    def test_env_override_wins(self, monkeypatch):
        monkeypatch.setenv(ENV_BACKEND, "numpy32")
        assert resolve_backend("numpy64") == "numpy32"

    def test_unknown_backend_rejected(self, monkeypatch):
        monkeypatch.delenv(ENV_BACKEND, raising=False)
        with pytest.raises(ConfigurationError):
            resolve_backend("cuda")

    def test_config_validates_backend(self):
        with pytest.raises(ConfigurationError):
            CoreSolverConfig(backend="not-a-backend")
        assert CoreSolverConfig(backend="numpy32").backend == "numpy32"

    @pytest.mark.skipif(
        NUMBA_AVAILABLE, reason="numba installed; no fallback to test"
    )
    def test_missing_numba_falls_back_warning_once(
        self, monkeypatch, rng, caplog
    ):
        monkeypatch.delenv(ENV_BACKEND, raising=False)
        reset_fallback_warnings()
        with caplog.at_level("WARNING", logger="repro.ising.kernels"):
            assert resolve_backend("numba") == DEFAULT_BACKEND
        assert any(
            "numba" in record.getMessage() for record in caplog.records
        )
        # the fallback warns exactly once per process, not once per
        # resolve/batch — repeated resolutions stay silent
        caplog.clear()
        with caplog.at_level("WARNING", logger="repro.ising.kernels"):
            assert resolve_backend("numba") == DEFAULT_BACKEND
            kernel = make_kernel(rng.normal(size=(2, 3)), backend="numba")
        assert not caplog.records
        assert kernel.dtype == np.float64
        reset_fallback_warnings()
        with caplog.at_level("WARNING", logger="repro.ising.kernels"):
            assert resolve_backend("numba") == DEFAULT_BACKEND
        assert any(
            "numba" in record.getMessage() for record in caplog.records
        )

    @pytest.mark.skipif(
        not NUMBA_AVAILABLE, reason="needs an installed numba"
    )
    def test_numba_matches_numpy64_closely(self, rng):
        w = rng.normal(size=(4, 7))
        k64 = make_kernel(w, backend="numpy64")
        knb = make_kernel(w, backend="numba")
        n = k64.n_spins
        x0 = rng.uniform(-0.1, 0.1, (2, n))
        y0 = rng.uniform(-0.1, 0.1, (2, n))
        pump = LinearPump(1.0, 40)
        xa, ya = k64.prepare_state(x0.copy(), y0.copy())
        xb, yb = knb.prepare_state(x0.copy(), y0.copy())
        for iteration in range(1, 101):
            k64.step(xa, ya, pump(iteration), 0.25, 1.0, 0.3)
            knb.step(xb, yb, pump(iteration), 0.25, 1.0, 0.3)
        assert np.allclose(xa, xb, atol=1e-9)
