"""Solver registry, the SolveResult contract, and the bit/spin contract.

Three API guarantees introduced by the unified-registry redesign:

* ``make_solver(name, **params)`` is the single name→solver path, with
  capability flags answerable without construction and clear errors for
  unknown names/parameters (old entry points shim to it, deprecated);
* every registered solver returns a ``SolveResult`` honoring the
  documented contract — shared ``stop_reason`` vocabulary, populated
  ``runtime_seconds``, and uniform ``metadata`` keys;
* ``binary_to_spins``/``spins_to_binary`` round-trip exactly for every
  integer/bool dtype (the documented dtype asymmetry).
"""

import numpy as np
import pytest

from repro.core.solver import CoreCOPSolver, build_bsb_solver
from repro.errors import ConfigurationError
from repro.ising.model import DenseIsingModel
from repro.ising.solvers import solver_for_name
from repro.ising.solvers.base import (
    IsingSolver,
    binary_to_spins,
    spins_to_binary,
)
from repro.ising.solvers.bsb import BallisticSBSolver
from repro.ising.solvers.registry import (
    canonical_name,
    make_solver,
    solver_info,
    solver_names,
)

ALL_SOLVERS = (
    "asb",
    "brute_force",
    "bsb",
    "dsb",
    "mean_field",
    "parallel_tempering",
    "sa",
    "tabu",
)

#: the stop_reason vocabulary documented in solvers/base.py
STOP_REASONS = {
    "max_iterations",
    "variance_converged",
    "schedule_exhausted",
    "steps_exhausted",
    "exhausted",
}

#: metadata keys every solver must populate
METADATA_KEYS = ("solver", "backend", "dtype", "n_replicas")


def small_model(n=6, seed=0):
    rng = np.random.default_rng(seed)
    j = rng.normal(size=(n, n))
    j = (j + j.T) / 2
    np.fill_diagonal(j, 0.0)
    return DenseIsingModel(rng.normal(size=n), j)


class TestRegistry:
    def test_all_eight_solvers_registered(self):
        assert tuple(solver_names()) == ALL_SOLVERS

    def test_make_solver_constructs_the_registered_class(self):
        solver = make_solver("bsb", n_replicas=3)
        assert isinstance(solver, BallisticSBSolver)
        assert solver.n_replicas == 3

    def test_aliases_resolve_to_primary(self):
        assert canonical_name("pt") == "parallel_tempering"
        assert canonical_name("mfa") == "mean_field"
        assert solver_info("pt") is solver_info("parallel_tempering")

    def test_unknown_name_lists_known_solvers(self):
        with pytest.raises(ConfigurationError, match="bsb"):
            make_solver("quantum_annealer")

    def test_bad_parameters_name_the_solver(self):
        with pytest.raises(ConfigurationError, match="'sa'"):
            make_solver("sa", warp_factor=9)

    def test_capability_flags(self):
        assert solver_info("bsb").capabilities.supports_probes
        assert solver_info("bsb").capabilities.supports_stop_criteria
        assert not solver_info("sa").capabilities.supports_stop_criteria
        assert solver_info("brute_force").capabilities.exact
        assert not solver_info("brute_force").capabilities.supports_replicas

    def test_every_entry_constructs_an_ising_solver(self):
        for name in solver_names():
            assert isinstance(make_solver(name), IsingSolver)


class TestDeprecatedShims:
    def test_solver_for_name_warns_and_delegates(self):
        with pytest.warns(DeprecationWarning, match="make_solver"):
            solver = solver_for_name("tabu", n_restarts=2)
        assert type(solver).__name__ == "TabuSearchSolver"

    def test_build_bsb_solver_warns_and_matches_core_path(self):
        with pytest.warns(DeprecationWarning, match="build_solver"):
            shimmed = build_bsb_solver()
        direct = CoreCOPSolver().build_solver()
        assert type(shimmed) is type(direct)
        assert shimmed.n_replicas == direct.n_replicas


class TestSolveResultContract:
    @pytest.mark.parametrize("name", ALL_SOLVERS)
    def test_contract_fields(self, name):
        model = small_model()
        result = make_solver(name).solve(
            model, np.random.default_rng(1)
        )
        assert result.spins.shape == (model.n_spins,)
        assert set(np.unique(result.spins)) <= {-1.0, 1.0}
        assert result.n_iterations > 0
        assert result.stop_reason in STOP_REASONS
        assert result.runtime_seconds > 0.0
        for key in METADATA_KEYS:
            assert key in result.metadata, f"{name} lacks {key!r}"
        assert result.metadata["solver"] == name
        assert result.metadata["n_replicas"] >= 1
        # energy/objective are exact re-evaluations of the spins
        assert result.energy == pytest.approx(model.energy(result.spins))
        assert result.objective == pytest.approx(
            result.energy + model.offset
        )

    def test_brute_force_metadata_is_exact_single_replica(self):
        result = make_solver("brute_force").solve(small_model())
        assert result.metadata["backend"] == "enumerate"
        assert result.metadata["n_replicas"] == 1
        assert result.stop_reason == "exhausted"


class TestBitSpinRoundTrip:
    INT_DTYPES = (
        np.bool_,
        np.int8, np.int16, np.int32, np.int64,
        np.uint8, np.uint16, np.uint32, np.uint64,
    )

    @pytest.mark.parametrize("dtype", INT_DTYPES)
    def test_bits_to_spins_to_bits_exact(self, dtype):
        bits = np.array([0, 1, 1, 0, 1, 0, 0, 1], dtype=dtype)
        spins = binary_to_spins(bits)
        assert spins.dtype == np.float64
        assert set(np.unique(spins)) == {-1.0, 1.0}
        back = spins_to_binary(spins)
        assert back.dtype == np.uint8
        np.testing.assert_array_equal(back, bits.astype(np.uint8))

    @pytest.mark.parametrize(
        "dtype", (np.float32, np.float64, np.int8, np.int64)
    )
    def test_spins_to_bits_to_spins_exact(self, dtype):
        spins = np.array([-1, 1, 1, -1], dtype=dtype)
        bits = spins_to_binary(spins)
        assert bits.dtype == np.uint8
        np.testing.assert_array_equal(
            binary_to_spins(bits), spins.astype(np.float64)
        )

    def test_solve_result_bits_property_is_uint8(self):
        result = make_solver("brute_force").solve(small_model(n=4))
        assert result.bits.dtype == np.uint8
        np.testing.assert_array_equal(
            binary_to_spins(result.bits), result.spins
        )
