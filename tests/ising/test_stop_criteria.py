"""Unit tests for :mod:`repro.ising.stop_criteria` and schedules."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.ising.schedules import GeometricCooling, LinearPump
from repro.ising.stop_criteria import EnergyVarianceStop, FixedIterations


class TestFixedIterations:
    def test_never_stops(self):
        stop = FixedIterations(100)
        stop.reset()
        for _ in range(50):
            assert not stop.observe(1.0)

    def test_no_sampling_by_default(self):
        stop = FixedIterations(100)
        assert not stop.wants_sample(50)

    def test_sampling_trace_only(self):
        stop = FixedIterations(100, sample_every=10)
        assert stop.wants_sample(10)
        assert not stop.wants_sample(11)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FixedIterations(0)
        with pytest.raises(ConfigurationError):
            FixedIterations(10, sample_every=0)


class TestEnergyVarianceStop:
    def test_stops_on_constant_energy(self):
        stop = EnergyVarianceStop(sample_every=5, window=4, threshold=1e-8)
        stop.reset()
        decisions = [stop.observe(2.0) for _ in range(6)]
        # needs a full window first, then constant samples stop it
        assert decisions[:3] == [False, False, False]
        assert decisions[3] is True

    def test_does_not_stop_on_varying_energy(self):
        stop = EnergyVarianceStop(sample_every=5, window=4, threshold=1e-8)
        stop.reset()
        for value in (1.0, 5.0, -2.0, 7.0, 1.5, 9.0):
            assert not stop.observe(value)

    def test_threshold_boundary(self):
        stop = EnergyVarianceStop(sample_every=1, window=2, threshold=0.5)
        stop.reset()
        stop.observe(0.0)
        # var([0, 1]) = 0.25 < 0.5
        assert stop.observe(1.0)

    def test_reset_clears_window(self):
        stop = EnergyVarianceStop(sample_every=1, window=2, threshold=1.0)
        stop.reset()
        stop.observe(0.0)
        stop.reset()
        assert not stop.observe(0.0)  # window no longer full

    def test_min_iterations_defers_stop(self):
        stop = EnergyVarianceStop(
            sample_every=10, window=2, threshold=1.0, min_iterations=100
        )
        stop.reset()
        assert not stop.observe(0.0)
        assert not stop.observe(0.0)  # 2 samples = iteration 20 < 100
        for _ in range(8):
            stop.observe(0.0)
        assert stop.observe(0.0)  # now past min_iterations

    def test_wants_sample_period(self):
        stop = EnergyVarianceStop(sample_every=20)
        assert stop.wants_sample(20) and stop.wants_sample(40)
        assert not stop.wants_sample(30)

    def test_last_variance(self):
        stop = EnergyVarianceStop(sample_every=1, window=2, threshold=0.0)
        stop.reset()
        assert stop.last_variance is None
        stop.observe(0.0)
        stop.observe(2.0)
        assert np.isclose(stop.last_variance, 1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EnergyVarianceStop(sample_every=0)
        with pytest.raises(ConfigurationError):
            EnergyVarianceStop(window=1)
        with pytest.raises(ConfigurationError):
            EnergyVarianceStop(threshold=-1.0)
        with pytest.raises(ConfigurationError):
            EnergyVarianceStop(max_iterations=0)


class TestEnergyVarianceStopEdgeCases:
    """Boundary behavior the observability layer reports on."""

    def test_last_variance_none_until_window_full(self):
        stop = EnergyVarianceStop(sample_every=1, window=3, threshold=0.0)
        stop.reset()
        assert stop.last_variance is None
        stop.observe(1.0)
        assert stop.last_variance is None
        stop.observe(2.0)
        assert stop.last_variance is None  # 2 of 3 samples
        stop.observe(3.0)
        assert stop.last_variance is not None

    def test_variance_exactly_at_threshold_does_not_stop(self):
        # the criterion is Var < eps, strictly: equality keeps running
        stop = EnergyVarianceStop(sample_every=1, window=2, threshold=1.0)
        stop.reset()
        stop.observe(0.0)
        assert not stop.observe(2.0)  # var([0, 2]) == 1.0 == threshold
        assert stop.last_variance == 1.0

    def test_variance_just_below_threshold_stops(self):
        stop = EnergyVarianceStop(sample_every=1, window=2, threshold=1.0)
        stop.reset()
        stop.observe(0.0)
        assert stop.observe(2.0 - 1e-9)

    def test_fixed_iterations_sample_every_none_never_samples(self):
        stop = FixedIterations(100)
        assert stop.sample_every is None
        assert not any(stop.wants_sample(i) for i in range(1, 101))

    def test_no_state_leaks_between_runs_with_reset(self):
        stop = EnergyVarianceStop(sample_every=1, window=3, threshold=1e-8)
        stop.reset()
        decisions_first = [stop.observe(5.0) for _ in range(4)]
        assert decisions_first[-1] is True
        stop.reset()
        assert stop.last_variance is None
        # a fresh run must refill the whole window before stopping again
        decisions_second = [stop.observe(5.0) for _ in range(4)]
        assert decisions_second == decisions_first

    def test_without_reset_stale_window_leaks(self):
        # documents why solvers MUST call reset(): stale samples from a
        # previous run would trigger an immediate (wrong) stop
        stop = EnergyVarianceStop(sample_every=1, window=3, threshold=1e-8)
        stop.reset()
        for _ in range(4):
            stop.observe(5.0)
        assert stop.observe(5.0)  # window still full from the "old run"

    def test_min_iterations_counts_samples_not_iterations(self):
        stop = EnergyVarianceStop(
            sample_every=10, window=2, threshold=1.0, min_iterations=25
        )
        stop.reset()
        assert not stop.observe(0.0)  # window not full
        assert not stop.observe(0.0)  # 2 samples -> iteration 20 < 25
        assert stop.observe(0.0)  # 3 samples -> iteration 30 >= 25


class TestLinearPump:
    def test_ramps_to_a0(self):
        pump = LinearPump(a0=2.0, ramp_iterations=100)
        assert pump(0) == 0.0
        assert np.isclose(pump(50), 1.0)
        assert np.isclose(pump(100), 2.0)

    def test_holds_after_ramp(self):
        pump = LinearPump(a0=1.0, ramp_iterations=10)
        assert pump(1000) == 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LinearPump(a0=0.0)
        with pytest.raises(ConfigurationError):
            LinearPump(ramp_iterations=0)


class TestGeometricCooling:
    def test_endpoints(self):
        cooling = GeometricCooling(10.0, 0.1, 5)
        assert np.isclose(cooling(0), 10.0)
        assert np.isclose(cooling(4), 0.1)

    def test_monotone_decreasing(self):
        cooling = GeometricCooling(5.0, 0.01, 50)
        temps = cooling.temperatures()
        assert (np.diff(temps) <= 1e-12).all()

    def test_floor_at_t_final(self):
        cooling = GeometricCooling(5.0, 0.5, 10)
        assert cooling(10_000) == 0.5

    def test_single_step(self):
        cooling = GeometricCooling(2.0, 1.0, 1)
        assert np.isclose(cooling(0), 2.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GeometricCooling(-1.0, 0.1, 5)
        with pytest.raises(ConfigurationError):
            GeometricCooling(1.0, 2.0, 5)
        with pytest.raises(ConfigurationError):
            GeometricCooling(1.0, 0.1, 0)
