"""Tests for the tabu-search and parallel-tempering solvers."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.ising.model import DenseIsingModel
from repro.ising.problems import max_cut_model, random_max_cut_weights
from repro.ising.solvers import (
    BruteForceSolver,
    ParallelTemperingSolver,
    TabuSearchSolver,
)


def ferromagnet(n=8):
    j = np.ones((n, n)) - np.eye(n)
    return DenseIsingModel(np.zeros(n), j)


SOLVERS = [
    ("tabu", lambda: TabuSearchSolver(n_steps=500, n_restarts=2)),
    ("pt", lambda: ParallelTemperingSolver(n_sweeps=100, n_replicas=4)),
]


@pytest.mark.parametrize("name,make", SOLVERS)
class TestCommonBehavior:
    def test_ferromagnet_ground_state(self, name, make, rng):
        result = make().solve(ferromagnet(10), rng)
        assert np.isclose(result.energy, -45.0)

    def test_objective_consistency(self, name, make, rng):
        model = max_cut_model(random_max_cut_weights(10, 0.5, 1))
        result = make().solve(model, rng)
        assert np.isclose(
            result.objective, float(model.objective(result.spins))
        )

    def test_deterministic_given_seed(self, name, make):
        model = max_cut_model(random_max_cut_weights(10, 0.5, 1))
        a = make().solve(model, np.random.default_rng(4))
        b = make().solve(model, np.random.default_rng(4))
        assert np.isclose(a.energy, b.energy)

    def test_spins_valid(self, name, make, rng):
        result = make().solve(ferromagnet(7), rng)
        assert np.isin(result.spins, (-1.0, 1.0)).all()


class TestAgainstExact:
    @pytest.mark.parametrize("seed", [0, 3])
    def test_tabu_reaches_optimum(self, seed):
        model = max_cut_model(random_max_cut_weights(12, 0.6, seed))
        exact = BruteForceSolver().solve(model)
        result = TabuSearchSolver(n_steps=1500, n_restarts=3).solve(
            model, np.random.default_rng(seed)
        )
        assert result.energy <= exact.energy + 0.05 * abs(exact.energy)

    @pytest.mark.parametrize("seed", [0, 3])
    def test_pt_reaches_optimum(self, seed):
        model = max_cut_model(random_max_cut_weights(12, 0.6, seed))
        exact = BruteForceSolver().solve(model)
        result = ParallelTemperingSolver(
            n_sweeps=250, n_replicas=6
        ).solve(model, np.random.default_rng(seed))
        assert result.energy <= exact.energy + 0.05 * abs(exact.energy)


class TestTabuSpecifics:
    def test_tabu_escapes_local_minimum(self):
        """Tabu must move uphill when all downhill moves are tabu."""
        model = ferromagnet(6)
        result = TabuSearchSolver(n_steps=50, tenure=3).solve(
            model, np.random.default_rng(0)
        )
        # even with a short run it reaches the aligned state from anywhere
        assert np.isclose(result.energy, -15.0)

    def test_validation(self):
        with pytest.raises(SolverError):
            TabuSearchSolver(n_steps=0)
        with pytest.raises(SolverError):
            TabuSearchSolver(tenure=0)
        with pytest.raises(SolverError):
            TabuSearchSolver(n_restarts=0)


class TestPTSpecifics:
    def test_trace_records_cold_chain(self):
        model = ferromagnet(6)
        result = ParallelTemperingSolver(n_sweeps=40, n_replicas=4).solve(
            model, np.random.default_rng(0)
        )
        assert len(result.energy_trace) == 40
        # the trace is the running cold-chain energy: last <= first
        assert result.energy_trace[-1] <= result.energy_trace[0] + 1e-9

    def test_validation(self):
        with pytest.raises(SolverError):
            ParallelTemperingSolver(n_sweeps=0)
        with pytest.raises(SolverError):
            ParallelTemperingSolver(n_replicas=1)
        with pytest.raises(SolverError):
            ParallelTemperingSolver(t_cold=2.0, t_hot=1.0)
        with pytest.raises(SolverError):
            ParallelTemperingSolver(swap_every=0)
