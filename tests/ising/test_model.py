"""Unit tests for :mod:`repro.ising.model`."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DimensionError
from repro.ising.model import DenseIsingModel


def random_model(rng, n=6, offset=0.0):
    j = rng.normal(size=(n, n))
    j = (j + j.T) / 2
    np.fill_diagonal(j, 0.0)
    return DenseIsingModel(rng.normal(size=n), j, offset)


class TestValidation:
    def test_asymmetric_rejected(self):
        j = np.array([[0.0, 1.0], [2.0, 0.0]])
        with pytest.raises(DimensionError):
            DenseIsingModel(np.zeros(2), j)

    def test_nonzero_diagonal_rejected(self):
        j = np.array([[1.0, 0.0], [0.0, 0.0]])
        with pytest.raises(DimensionError):
            DenseIsingModel(np.zeros(2), j)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(DimensionError):
            DenseIsingModel(np.zeros(3), np.zeros((2, 2)))

    def test_arrays_read_only(self, rng):
        model = random_model(rng)
        with pytest.raises(ValueError):
            model.biases[0] = 1.0


class TestEnergy:
    def test_eq1_by_hand(self):
        # E = -h1 s1 - h2 s2 - J12 s1 s2
        model = DenseIsingModel(
            np.array([0.5, -1.0]), np.array([[0.0, 2.0], [2.0, 0.0]])
        )
        s = np.array([1.0, -1.0])
        assert np.isclose(model.energy(s), -0.5 - 1.0 + 2.0)

    def test_batch_energy_matches_loop(self, rng):
        model = random_model(rng)
        batch = rng.choice([-1.0, 1.0], size=(7, 6))
        energies = model.energy(batch)
        for i in range(7):
            assert np.isclose(energies[i], model.energy(batch[i]))

    def test_objective_adds_offset(self, rng):
        model = random_model(rng, offset=3.5)
        s = np.ones(6)
        assert np.isclose(model.objective(s), model.energy(s) + 3.5)

    def test_global_flip_with_zero_bias_is_symmetric(self, rng):
        j = rng.normal(size=(5, 5))
        j = (j + j.T) / 2
        np.fill_diagonal(j, 0)
        model = DenseIsingModel(np.zeros(5), j)
        s = rng.choice([-1.0, 1.0], size=5)
        assert np.isclose(model.energy(s), model.energy(-s))

    def test_wrong_width_rejected(self, rng):
        model = random_model(rng)
        with pytest.raises(DimensionError):
            model.energy(np.ones(5))


class TestFields:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_fields_are_negative_gradient(self, seed):
        """f_i = -dE/ds_i: flipping spin i changes E by 2 s_i f_i."""
        rng = np.random.default_rng(seed)
        model = random_model(rng)
        s = rng.choice([-1.0, 1.0], size=6)
        fields = model.fields(s)
        for i in range(6):
            flipped = s.copy()
            flipped[i] = -flipped[i]
            delta = model.energy(flipped) - model.energy(s)
            assert np.isclose(delta, 2.0 * s[i] * fields[i])

    def test_local_energy_change_vectorized(self, rng):
        model = random_model(rng)
        s = rng.choice([-1.0, 1.0], size=6)
        deltas = model.local_energy_change(s)
        for i in range(6):
            assert np.isclose(deltas[i], model.local_energy_change(s, i))

    def test_fields_batch(self, rng):
        model = random_model(rng)
        batch = rng.normal(size=(3, 6))
        fields = model.fields(batch)
        for i in range(3):
            assert np.allclose(fields[i], model.fields(batch[i]))


class TestHelpers:
    def test_coupling_rms(self):
        j = np.array([[0.0, 2.0], [2.0, 0.0]])
        model = DenseIsingModel(np.zeros(2), j)
        # sum J^2 = 8 over N(N-1) = 2 pairs -> rms = 2
        assert np.isclose(model.coupling_rms(), 2.0)

    def test_validate_spins_rejects_non_spin(self, rng):
        model = random_model(rng)
        with pytest.raises(DimensionError):
            model.validate_spins(np.full(6, 0.5))

    def test_to_dense_is_self(self, rng):
        model = random_model(rng)
        assert model.to_dense() is model
