"""Unit tests for :mod:`repro.ising.structured`."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DimensionError
from repro.ising.structured import BipartiteDecompositionModel


class TestShape:
    def test_spin_layout(self):
        model = BipartiteDecompositionModel(np.zeros((3, 5)))
        assert model.n_rows == 3
        assert model.n_cols == 5
        assert model.n_spins == 11

    def test_split_join_round_trip(self, rng):
        model = BipartiteDecompositionModel(rng.normal(size=(3, 5)))
        x = rng.normal(size=11)
        v1, v2, t = model.split(x)
        assert v1.shape == (3,) and v2.shape == (3,) and t.shape == (5,)
        assert np.array_equal(model.join(v1, v2, t), x)

    def test_rejects_1d_weights(self):
        with pytest.raises(DimensionError):
            BipartiteDecompositionModel(np.zeros(4))

    def test_weights_round_trip(self, rng):
        w = rng.normal(size=(2, 3))
        model = BipartiteDecompositionModel(w)
        assert np.allclose(model.weights, w)


class TestAgainstDense:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_energy_matches_dense(self, seed):
        rng = np.random.default_rng(seed)
        r, c = int(rng.integers(1, 5)), int(rng.integers(1, 6))
        model = BipartiteDecompositionModel(
            rng.normal(size=(r, c)), offset=float(rng.normal())
        )
        dense = model.to_dense()
        spins = rng.choice([-1.0, 1.0], size=model.n_spins)
        assert np.isclose(model.energy(spins), dense.energy(spins))
        assert np.isclose(model.objective(spins), dense.objective(spins))

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_fields_match_dense(self, seed):
        rng = np.random.default_rng(seed)
        r, c = int(rng.integers(1, 5)), int(rng.integers(1, 6))
        model = BipartiteDecompositionModel(rng.normal(size=(r, c)))
        dense = model.to_dense()
        x = rng.normal(size=model.n_spins)  # continuous positions too
        assert np.allclose(model.fields(x), dense.fields(x))

    def test_coupling_rms_matches_dense(self, rng):
        model = BipartiteDecompositionModel(rng.normal(size=(4, 7)))
        assert np.isclose(model.coupling_rms(),
                          model.to_dense().coupling_rms())

    def test_batch_energy(self, rng):
        model = BipartiteDecompositionModel(rng.normal(size=(3, 4)))
        batch = rng.choice([-1.0, 1.0], size=(6, model.n_spins))
        energies = model.energy(batch)
        for i in range(6):
            assert np.isclose(energies[i], model.energy(batch[i]))

    def test_batch_fields(self, rng):
        model = BipartiteDecompositionModel(rng.normal(size=(3, 4)))
        batch = rng.normal(size=(6, model.n_spins))
        fields = model.fields(batch)
        for i in range(6):
            assert np.allclose(fields[i], model.fields(batch[i]))

    def test_wrong_width_rejected(self, rng):
        model = BipartiteDecompositionModel(rng.normal(size=(3, 4)))
        with pytest.raises(DimensionError):
            model.energy(np.ones(9))
        with pytest.raises(DimensionError):
            model.fields(np.ones(9))


class TestBipartiteStructure:
    def test_dense_couplings_are_bipartite(self, rng):
        """No V-V or T-T couplings exist (the point of the column view)."""
        model = BipartiteDecompositionModel(rng.normal(size=(3, 4)))
        j = model.to_dense().couplings
        r = model.n_rows
        assert np.allclose(j[: 2 * r, : 2 * r], 0.0)
        assert np.allclose(j[2 * r :, 2 * r :], 0.0)

    def test_type_spins_have_zero_bias(self, rng):
        model = BipartiteDecompositionModel(rng.normal(size=(3, 4)))
        h = model.to_dense().biases
        assert np.allclose(h[6:], 0.0)
