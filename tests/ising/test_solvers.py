"""Tests for the solver zoo: bSB, dSB, aSB, SA, brute force."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.ising.model import DenseIsingModel
from repro.ising.problems import (
    max_cut_model,
    max_cut_value,
    number_partitioning_model,
    partition_imbalance,
    random_max_cut_weights,
)
from repro.ising.solvers import (
    AdiabaticSBSolver,
    BallisticSBSolver,
    BruteForceSolver,
    DiscreteSBSolver,
    SimulatedAnnealingSolver,
)
from repro.ising.solvers.base import binary_to_spins, spins_to_binary
from repro.ising.stop_criteria import EnergyVarianceStop, FixedIterations

HEURISTICS = [
    ("bsb", lambda: BallisticSBSolver(stop=FixedIterations(1500),
                                      n_replicas=6)),
    ("dsb", lambda: DiscreteSBSolver(stop=FixedIterations(1500),
                                     n_replicas=6)),
    ("asb", lambda: AdiabaticSBSolver(stop=FixedIterations(1500),
                                      n_replicas=6)),
    ("sa", lambda: SimulatedAnnealingSolver(n_sweeps=150, n_restarts=2)),
]


def ferromagnet(n=8):
    """All-equal couplings: ground states are the two aligned states."""
    j = np.ones((n, n)) - np.eye(n)
    return DenseIsingModel(np.zeros(n), j)


class TestSpinConversions:
    def test_round_trip(self):
        bits = np.array([0, 1, 1, 0], dtype=np.uint8)
        assert np.array_equal(spins_to_binary(binary_to_spins(bits)), bits)

    def test_values(self):
        assert np.array_equal(binary_to_spins([0, 1]), [-1.0, 1.0])
        assert np.array_equal(spins_to_binary([-1, 1]), [0, 1])


class TestBruteForce:
    def test_finds_exact_ground_state_of_ferromagnet(self):
        result = BruteForceSolver().solve(ferromagnet(6))
        assert np.isclose(result.energy, -15.0)  # -C(6,2) pairs
        assert np.all(result.spins == result.spins[0])

    def test_refuses_large_instances(self):
        model = DenseIsingModel(np.zeros(25), np.zeros((25, 25)))
        with pytest.raises(SolverError):
            BruteForceSolver().solve(model)

    def test_chunking_equivalent(self, rng):
        j = rng.normal(size=(8, 8))
        j = (j + j.T) / 2
        np.fill_diagonal(j, 0)
        model = DenseIsingModel(rng.normal(size=8), j)
        small = BruteForceSolver(chunk_bits=3).solve(model)
        big = BruteForceSolver(chunk_bits=16).solve(model)
        assert np.isclose(small.energy, big.energy)

    def test_chunk_bits_validation(self):
        with pytest.raises(SolverError):
            BruteForceSolver(chunk_bits=0)


@pytest.mark.parametrize("name,make", HEURISTICS)
class TestHeuristicSolvers:
    def test_ferromagnet_ground_state(self, name, make, rng):
        result = make().solve(ferromagnet(10), rng)
        assert np.isclose(result.energy, -45.0)

    def test_spins_are_valid(self, name, make, rng):
        model = ferromagnet(7)
        result = make().solve(model, rng)
        assert result.spins.shape == (7,)
        assert np.isin(result.spins, (-1.0, 1.0)).all()

    def test_objective_consistent(self, name, make, rng):
        model = max_cut_model(random_max_cut_weights(10, 0.5, 3))
        result = make().solve(model, rng)
        assert np.isclose(result.objective,
                          float(model.objective(result.spins)))

    def test_deterministic_given_seed(self, name, make):
        model = max_cut_model(random_max_cut_weights(10, 0.5, 3))
        a = make().solve(model, np.random.default_rng(7))
        b = make().solve(model, np.random.default_rng(7))
        assert np.isclose(a.energy, b.energy)
        assert np.array_equal(a.spins, b.spins)


class TestAgainstExactOptimum:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_bsb_reaches_max_cut_optimum(self, seed):
        weights = random_max_cut_weights(12, 0.6, seed)
        model = max_cut_model(weights)
        exact = BruteForceSolver().solve(model)
        solver = BallisticSBSolver(stop=FixedIterations(3000), n_replicas=12)
        result = solver.solve(model, np.random.default_rng(seed))
        # bSB with restarts should match the exact optimum on n=12
        assert result.energy <= exact.energy + 1e-9 + 0.05 * abs(exact.energy)

    def test_sa_close_to_optimum(self):
        weights = random_max_cut_weights(12, 0.6, 5)
        model = max_cut_model(weights)
        exact = BruteForceSolver().solve(model)
        result = SimulatedAnnealingSolver(n_sweeps=300, n_restarts=3).solve(
            model, np.random.default_rng(0)
        )
        assert result.energy <= exact.energy + 0.05 * abs(exact.energy)


class TestDynamicStopIntegration:
    def test_variance_stop_terminates_early(self):
        model = ferromagnet(10)
        stop = EnergyVarianceStop(
            sample_every=10, window=5, threshold=1e-8, max_iterations=50_000
        )
        result = BallisticSBSolver(stop=stop, n_replicas=4).solve(
            model, np.random.default_rng(0)
        )
        assert result.stop_reason == "variance_converged"
        assert result.n_iterations < 50_000

    def test_energy_trace_recorded(self):
        model = ferromagnet(6)
        stop = FixedIterations(200, sample_every=20)
        result = BallisticSBSolver(stop=stop).solve(
            model, np.random.default_rng(0)
        )
        assert len(result.energy_trace) == 10

    def test_intervention_hook_called(self):
        model = ferromagnet(6)
        calls = []

        def hook(state):
            calls.append(state.iteration)

        solver = BallisticSBSolver(
            stop=FixedIterations(100), intervention=hook,
            sample_every_default=25,
        )
        solver.solve(model, np.random.default_rng(0))
        assert calls == [25, 50, 75, 100]


class TestProblems:
    def test_max_cut_objective_equals_negative_cut(self, rng):
        weights = random_max_cut_weights(8, 0.7, rng)
        model = max_cut_model(weights)
        for _ in range(10):
            spins = rng.choice([-1.0, 1.0], size=8)
            assert np.isclose(
                model.objective(spins), -max_cut_value(weights, spins)
            )

    def test_number_partitioning_objective(self, rng):
        values = rng.integers(1, 20, 8).astype(float)
        model = number_partitioning_model(values)
        for _ in range(10):
            spins = rng.choice([-1.0, 1.0], size=8)
            assert np.isclose(
                model.objective(spins),
                partition_imbalance(values, spins) ** 2,
            )

    def test_perfect_partition_found(self):
        values = np.array([4.0, 3.0, 2.0, 1.0, 4.0])  # 4+3 == 2+1+4
        model = number_partitioning_model(values)
        result = BruteForceSolver().solve(model)
        assert np.isclose(result.objective, 0.0)


class TestSolverValidation:
    def test_bsb_bad_params(self):
        with pytest.raises(SolverError):
            BallisticSBSolver(dt=0.0)
        with pytest.raises(SolverError):
            BallisticSBSolver(n_replicas=0)
        with pytest.raises(SolverError):
            BallisticSBSolver(initial_amplitude=0.0)

    def test_asb_bad_bound(self):
        with pytest.raises(SolverError):
            AdiabaticSBSolver(position_bound=0.5)

    def test_sa_bad_params(self):
        with pytest.raises(SolverError):
            SimulatedAnnealingSolver(n_sweeps=0)
        with pytest.raises(SolverError):
            SimulatedAnnealingSolver(n_restarts=0)
