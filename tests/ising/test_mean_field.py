"""Tests for the mean-field annealing solver."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.ising.model import DenseIsingModel
from repro.ising.problems import max_cut_model, random_max_cut_weights
from repro.ising.solvers import BruteForceSolver
from repro.ising.solvers.mean_field import MeanFieldAnnealingSolver


def ferromagnet(n=8):
    j = np.ones((n, n)) - np.eye(n)
    return DenseIsingModel(np.zeros(n), j)


class TestMeanField:
    def test_ferromagnet_ground_state(self, rng):
        result = MeanFieldAnnealingSolver(n_sweeps=200).solve(
            ferromagnet(10), rng
        )
        assert np.isclose(result.energy, -45.0)

    def test_close_to_exact_on_max_cut(self):
        model = max_cut_model(random_max_cut_weights(12, 0.6, 2))
        exact = BruteForceSolver().solve(model)
        result = MeanFieldAnnealingSolver(
            n_sweeps=300, n_restarts=4
        ).solve(model, np.random.default_rng(0))
        assert result.energy <= exact.energy + 0.10 * abs(exact.energy)

    def test_objective_consistency(self, rng):
        model = max_cut_model(random_max_cut_weights(9, 0.5, 1))
        result = MeanFieldAnnealingSolver(n_sweeps=100).solve(model, rng)
        assert np.isclose(
            result.objective, float(model.objective(result.spins))
        )

    def test_deterministic_given_seed(self):
        model = max_cut_model(random_max_cut_weights(9, 0.5, 1))
        a = MeanFieldAnnealingSolver(n_sweeps=80).solve(
            model, np.random.default_rng(6)
        )
        b = MeanFieldAnnealingSolver(n_sweeps=80).solve(
            model, np.random.default_rng(6)
        )
        assert np.isclose(a.energy, b.energy)

    def test_works_on_structured_model(self, rng):
        """MFA only needs fields/energy — structured models plug in."""
        from repro.ising.structured import BipartiteDecompositionModel

        model = BipartiteDecompositionModel(rng.normal(size=(4, 6)))
        result = MeanFieldAnnealingSolver(n_sweeps=150).solve(model, rng)
        assert np.isfinite(result.objective)
        assert result.spins.shape == (model.n_spins,)

    def test_restarts_counted(self, rng):
        result = MeanFieldAnnealingSolver(
            n_sweeps=50, n_restarts=3
        ).solve(ferromagnet(5), rng)
        assert result.n_iterations == 150
        assert len(result.energy_trace) == 3

    def test_validation(self):
        with pytest.raises(SolverError):
            MeanFieldAnnealingSolver(n_sweeps=0)
        with pytest.raises(SolverError):
            MeanFieldAnnealingSolver(damping=0.0)
        with pytest.raises(SolverError):
            MeanFieldAnnealingSolver(damping=1.5)
        with pytest.raises(SolverError):
            MeanFieldAnnealingSolver(n_restarts=0)
